//! Umbrella crate for the POLARIS reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; it re-exports the member crates so examples and integration
//! tests can reach everything through one dependency.
//!
//! See the individual crates for the actual functionality:
//!
//! * [`polaris_netlist`] — gate-level netlist IR, parser, graph view, and
//!   benchmark generators.
//! * [`polaris_sim`] — levelized logic simulator and power-trace campaigns.
//! * [`polaris_tvla`] — Welch's t-test leakage assessment (TVLA).
//! * [`polaris_masking`] — Trichina/DOM masking transforms and the
//!   technology-library overhead model.
//! * [`polaris_ml`] — decision trees, random forests, AdaBoost, gradient
//!   boosting, and SMOTE.
//! * [`polaris_xai`] — TreeSHAP, KernelSHAP, waterfall rendering, and rule
//!   mining.
//! * [`polaris_valiant`] — the TVLA-driven VALIANT baseline flow.
//! * [`polaris`] — the POLARIS framework itself (Algorithms 1 and 2).

pub use polaris;
pub use polaris_dist;
pub use polaris_masking;
pub use polaris_ml;
pub use polaris_netlist;
pub use polaris_sim;
pub use polaris_tvla;
pub use polaris_valiant;
pub use polaris_xai;
