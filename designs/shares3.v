// Minimal 3-share sharing of one secret bit: y0 = a ^ m0 ^ m1, y1 = m0,
// y2 = m1. Each share is uniformly masked and any *two* shares are jointly
// independent of `a`; only the triple (y0, y1, y2) recombines the secret.
// First- and second-order TVLA pass on the share gates (g1, g2, g3 —
// gate indices 4, 5, 6) while the third-order trivariate test fails them:
// the CI trivariate smoke's positive detection check.
module shares3 (a, y0, y1, y2);
  input a;
  mask_input m0, m1;
  output y0, y1, y2;
  xor g0 (t0, a, m0);
  xor g1 (y0, t0, m1);
  buf g2 (y1, m0);
  buf g3 (y2, m1);
endmodule
