//! Trace campaigns: batched acquisition of per-gate power samples for the
//! two TVLA populations.
//!
//! A *trace* is one stimulus application: the design is first settled on a
//! base vector (all zeros), then driven with the trace's data vector while
//! toggles are counted (plus `cycles - 1` additional clock cycles for
//! sequential designs). Mask inputs receive fresh randomness at every
//! evaluation of every trace — for both populations — mirroring the on-chip
//! mask RNG of a protected implementation.
//!
//! # Sharded, deterministic parallel engine
//!
//! Every random stream of a campaign is *counter-derived*: the RNG of each
//! 64-lane trace word is seeded from `(master_seed, population, word_start,
//! stream)` rather than drawn from one sequential generator. A campaign is
//! therefore a pure function of its configuration — any contiguous trace
//! range can be recomputed in isolation, which is what makes the engine
//! embarrassingly parallel *and* bit-reproducible:
//!
//! * the trace space of each population is cut into a fixed grid of
//!   [`TRACES_PER_SHARD`]-trace shards (the grid depends only on the
//!   configuration, never on the worker count);
//! * the grid is walked in **rounds**: the engine interleaves the two
//!   populations' shards (F₀ R₀ F₁ R₁ …) and executes them
//!   `shards_per_round` at a time on `std::thread::scope` workers, each of
//!   which owns a private [`MergeableSink`];
//! * per-shard sinks are folded **in shard order** at every round
//!   checkpoint, so the result is bit-identical at any thread count
//!   (1, 2, 8, …).
//!
//! # Round checkpoints and early stopping
//!
//! After each round the folded accumulator is handed to a [`StoppingRule`]
//! (see [`run_campaign_adaptive`]); a rule that detects a converged verdict
//! terminates the trace stream early. Because the interleaved walk consumes
//! each population's shards in ascending trace order, an early-stopped run
//! is *the exact prefix* of the full run: its sink is byte-identical to a
//! full campaign re-configured to the stopped trace counts, and — since the
//! rule only ever sees checkpoint-folded state — the stop round itself is
//! independent of the worker count. [`run_campaign_parallel`] is the
//! never-stopping special case of the same engine.
//!
//! # Lane width
//!
//! The simulator evaluates `W` 64-lane words per gate visit
//! (`W ∈ {1, 2, 4, 8}`, see [`Parallelism::with_lane_words`]); samples are
//! streamed to a [`TraceSink`] in up-to-`W × 64`-lane batches so leakage
//! assessment can run in constant memory. Because every random stream stays
//! keyed per 64-lane *word* and per-gate energies are emitted in the same
//! `(gate-major, lane-minor)` order at every width, the lane width — like
//! the thread count — **never affects results**: outcomes are byte-identical
//! for any `W`. [`GateSamples`] is the dense collector used for small
//! designs and figures.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use polaris_netlist::{GateId, Netlist, NetlistError};
use polaris_obs::{NullRecorder, Payload, Phase, PhaseTimer, PopulationTag, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::logic::{BlockState, Simulator};
use crate::power::{fill_standard_normal, sample_standard_normal, PowerModel};

/// Trace lanes per simulator word (one `u64` of lane bits).
pub const WORD_LANES: usize = 64;

/// Largest supported lane width `W` in words per simulation block.
pub const MAX_LANE_WORDS: usize = 8;

/// Default lane width of the engine, in words (see
/// [`Parallelism::with_lane_words`]).
pub const DEFAULT_LANE_WORDS: usize = 4;

/// Maximum lanes per [`TraceSink::record_batch`] call:
/// `MAX_LANE_WORDS × WORD_LANES`. Every batch carries between 1 and this
/// many lanes; the engine's actual batch size is `lane_words × 64`, capped
/// by the remaining traces of the range.
pub const BATCH_LANES: usize = MAX_LANE_WORDS * WORD_LANES;

/// Traces per shard of the parallel engine's fixed work grid. The grid is a
/// pure function of the campaign configuration, so results do not depend on
/// how many workers process it.
pub const TRACES_PER_SHARD: usize = 256;

/// Default shards per round of the checkpointed engine: 4 shards (2 per
/// population) between stopping-rule evaluations, i.e. a checkpoint every
/// `2 × TRACES_PER_SHARD` traces per class.
pub const DEFAULT_SHARDS_PER_ROUND: usize = 4;

/// Which TVLA population a batch of traces belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Population {
    /// The fixed-input class `Q0`.
    Fixed,
    /// The random-input (or second fixed, for fixed-vs-fixed) class `Q1`.
    Random,
}

impl Population {
    /// The trace-schema spelling of the population
    /// (see [`polaris_obs::PopulationTag`]).
    pub(crate) fn tag(self) -> PopulationTag {
        match self {
            Population::Fixed => PopulationTag::Fixed,
            Population::Random => PopulationTag::Random,
        }
    }
}

/// Timing model used when counting switching activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DelayModel {
    /// Zero-delay: one settled evaluation per cycle; each gate toggles at
    /// most once. Fast, glitch-free.
    #[default]
    Zero,
    /// Unit-delay: synchronous-relaxation settling; gates at reconvergent
    /// fanout glitch (multiple transitions per cycle), concentrating power
    /// — and leakage — in deep logic, as on real silicon.
    UnitDelay,
}

/// Worker-thread budget and SIMD lane width of the parallel campaign engine.
///
/// Neither knob ever affects results — shards, merge order, and every random
/// stream are fixed by the campaign configuration and keyed per 64-lane
/// word — so both are purely throughput knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
    lane_words: usize,
}

impl Parallelism {
    /// An explicit thread count; `0` means "all available cores". Lane width
    /// defaults to [`DEFAULT_LANE_WORDS`].
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads,
            lane_words: DEFAULT_LANE_WORDS,
        }
    }

    /// Single-threaded execution (still runs the sharded engine, so results
    /// match every other thread count bit for bit).
    pub fn sequential() -> Self {
        Parallelism::new(1)
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        Parallelism::new(0)
    }

    /// Sets the simulation lane width in 64-lane words: each gate visit
    /// evaluates `lane_words × 64` trace lanes. Outcomes are byte-identical
    /// at every supported width; wider blocks amortize per-batch overheads
    /// and give the autovectorizer straight-line multi-word loops.
    ///
    /// # Panics
    ///
    /// Panics unless `lane_words ∈ {1, 2, 4, 8}`.
    pub fn with_lane_words(mut self, lane_words: usize) -> Self {
        assert!(
            matches!(lane_words, 1 | 2 | 4 | 8),
            "lane width must be 1, 2, 4 or 8 words, got {lane_words}"
        );
        self.lane_words = lane_words;
        self
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The simulation lane width in 64-lane words.
    pub fn lane_words(self) -> usize {
        self.lane_words
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Why an energy matrix was rejected by [`EnergyBatch::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchShapeError {
    /// `lanes == 0`: every batch carries at least one real trace lane.
    ZeroLanes,
    /// `lanes > BATCH_LANES`: wider than any supported simulation block.
    TooManyLanes {
        /// The offending lane count.
        lanes: usize,
    },
    /// `energies.len() != gates × lanes` (or the product overflows).
    LengthMismatch {
        /// `gates × lanes`.
        expected: usize,
        /// `energies.len()`.
        actual: usize,
    },
}

impl std::fmt::Display for BatchShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchShapeError::ZeroLanes => write!(f, "batch has zero lanes"),
            BatchShapeError::TooManyLanes { lanes } => {
                write!(f, "batch has {lanes} lanes, max {BATCH_LANES}")
            }
            BatchShapeError::LengthMismatch { expected, actual } => {
                write!(f, "energy matrix has {actual} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for BatchShapeError {}

/// A shape-checked view of one batch's per-gate energy matrix.
///
/// Constructing the view validates the batch invariants once —
/// `1 ≤ lanes ≤ BATCH_LANES` and `energies.len() == gates × lanes` — so
/// sinks can index by gate and lane without re-checking (the checks are
/// real, not `debug_assert`: a malformed batch is rejected in release
/// builds too).
#[derive(Clone, Copy, Debug)]
pub struct EnergyBatch<'a> {
    energies: &'a [f64],
    gates: usize,
    lanes: usize,
}

impl<'a> EnergyBatch<'a> {
    /// Validates and wraps an energy matrix where `energies[g * lanes + l]`
    /// is the sample of gate `g` in trace-lane `l`.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchShapeError`] describing the violated invariant.
    pub fn new(energies: &'a [f64], gates: usize, lanes: usize) -> Result<Self, BatchShapeError> {
        if lanes == 0 {
            return Err(BatchShapeError::ZeroLanes);
        }
        if lanes > BATCH_LANES {
            return Err(BatchShapeError::TooManyLanes { lanes });
        }
        let expected = gates.saturating_mul(lanes);
        if energies.len() != expected {
            return Err(BatchShapeError::LengthMismatch {
                expected,
                actual: energies.len(),
            });
        }
        Ok(EnergyBatch {
            energies,
            gates,
            lanes,
        })
    }

    /// Number of gates covered by the batch.
    pub fn gates(&self) -> usize {
        self.gates
    }

    /// Number of trace lanes in the batch (`1..=BATCH_LANES`).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The `lanes` energy samples of gate `g`, one per trace in trace order.
    ///
    /// # Panics
    ///
    /// Panics if `g >= self.gates()`.
    pub fn gate_lanes(&self, g: usize) -> &'a [f64] {
        &self.energies[g * self.lanes..(g + 1) * self.lanes]
    }

    /// The full gate-major energy matrix.
    pub fn energies(&self) -> &'a [f64] {
        self.energies
    }
}

/// Receiver for streamed per-gate energy samples.
pub trait TraceSink {
    /// Records one shape-checked batch (see [`EnergyBatch`]):
    /// `batch.gate_lanes(g)[l]` is the energy sample of gate `g` in
    /// trace-lane `l`.
    ///
    /// # Batch-shape contract
    ///
    /// `1 <= batch.lanes() <= BATCH_LANES`, where
    /// `BATCH_LANES = MAX_LANE_WORDS × 64`. Batches of one contiguous trace
    /// range arrive in trace order; an engine running at lane width `W`
    /// emits `W × 64`-lane batches except possibly the *last* batch of the
    /// range, which reports its true trailing lane count. Sinks must
    /// therefore never assume a particular batch width — partial batches
    /// carry real samples, and the same trace range may arrive in different
    /// batch sizes at different lane widths while folding to byte-identical
    /// accumulator state.
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>);
}

/// A [`TraceSink`] whose partial results can be folded together — the worker
/// contract of the parallel engine.
///
/// Each worker owns a private sink; [`run_campaign_parallel`] merges the
/// per-shard sinks **in shard order** at the barrier. `merge` must behave as
/// if `other`'s samples had been recorded directly after `self`'s (dense
/// collectors concatenate; statistical accumulators combine pairwise à la
/// Chan et al.).
pub trait MergeableSink: TraceSink + Send {
    /// Folds `other` (the samples of the *following* trace range) into
    /// `self`.
    fn merge(&mut self, other: Self);
}

/// Campaign parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Number of traces in the fixed class.
    pub n_fixed: usize,
    /// Number of traces in the random class.
    pub n_random: usize,
    /// Master seed; every random stream (data, masks, noise, fixed vector)
    /// derives from it, so campaigns are reproducible.
    pub seed: u64,
    /// Clock cycles per trace (1 for combinational designs; sequential
    /// designs accumulate toggles over this many cycles).
    pub cycles: usize,
    /// Explicit fixed-class data vector; derived from `seed` when `None`.
    pub fixed_vector: Option<Vec<bool>>,
    /// When set, the second class also uses a fixed vector (fixed-vs-fixed
    /// TVLA) instead of per-trace random data.
    pub second_fixed_vector: Option<Vec<bool>>,
    /// Switching-activity timing model.
    pub delay_model: DelayModel,
}

impl CampaignConfig {
    /// Fixed-vs-random campaign with `n_fixed == n_random == n` traces.
    pub fn new(n_fixed: usize, n_random: usize, seed: u64) -> Self {
        CampaignConfig {
            n_fixed,
            n_random,
            seed,
            cycles: 1,
            fixed_vector: None,
            second_fixed_vector: None,
            delay_model: DelayModel::Zero,
        }
    }

    /// Sets the number of clock cycles per trace (sequential designs).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn with_cycles(mut self, cycles: usize) -> Self {
        assert!(cycles >= 1, "at least one cycle per trace");
        self.cycles = cycles;
        self
    }

    /// Uses an explicit fixed-class vector.
    pub fn with_fixed_vector(mut self, v: Vec<bool>) -> Self {
        self.fixed_vector = Some(v);
        self
    }

    /// Switches to fixed-vs-fixed TVLA with the given second vector.
    pub fn fixed_vs_fixed(mut self, v: Vec<bool>) -> Self {
        self.second_fixed_vector = Some(v);
        self
    }

    /// Selects the unit-delay (glitch-aware) timing model.
    pub fn with_glitches(mut self) -> Self {
        self.delay_model = DelayModel::UnitDelay;
        self
    }

    /// The fixed-class vector this campaign will apply to a design with
    /// `n_data` data inputs: the explicit vector when set, otherwise the one
    /// derived from `seed`. Materializing it lets comparative flows re-seed
    /// the sampling streams of a follow-up campaign while *pinning* the
    /// fixed class (see `fixed_vector`), so before/after leakage numbers
    /// stay comparable.
    ///
    /// # Panics
    ///
    /// Panics if an explicit vector does not match `n_data`.
    pub fn resolve_fixed_vector(&self, n_data: usize) -> Vec<bool> {
        match &self.fixed_vector {
            Some(v) => {
                assert_eq!(v.len(), n_data, "fixed vector width mismatch");
                v.clone()
            }
            None => {
                let mut seed_rng = StdRng::seed_from_u64(self.seed);
                (0..n_data).map(|_| seed_rng.gen::<bool>()).collect()
            }
        }
    }
}

// --- Counter-derived random streams ---------------------------------------

/// Stream discriminators for the per-batch RNG derivation.
const STREAM_DATA: u64 = 0x4441_5441; // "DATA"
const STREAM_MASK: u64 = 0x4D41_534B; // "MASK"
const STREAM_NOISE: u64 = 0x4E4F_4953; // "NOIS"

/// One SplitMix64 output step — the workspace's shared counter-based stream
/// mixer (the `rand` shim seeds xoshiro state the same way, and the CPA
/// engine derives its per-trace streams from it).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG of one `(population, batch, stream)` coordinate from the
/// campaign master seed. Batches are keyed by their starting trace index, so
/// any shard decomposition reproduces the exact same draws.
fn batch_stream_rng(seed: u64, pop: Population, batch_start: u64, stream: u64) -> StdRng {
    let pop_tag: u64 = match pop {
        Population::Fixed => 0x0F1E,
        Population::Random => 0x7A4D,
    };
    let mut h = splitmix64(seed ^ 0x0050_4F4C_4152_4953); // "POLARIS"
    h = splitmix64(h ^ pop_tag);
    h = splitmix64(h ^ batch_start);
    h = splitmix64(h ^ stream);
    StdRng::seed_from_u64(h)
}

// --- Dense collector -------------------------------------------------------

/// Dense per-gate sample collector: `fixed[g]` / `random[g]` hold one energy
/// value per trace.
#[derive(Clone, Debug, Default)]
pub struct GateSamples {
    fixed: Vec<Vec<f64>>,
    random: Vec<Vec<f64>>,
}

impl GateSamples {
    /// A collector with every buffer preallocated to its final size
    /// (`gates × traces` is known up front from the campaign
    /// configuration), so recording never reallocates.
    pub fn with_capacity(gates: usize, n_fixed: usize, n_random: usize) -> Self {
        GateSamples {
            fixed: (0..gates).map(|_| Vec::with_capacity(n_fixed)).collect(),
            random: (0..gates).map(|_| Vec::with_capacity(n_random)).collect(),
        }
    }

    /// Number of gates covered.
    pub fn gate_count(&self) -> usize {
        self.fixed.len()
    }

    /// Fixed-class samples of one gate.
    pub fn fixed(&self, id: GateId) -> &[f64] {
        &self.fixed[id.index()]
    }

    /// Random-class samples of one gate.
    pub fn random(&self, id: GateId) -> &[f64] {
        &self.random[id.index()]
    }

    /// The per-gate class buffers, `(fixed, random)` — the snapshot side of
    /// the distributed shard-state format. The two sides may disagree on
    /// gate count: a one-population shard leaves the unseen class empty.
    pub fn classes(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.fixed, &self.random)
    }

    /// Decomposes the collector into its per-gate class buffers (owned
    /// variant of [`GateSamples::classes`]).
    pub fn into_classes(self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (self.fixed, self.random)
    }

    /// Reassembles a collector from per-gate class buffers (the restore
    /// side of [`GateSamples::into_classes`]).
    pub fn from_classes(fixed: Vec<Vec<f64>>, random: Vec<Vec<f64>>) -> Self {
        GateSamples { fixed, random }
    }
}

impl TraceSink for GateSamples {
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
        let gates = batch.gates();
        let store = match pop {
            Population::Fixed => &mut self.fixed,
            Population::Random => &mut self.random,
        };
        if store.len() < gates {
            store.resize(gates, Vec::new());
        }
        for (g, samples) in store.iter_mut().enumerate().take(gates) {
            samples.extend_from_slice(batch.gate_lanes(g));
        }
    }
}

fn merge_store(dst: &mut Vec<Vec<f64>>, src: Vec<Vec<f64>>) {
    if src.is_empty() {
        return;
    }
    if dst.iter().all(Vec::is_empty) {
        *dst = src;
        return;
    }
    debug_assert_eq!(dst.len(), src.len(), "gate count mismatch in merge");
    for (d, s) in dst.iter_mut().zip(src) {
        d.extend_from_slice(&s);
    }
}

impl MergeableSink for GateSamples {
    /// Concatenates `other`'s per-gate samples after `self`'s — exactly the
    /// trace order of a sequential run, so parallel dense collection is
    /// bit-identical to single-threaded collection.
    fn merge(&mut self, other: Self) {
        merge_store(&mut self.fixed, other.fixed);
        merge_store(&mut self.random, other.random);
    }
}

// --- The campaign engine ---------------------------------------------------

#[inline]
fn add_toggles(toggles: &mut [u32], diff: u64) {
    if diff != 0 {
        let mut d = diff;
        while d != 0 {
            let l = d.trailing_zeros() as usize;
            toggles[l] += 1;
            d &= d - 1;
        }
    }
}

/// Reusable per-worker buffers of the block engine: one allocation set per
/// `run_range` call instead of per batch.
struct BlockScratch<const W: usize> {
    st: BlockState<W>,
    /// Previous value words (gate-major, `W` per gate).
    prev: Vec<u64>,
    /// Per-lane toggle counters, `W × 64` per gate.
    toggles: Vec<u32>,
    /// Gate-major energy matrix of the current batch.
    energies: Vec<f64>,
    /// Input-major data words (`W` per data input).
    data: Vec<u64>,
    /// All-zero data words for the base application.
    zero_data: Vec<u64>,
    /// Input-major mask words (`W` per mask input).
    masks: Vec<u64>,
    /// Per-lane standard-normal noise of one gate, in lane order.
    normals: Vec<f64>,
}

impl<const W: usize> BlockScratch<W> {
    fn new(engine: &Engine<'_>) -> Self {
        BlockScratch {
            st: engine.sim.zero_block::<W>(),
            prev: vec![0; engine.gates * W],
            toggles: vec![0; engine.gates * W * WORD_LANES],
            energies: vec![0.0; engine.gates * W * WORD_LANES],
            data: vec![0; engine.n_data * W],
            zero_data: vec![0; engine.n_data * W],
            masks: vec![0; engine.n_mask * W],
            normals: vec![0.0; W * WORD_LANES],
        }
    }
}

/// Compiled per-campaign context shared (immutably) by all workers.
///
/// Crate-visible so the fleet scheduler (see [`crate::fleet`]) can compile
/// one engine per job and drive shard ranges from a shared worker pool.
pub(crate) struct Engine<'a> {
    sim: Simulator<'a>,
    config: &'a CampaignConfig,
    caps: Vec<f64>,
    sigma: f64,
    n_data: usize,
    n_mask: usize,
    gates: usize,
    /// Simulation block width in 64-lane words (1, 2, 4 or 8).
    lane_words: usize,
    /// Fixed-class data vector, broadcast to 64-lane words.
    fixed_words: Vec<u64>,
    /// Second fixed vector (fixed-vs-fixed mode), broadcast.
    second_fixed_words: Option<Vec<u64>>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        netlist: &'a Netlist,
        model: &PowerModel,
        config: &'a CampaignConfig,
        lane_words: usize,
    ) -> Result<Self, NetlistError> {
        assert!(
            matches!(lane_words, 1 | 2 | 4 | 8),
            "lane width must be 1, 2, 4 or 8 words, got {lane_words}"
        );
        let sim = Simulator::new(netlist)?;
        let n_data = netlist.data_inputs().len();
        let n_mask = netlist.mask_inputs().len();
        let gates = netlist.gate_count();

        let fixed_vec = config.resolve_fixed_vector(n_data);
        let broadcast =
            |v: &[bool]| -> Vec<u64> { v.iter().map(|&b| if b { !0u64 } else { 0 }).collect() };
        let second_fixed_words = config.second_fixed_vector.as_ref().map(|v| {
            assert_eq!(v.len(), n_data, "second fixed vector width mismatch");
            broadcast(v)
        });

        Ok(Engine {
            sim,
            config,
            caps: netlist.iter().map(|(_, g)| model.cap(g.kind())).collect(),
            sigma: model.noise_sigma(),
            n_data,
            n_mask,
            gates,
            lane_words,
            fixed_words: broadcast(&fixed_vec),
            second_fixed_words,
        })
    }

    /// Simulates the contiguous trace range `[start, start + count)` of one
    /// population into `sink`. `start` must be word-aligned (a multiple of
    /// 64) so the per-word stream grid — and hence every RNG draw — is
    /// independent of the sharding and of the lane width.
    pub(crate) fn run_range<S: TraceSink>(
        &self,
        pop: Population,
        start: usize,
        count: usize,
        sink: &mut S,
    ) {
        let mut timer = PhaseTimer::disabled();
        self.run_range_timed(pop, start, count, sink, &mut timer);
    }

    /// [`Engine::run_range`] with per-phase timing: RNG/simulate/accumulate
    /// nanoseconds accumulate into `timer` (free when the timer is
    /// disabled). Timing is strictly observational — no RNG draw, batch
    /// boundary, or sink call depends on it, so traced and untraced runs
    /// are byte-identical.
    pub(crate) fn run_range_timed<S: TraceSink>(
        &self,
        pop: Population,
        start: usize,
        count: usize,
        sink: &mut S,
        timer: &mut PhaseTimer,
    ) {
        match self.lane_words {
            1 => self.run_range_w::<S, 1>(pop, start, count, sink, timer),
            2 => self.run_range_w::<S, 2>(pop, start, count, sink, timer),
            4 => self.run_range_w::<S, 4>(pop, start, count, sink, timer),
            8 => self.run_range_w::<S, 8>(pop, start, count, sink, timer),
            w => unreachable!("lane width {w} rejected at construction"),
        }
    }

    fn run_range_w<S: TraceSink, const W: usize>(
        &self,
        pop: Population,
        start: usize,
        count: usize,
        sink: &mut S,
        timer: &mut PhaseTimer,
    ) {
        debug_assert_eq!(start % WORD_LANES, 0, "shards must be word-aligned");
        let mut scratch = BlockScratch::<W>::new(self);
        let mut done = 0usize;
        while done < count {
            let lanes = (count - done).min(W * WORD_LANES);
            self.run_block::<S, W>(pop, (start + done) as u64, lanes, &mut scratch, sink, timer);
            done += lanes;
        }
    }

    /// Simulates one `W`-word block of `lanes` traces starting at global
    /// trace `block_start`.
    ///
    /// Cross-width identity: every random stream is keyed by the 64-lane
    /// *word* it feeds (`block_start + w × 64`), and energies are emitted in
    /// `(gate-major, lane-minor)` order — so a block is exactly the
    /// concatenation of the `W` single-word batches a `W = 1` engine would
    /// produce, and sinks fold to byte-identical state at every width.
    fn run_block<S: TraceSink, const W: usize>(
        &self,
        pop: Population,
        block_start: u64,
        lanes: usize,
        scratch: &mut BlockScratch<W>,
        sink: &mut S,
        timer: &mut PhaseTimer,
    ) {
        debug_assert!(lanes >= 1 && lanes <= W * WORD_LANES, "lanes = {lanes}");
        let words = lanes.div_ceil(WORD_LANES);
        let seed = self.config.seed;
        let word_start = |w: usize| block_start + (w * WORD_LANES) as u64;

        // Per-word active lane counts and masks: all words are full except
        // possibly the last. Lanes at and beyond `lanes` are masked out of
        // data generation and never read back, so a partial trailing block
        // can never leak garbage into a sink at any width.
        let mut word_lanes = [0usize; W];
        let mut lane_mask = [0u64; W];
        for w in 0..words {
            let lw = (lanes - w * WORD_LANES).min(WORD_LANES);
            word_lanes[w] = lw;
            lane_mask[w] = if lw == WORD_LANES {
                !0
            } else {
                (1u64 << lw) - 1
            };
        }

        let mut mask_rngs: [StdRng; W] =
            std::array::from_fn(|w| batch_stream_rng(seed, pop, word_start(w), STREAM_MASK));
        let mut noise_rngs: [StdRng; W] =
            std::array::from_fn(|w| batch_stream_rng(seed, pop, word_start(w), STREAM_NOISE));

        let t_rng = timer.begin();
        let data = &mut scratch.data;
        match (pop, &self.second_fixed_words) {
            (Population::Fixed, _) => {
                for (i, &word) in self.fixed_words.iter().enumerate() {
                    data[i * W..i * W + W].fill(word);
                }
            }
            (Population::Random, Some(v2)) => {
                for (i, &word) in v2.iter().enumerate() {
                    data[i * W..i * W + W].fill(word);
                }
            }
            (Population::Random, None) => {
                let mut data_rngs: [StdRng; W] = std::array::from_fn(|w| {
                    batch_stream_rng(seed, pop, word_start(w), STREAM_DATA)
                });
                data.fill(0);
                for i in 0..self.n_data {
                    for (w, rng) in data_rngs.iter_mut().enumerate().take(words) {
                        data[i * W + w] = rng.gen::<u64>() & lane_mask[w];
                    }
                }
            }
        }

        let st = &mut scratch.st;
        st.reset();
        // Base application: settle on all-zero data with fresh masks;
        // toggles are not counted here.
        let base_mask = &mut scratch.masks;
        base_mask.fill(0);
        for i in 0..self.n_mask {
            for (w, rng) in mask_rngs.iter_mut().enumerate().take(words) {
                base_mask[i * W + w] = rng.gen::<u64>();
            }
        }
        timer.end(Phase::Rng, t_rng);
        let t_sim = timer.begin();
        self.sim.eval_block::<W>(st, &scratch.zero_data, base_mask);
        scratch.prev.copy_from_slice(st.values());
        timer.end(Phase::Simulate, t_sim);

        // `cycles == 1` zero-delay blocks (the combinational common case)
        // skip the per-lane toggle counters: each gate toggles at most once,
        // so the XOR against the base values *is* the toggle bit.
        let single_cycle = self.config.cycles == 1 && self.config.delay_model == DelayModel::Zero;
        if !single_cycle {
            scratch.toggles.fill(0);
        }
        for cycle in 0..self.config.cycles {
            let t_rng = timer.begin();
            let masks = &mut scratch.masks;
            for i in 0..self.n_mask {
                for (w, rng) in mask_rngs.iter_mut().enumerate().take(words) {
                    masks[i * W + w] = rng.gen::<u64>();
                }
            }
            timer.end(Phase::Rng, t_rng);
            let t_sim = timer.begin();
            match self.config.delay_model {
                DelayModel::Zero => {
                    self.sim.eval_block::<W>(st, data, masks);
                    if !single_cycle {
                        for g in 0..self.gates {
                            for (w, &wmask) in lane_mask.iter().enumerate().take(words) {
                                let diff =
                                    (scratch.prev[g * W + w] ^ st.values()[g * W + w]) & wmask;
                                add_toggles(&mut scratch.toggles[(g * W + w) * WORD_LANES..], diff);
                            }
                        }
                    }
                }
                DelayModel::UnitDelay => {
                    // Every settling wave's transition counts (glitches).
                    let toggles = &mut scratch.toggles;
                    self.sim
                        .eval_unit_delay_block::<W>(st, data, masks, |g, diff| {
                            for w in 0..words {
                                add_toggles(
                                    &mut toggles[(g * W + w) * WORD_LANES..],
                                    diff[w] & lane_mask[w],
                                );
                            }
                        });
                }
            }
            if !single_cycle {
                // Multi-cycle zero-delay diffs need the previous cycle's
                // values; in single-cycle mode `prev` keeps the base values
                // so emission can read the toggle bits directly.
                scratch.prev.copy_from_slice(st.values());
            }
            if cycle + 1 < self.config.cycles {
                self.sim.clock_block::<W>(st);
            }
            timer.end(Phase::Simulate, t_sim);
        }

        // Energy emission, `(gate-major, lane-minor)`: full words precede
        // the partial trailing word, so lane `w * 64 + l` of the batch is
        // sample `w * 64 + l` of the gate's row — contiguous at any width.
        let energies = &mut scratch.energies[..self.gates * lanes];
        let normals = &mut scratch.normals;
        for g in 0..self.gates {
            let cap = self.caps[g];
            let t_rng = timer.begin();
            for w in 0..words {
                fill_standard_normal(
                    &mut noise_rngs[w],
                    &mut normals[w * WORD_LANES..w * WORD_LANES + word_lanes[w]],
                );
            }
            timer.end(Phase::Rng, t_rng);
            let t_acc = timer.begin();
            let row = &mut energies[g * lanes..(g + 1) * lanes];
            if single_cycle {
                for (w, &wl) in word_lanes.iter().enumerate().take(words) {
                    let base = w * WORD_LANES;
                    let diff = st.values()[g * W + w] ^ scratch.prev[g * W + w];
                    for l in 0..wl {
                        let t = f64::from(u8::from((diff >> l) & 1 == 1));
                        row[base + l] = cap * t + self.sigma * normals[base + l];
                    }
                }
            } else {
                for (w, &wl) in word_lanes.iter().enumerate().take(words) {
                    let base = w * WORD_LANES;
                    let t_row = &scratch.toggles[(g * W + w) * WORD_LANES..];
                    for l in 0..wl {
                        row[base + l] = cap * f64::from(t_row[l]) + self.sigma * normals[base + l];
                    }
                }
            }
            timer.end(Phase::Accumulate, t_acc);
        }
        let t_acc = timer.begin();
        let batch = EnergyBatch::new(energies, self.gates, lanes)
            .expect("engine emits well-formed batches");
        sink.record_batch(pop, batch);
        timer.end(Phase::Accumulate, t_acc);
    }
}

/// One entry of the fixed shard grid: a contiguous trace range of one
/// population.
///
/// Shard specs are pure functions of the campaign configuration (see
/// [`shard_grid`]); their position in the grid — the *grid index* — is the
/// canonical merge order every execution strategy (in-process workers,
/// distributed `polaris-dist` parts) must fold in to stay bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    pop: Population,
    start: usize,
    count: usize,
}

impl ShardSpec {
    /// The TVLA population this shard's traces belong to.
    pub fn population(&self) -> Population {
        self.pop
    }

    /// First trace index (within the population) the shard covers.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of traces in the shard (≤ [`TRACES_PER_SHARD`]).
    pub fn count(&self) -> usize {
        self.count
    }
}

/// One population's [`TRACES_PER_SHARD`]-trace shard decomposition, in
/// ascending trace order.
fn population_shards(pop: Population, n: usize) -> Vec<ShardSpec> {
    let mut shards = Vec::new();
    let mut start = 0usize;
    while start < n {
        let count = (n - start).min(TRACES_PER_SHARD);
        shards.push(ShardSpec { pop, start, count });
        start += count;
    }
    shards
}

/// The campaign's fixed work decomposition, interleaved across populations
/// (F₀ R₀ F₁ R₁ …, trailing extras of the longer class last). A pure
/// function of the configuration — never of the worker count.
///
/// Interleaving keeps the two classes balanced at every round checkpoint —
/// what a sequential stopping rule needs — while each population's shards
/// are still consumed in ascending trace order. Because [`TraceSink`]
/// batches are keyed by population, every sink whose populations accumulate
/// independently (all the workspace's mergeable sinks do) folds to exactly
/// the same state as the class-ordered walk.
///
/// The grid is public so out-of-process executors (`polaris-dist`) can
/// partition it into contiguous plans; the vector's order defines the grid
/// indices [`run_shard_states`] and [`partition_shards`] speak in.
pub fn shard_grid(config: &CampaignConfig) -> Vec<ShardSpec> {
    let fixed = population_shards(Population::Fixed, config.n_fixed);
    let random = population_shards(Population::Random, config.n_random);
    let mut shards = Vec::with_capacity(fixed.len() + random.len());
    let mut f = fixed.into_iter();
    let mut r = random.into_iter();
    loop {
        match (f.next(), r.next()) {
            (None, None) => break,
            (a, b) => {
                shards.extend(a);
                shards.extend(b);
            }
        }
    }
    shards
}

/// Partitions `n_shards` grid entries into `parts` contiguous ranges — the
/// shard-plan decomposition of a distributed campaign. The first
/// `n_shards % parts` ranges carry one extra shard; trailing ranges are
/// empty when there are more parts than shards. Concatenating the ranges in
/// order always reproduces `0..n_shards`, so folding per-part results in
/// part order (and per-shard results in grid order inside each part) is the
/// exact merge sequence of [`run_campaign_parallel`].
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn partition_shards(n_shards: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts >= 1, "at least one part");
    let base = n_shards / parts;
    let extra = n_shards % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// Executes the grid entries `shards` (see [`shard_grid`]) of a campaign,
/// each into its **own** fresh sink, and returns the per-shard sinks in grid
/// order — the shard-range execution primitive of distributed workers.
///
/// The per-shard states are deliberately *not* folded here: the Chan-et-al
/// moment merges are floating-point and therefore not associative, so only a
/// strictly ascending one-shard-at-a-time fold over the whole grid
/// reproduces [`run_campaign_parallel`] bit for bit. Keeping shard
/// granularity lets a central merge replay exactly that fold regardless of
/// how the grid was partitioned across workers.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
///
/// # Panics
///
/// Panics if `shards` reaches past the end of the grid.
pub fn run_shard_states<S>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards: std::ops::Range<usize>,
) -> Result<Vec<S>, NetlistError>
where
    S: MergeableSink + Default,
{
    run_shard_states_with(netlist, model, config, parallelism, shards, S::default)
}

/// [`run_shard_states`] with an explicit sink factory instead of the
/// `Default` bound — for sinks whose empty state carries configuration
/// (e.g. a gate-pair list) that `Default` cannot produce. The factory must
/// return *empty* sinks: it configures shape, it never seeds samples.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
///
/// # Panics
///
/// Panics if `shards` reaches past the end of the grid.
pub fn run_shard_states_with<S, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards: std::ops::Range<usize>,
    factory: F,
) -> Result<Vec<S>, NetlistError>
where
    S: MergeableSink,
    F: Fn() -> S + Sync,
{
    run_shard_states_traced_with(
        netlist,
        model,
        config,
        parallelism,
        shards,
        factory,
        &NullRecorder,
    )
}

/// [`run_shard_states_with`] reporting one [`Payload::ShardSpan`] per shard
/// to `recorder` (with `round = 0` — a bare shard range has no round
/// structure; `grid_index` is the shard's absolute position in the full
/// grid). The per-shard states are unchanged by recording.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
///
/// # Panics
///
/// Panics if `shards` reaches past the end of the grid.
pub fn run_shard_states_traced_with<S, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards: std::ops::Range<usize>,
    factory: F,
    recorder: &dyn Recorder,
) -> Result<Vec<S>, NetlistError>
where
    S: MergeableSink,
    F: Fn() -> S + Sync,
{
    let engine = Engine::new(netlist, model, config, parallelism.lane_words())?;
    let grid = shard_grid(config);
    assert!(
        shards.end <= grid.len() && shards.start <= shards.end,
        "shard range {shards:?} outside the {}-shard grid",
        grid.len()
    );
    let grid_base = shards.start;
    let specs = &grid[shards];
    let tracing = recorder.enabled();
    Ok(run_sharded(specs.len(), parallelism, |i| {
        let shard = specs[i];
        let mut sink = factory();
        let mut timer = PhaseTimer::new(tracing);
        let t0 = timer.begin();
        engine.run_range_timed(shard.pop, shard.start, shard.count, &mut sink, &mut timer);
        if let Some(t0) = t0 {
            recorder.record(Payload::ShardSpan {
                round: 0,
                grid_index: (grid_base + i) as u64,
                pop: shard.pop.tag(),
                start: shard.start as u64,
                count: shard.count as u64,
                wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                rng_ns: timer.nanos(Phase::Rng),
                sim_ns: timer.nanos(Phase::Simulate),
                acc_ns: timer.nanos(Phase::Accumulate),
            });
        }
        sink
    }))
}

/// Folds per-shard (or per-part) states **in order** into one accumulator —
/// the canonical left fold shared by the in-process engine and the
/// distributed merge. Returns the default sink for an empty iterator.
pub fn fold_shard_states<S>(states: impl IntoIterator<Item = S>) -> S
where
    S: MergeableSink + Default,
{
    let mut acc: Option<S> = None;
    for s in states {
        match &mut acc {
            None => acc = Some(s),
            Some(a) => a.merge(s),
        }
    }
    acc.unwrap_or_default()
}

/// Runs `n_shards` independent work items across `parallelism` worker
/// threads and returns their results **in shard order** — the shared
/// deterministic scheduler of the campaign and CPA engines.
///
/// Workers pull shard indices from an atomic queue, so which thread runs a
/// shard is arbitrary, but the returned `Vec` is always ordered by shard
/// index: callers fold it left-to-right to get thread-count-invariant
/// results.
///
/// # Panics
///
/// Propagates worker panics.
pub fn run_sharded<T, F>(n_shards: usize, parallelism: Parallelism, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = parallelism.threads().min(n_shards.max(1));
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n_shards, || None);

    // Inline fold path: `Parallelism::sequential()` and single-shard plans
    // must never pay for a scoped worker spawn — the work runs on the
    // calling thread (a regression test pins this via thread identity).
    if threads <= 1 || n_shards <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(work(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let produced: Vec<(usize, T)> = std::thread::scope(|scope| {
            let work = &work;
            let next = &next;
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_shards {
                                break;
                            }
                            local.push((i, work(i)));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("shard worker panicked"))
                .collect()
        });
        for (i, result) in produced {
            slots[i] = Some(result);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every shard produces a result"))
        .collect()
}

/// Folds `sink` into the running accumulator: the canonical left fold every
/// engine shares — first sink seeds the accumulator, later ones merge in.
fn merge_into<S: MergeableSink>(acc: &mut Option<S>, sink: S) {
    match acc {
        None => *acc = Some(sink),
        Some(a) => a.merge(sink),
    }
}

/// In-flight state of a streaming ascending fold: the next index the
/// accumulator is waiting for, plus the out-of-order sinks that arrived
/// ahead of it.
struct FoldState<S> {
    next_fold: usize,
    pending: BTreeMap<usize, S>,
    acc: Option<S>,
}

/// Runs `n_shards` work items across `parallelism` worker threads and folds
/// each produced sink into `acc` in **strictly ascending shard order, as
/// results arrive** — the same merge sequence as collecting every sink and
/// folding left-to-right (so bit-identical results), but only the
/// out-of-order window (bounded by the worker count's scheduling skew) is
/// ever alive at once instead of one sink per shard. That window is what
/// keeps million-trace streaming campaigns in O(sink) memory: a
/// collect-then-fold round would hold `traces / TRACES_PER_SHARD` private
/// accumulators before the first merge.
///
/// When `fold_ns` is supplied, the nanoseconds spent merging sinks are
/// added to it (summed across workers). Timing never changes which merges
/// run or in what order, so traced runs stay byte-identical.
///
/// # Panics
///
/// Propagates worker panics.
fn run_sharded_fold<S, F>(
    n_shards: usize,
    parallelism: Parallelism,
    work: F,
    acc: &mut Option<S>,
    fold_ns: Option<&AtomicU64>,
) where
    S: MergeableSink,
    F: Fn(usize) -> S + Sync,
{
    let timed_merge = |acc: &mut Option<S>, sink: S| match fold_ns {
        None => merge_into(acc, sink),
        Some(total) => {
            let t0 = Instant::now();
            merge_into(acc, sink);
            let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            total.fetch_add(spent, Ordering::Relaxed);
        }
    };
    let threads = parallelism.threads().min(n_shards.max(1));
    if threads <= 1 || n_shards <= 1 {
        // Inline path: sequential budgets and single-shard plans never pay
        // for a scoped worker spawn (pinned by a thread-identity test).
        for i in 0..n_shards {
            timed_merge(acc, work(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let state = Mutex::new(FoldState {
        next_fold: 0,
        pending: BTreeMap::new(),
        acc: acc.take(),
    });
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_shards {
                    break;
                }
                let sink = work(i);
                let mut st = state.lock().expect("fold state poisoned");
                st.pending.insert(i, sink);
                loop {
                    let key = st.next_fold;
                    let Some(ready) = st.pending.remove(&key) else {
                        break;
                    };
                    timed_merge(&mut st.acc, ready);
                    st.next_fold += 1;
                }
            });
        }
    });
    let st = state.into_inner().expect("fold state poisoned");
    debug_assert!(st.pending.is_empty(), "every shard folds exactly once");
    *acc = st.acc;
}

/// Runs a campaign, streaming batches into `sink` in trace order (fixed
/// class first). Because every random stream is counter-derived, this
/// produces the exact same samples as [`run_campaign_parallel`] — the only
/// difference is that a custom, non-mergeable sink can be used.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign<S: TraceSink>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    sink: &mut S,
) -> Result<(), NetlistError> {
    let engine = Engine::new(netlist, model, config, DEFAULT_LANE_WORDS)?;
    engine.run_range(Population::Fixed, 0, config.n_fixed, sink);
    engine.run_range(Population::Random, 0, config.n_random, sink);
    Ok(())
}

// --- Round checkpoints and sequential stopping ------------------------------

/// Trace-consumption statistics of one (possibly early-stopped) campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Fixed-class traces simulated.
    pub fixed_traces: usize,
    /// Random-class traces simulated.
    pub random_traces: usize,
    /// Rounds executed before the engine returned.
    pub rounds: usize,
    /// Rounds the full shard grid would have taken.
    pub planned_rounds: usize,
    /// True when a [`StoppingRule`] terminated the stream before the grid
    /// was exhausted.
    pub stopped_early: bool,
}

impl CampaignStats {
    /// Total traces simulated across both populations.
    pub fn traces_used(&self) -> usize {
        self.fixed_traces + self.random_traces
    }
}

/// Result of a round-checkpointed campaign: the folded sink plus the
/// consumption statistics callers report (`traces_used`, `stopped_early`).
#[derive(Clone, Debug)]
pub struct CampaignOutcome<S> {
    /// The checkpoint-folded sink at the stop (or full-grid) boundary.
    pub sink: S,
    /// How many traces/rounds the campaign actually consumed.
    pub stats: CampaignStats,
}

/// Checkpoint state handed to a [`StoppingRule`] after each round: the
/// folded accumulator so far plus the engine's position in the shard grid.
#[derive(Debug)]
pub struct Checkpoint<'a, S> {
    /// The running accumulator, folded in shard order over every shard
    /// executed so far. Bit-identical at any thread count.
    pub sink: &'a S,
    /// 1-based index of the round that just completed.
    pub round: usize,
    /// Total rounds in the full plan.
    pub planned_rounds: usize,
    /// Fixed-class traces consumed so far.
    pub fixed_traces: usize,
    /// Random-class traces consumed so far.
    pub random_traces: usize,
    /// Fixed-class trace budget of the full campaign.
    pub planned_fixed: usize,
    /// Random-class trace budget of the full campaign.
    pub planned_random: usize,
}

impl<S> Checkpoint<'_, S> {
    /// Fraction of the total trace budget consumed (the *information
    /// fraction* of sequential analysis), in `(0, 1]`.
    pub fn information_fraction(&self) -> f64 {
        let planned = self.planned_fixed + self.planned_random;
        if planned == 0 {
            1.0
        } else {
            (self.fixed_traces + self.random_traces) as f64 / planned as f64
        }
    }
}

/// A sequential-analysis stopping rule evaluated at round checkpoints.
///
/// `should_stop` sees only checkpoint-folded state, which is bit-identical
/// at any worker count — so the stop decision (and therefore the stop round)
/// never depends on the thread budget. Rules may keep per-look state
/// (alpha-spending, stability streaks); the engine calls them on one thread,
/// in round order, and never after returning `true`.
pub trait StoppingRule<S> {
    /// Returns `true` to terminate the trace stream at this checkpoint.
    fn should_stop(&mut self, checkpoint: &Checkpoint<'_, S>) -> bool;
}

/// The never-stopping rule: runs the full shard grid.
/// [`run_campaign_parallel`] is `run_campaign_adaptive` with this rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverStop;

impl<S> StoppingRule<S> for NeverStop {
    fn should_stop(&mut self, _checkpoint: &Checkpoint<'_, S>) -> bool {
        false
    }
}

/// The shared round-checkpointed driver: executes the interleaved shard
/// grid `shards_per_round` shards at a time, folds each round's private
/// sinks **in shard order** into the running accumulator, and consults
/// `rule` at every round boundary.
///
/// When `recorder` is enabled, the driver reports the campaign span, one
/// [`Payload::ShardSpan`] per shard (with the rng/simulate/accumulate phase
/// split), and one [`Payload::FoldSpan`] per round. All reporting happens
/// strictly outside the fold path — no RNG draw, shard order, or merge
/// sequence ever depends on the recorder — so traced outcomes are
/// byte-identical to untraced ones at every thread count and lane width.
#[allow(clippy::too_many_arguments)]
fn run_campaign_rounds<S, R, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards_per_round: usize,
    rule: &mut R,
    factory: F,
    recorder: &dyn Recorder,
) -> Result<CampaignOutcome<S>, NetlistError>
where
    S: MergeableSink,
    R: StoppingRule<S>,
    F: Fn() -> S + Sync,
{
    let engine = Engine::new(netlist, model, config, parallelism.lane_words())?;
    let shards = shard_grid(config);
    let shards_per_round = shards_per_round.max(1);
    let planned_rounds = shards.len().div_ceil(shards_per_round);

    let tracing = recorder.enabled();
    let campaign_start = if tracing { Some(Instant::now()) } else { None };
    if tracing {
        recorder.record(Payload::CampaignStart {
            gates: netlist.gate_count() as u64,
            planned_fixed: config.n_fixed as u64,
            planned_random: config.n_random as u64,
            threads: parallelism.threads() as u64,
            lane_words: parallelism.lane_words() as u64,
            shards: shards.len() as u64,
            planned_rounds: planned_rounds as u64,
        });
    }
    let fold_ns = AtomicU64::new(0);

    let mut acc: Option<S> = None;
    let mut stats = CampaignStats {
        planned_rounds,
        ..CampaignStats::default()
    };
    let mut grid_base = 0usize;
    for chunk in shards.chunks(shards_per_round) {
        let round = stats.rounds + 1;
        // Deterministic checkpoint fold: strictly ascending shard order,
        // streamed as shards finish so the round never holds one private
        // sink per shard (see `run_sharded_fold`).
        run_sharded_fold(
            chunk.len(),
            parallelism,
            |i| {
                let shard = chunk[i];
                let mut sink = factory();
                let mut timer = PhaseTimer::new(tracing);
                let t0 = timer.begin();
                engine.run_range_timed(shard.pop, shard.start, shard.count, &mut sink, &mut timer);
                if let Some(t0) = t0 {
                    recorder.record(Payload::ShardSpan {
                        round: round as u64,
                        grid_index: (grid_base + i) as u64,
                        pop: shard.pop.tag(),
                        start: shard.start as u64,
                        count: shard.count as u64,
                        wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        rng_ns: timer.nanos(Phase::Rng),
                        sim_ns: timer.nanos(Phase::Simulate),
                        acc_ns: timer.nanos(Phase::Accumulate),
                    });
                }
                sink
            },
            &mut acc,
            tracing.then_some(&fold_ns),
        );
        if tracing {
            recorder.record(Payload::FoldSpan {
                round: round as u64,
                shards: chunk.len() as u64,
                wall_ns: fold_ns.swap(0, Ordering::Relaxed),
            });
        }
        for shard in chunk {
            match shard.pop {
                Population::Fixed => stats.fixed_traces += shard.count,
                Population::Random => stats.random_traces += shard.count,
            }
        }
        grid_base += chunk.len();
        stats.rounds += 1;
        if stats.rounds < planned_rounds {
            let checkpoint = Checkpoint {
                sink: acc.as_ref().expect("non-empty round folds a sink"),
                round: stats.rounds,
                planned_rounds,
                fixed_traces: stats.fixed_traces,
                random_traces: stats.random_traces,
                planned_fixed: config.n_fixed,
                planned_random: config.n_random,
            };
            if rule.should_stop(&checkpoint) {
                stats.stopped_early = true;
                break;
            }
        }
    }
    if let Some(t0) = campaign_start {
        recorder.record(Payload::CampaignEnd {
            rounds: stats.rounds as u64,
            stopped_early: stats.stopped_early,
            fixed_traces: stats.fixed_traces as u64,
            random_traces: stats.random_traces as u64,
            wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
    }
    Ok(CampaignOutcome {
        sink: acc.unwrap_or_else(factory),
        stats,
    })
}

/// Runs a campaign across `parallelism` worker threads, each owning a
/// private sink, and folds the per-shard sinks in shard order.
///
/// The result is **bit-identical at any thread count**: the shard grid and
/// the merge order are pure functions of `config`, and every shard's random
/// streams are counter-derived from `(seed, population, trace index)`.
/// This is the never-stopping case of the round-checkpointed engine (see
/// [`run_campaign_adaptive`]), executed as one round so no checkpoint work
/// is paid.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign_parallel<S>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> Result<S, NetlistError>
where
    S: MergeableSink + Default,
{
    run_campaign_parallel_with(netlist, model, config, parallelism, S::default)
}

/// [`run_campaign_parallel`] with an explicit sink factory instead of the
/// `Default` bound — the entry point for sinks whose empty state carries
/// configuration (e.g. the gate-pair list of a bivariate accumulator). The
/// factory must produce *empty* sinks equivalent to each other; it exists
/// to configure shape, never to seed samples. Same determinism contract:
/// results are bit-identical at any thread count and lane width.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign_parallel_with<S, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    factory: F,
) -> Result<S, NetlistError>
where
    S: MergeableSink,
    F: Fn() -> S + Sync,
{
    let outcome = run_campaign_rounds(
        netlist,
        model,
        config,
        parallelism,
        usize::MAX,
        &mut NeverStop,
        factory,
        &NullRecorder,
    )?;
    Ok(outcome.sink)
}

/// Runs a campaign with round-checkpointed early stopping: after every
/// `shards_per_round` shards (see [`DEFAULT_SHARDS_PER_ROUND`]) the folded
/// accumulator is handed to `rule`, and the trace stream terminates once the
/// rule reports convergence.
///
/// `shards_per_round` also bounds per-round worker concurrency — the rule
/// must observe the folded round before the next one is scheduled, so at
/// most `min(threads, shards_per_round)` shards run at once. A thread
/// budget above `shards_per_round` buys nothing; raise the round size
/// instead (a configuration change, so the determinism contract is
/// unaffected — the stop round never depends on the thread count).
///
/// # Determinism contract
///
/// The early-stopped result is **byte-identical at any thread count** (the
/// rule only sees checkpoint-folded state, so the stop round is too), and
/// equals the *prefix* of a full non-adaptive run truncated at the same
/// round boundary: re-running [`run_campaign_parallel`] with the returned
/// `stats.fixed_traces`/`stats.random_traces` as the class budgets
/// reproduces the stopped sink bit for bit.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign_adaptive<S, R>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards_per_round: usize,
    rule: &mut R,
) -> Result<CampaignOutcome<S>, NetlistError>
where
    S: MergeableSink + Default,
    R: StoppingRule<S>,
{
    run_campaign_traced(
        netlist,
        model,
        config,
        parallelism,
        shards_per_round,
        rule,
        &NullRecorder,
    )
}

/// [`run_campaign_adaptive`] reporting structured trace events to
/// `recorder`: one [`Payload::ShardSpan`] per shard with the
/// rng/simulate/accumulate phase split, one [`Payload::FoldSpan`] per
/// round, and campaign start/end markers. A disabled recorder (the
/// [`NullRecorder`]) makes this identical — in cost and in outcome — to
/// the untraced call; an enabled one never changes the outcome either:
/// recording sits strictly outside the fold path, so the result stays
/// byte-identical at every thread count, lane width, and partitioning.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign_traced<S, R>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards_per_round: usize,
    rule: &mut R,
    recorder: &dyn Recorder,
) -> Result<CampaignOutcome<S>, NetlistError>
where
    S: MergeableSink + Default,
    R: StoppingRule<S>,
{
    run_campaign_traced_with(
        netlist,
        model,
        config,
        parallelism,
        shards_per_round,
        rule,
        S::default,
        recorder,
    )
}

/// [`run_campaign_traced`] with an explicit sink factory (see
/// [`run_campaign_parallel_with`] for the factory contract).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_traced_with<S, R, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    shards_per_round: usize,
    rule: &mut R,
    factory: F,
    recorder: &dyn Recorder,
) -> Result<CampaignOutcome<S>, NetlistError>
where
    S: MergeableSink,
    R: StoppingRule<S>,
    F: Fn() -> S + Sync,
{
    run_campaign_rounds(
        netlist,
        model,
        config,
        parallelism,
        shards_per_round,
        rule,
        factory,
        recorder,
    )
}

/// Convenience wrapper collecting dense [`GateSamples`] (preallocated from
/// the campaign configuration, so recording never reallocates).
///
/// # Errors
///
/// Propagates [`run_campaign`] errors.
pub fn collect_gate_samples(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
) -> Result<GateSamples, NetlistError> {
    let mut sink =
        GateSamples::with_capacity(netlist.gate_count(), config.n_fixed, config.n_random);
    run_campaign(netlist, model, config, &mut sink)?;
    Ok(sink)
}

/// Parallel variant of [`collect_gate_samples`]; bit-identical to the
/// sequential collection at any thread count.
///
/// # Errors
///
/// Propagates [`run_campaign_parallel`] errors.
pub fn collect_gate_samples_parallel(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> Result<GateSamples, NetlistError> {
    run_campaign_parallel(netlist, model, config, parallelism)
}

/// Per-trace total-power waveforms: `waves[trace][cycle]` is the summed
/// energy of every gate during that cycle (plus noise). Used by the
/// waveform-style figures and benches.
///
/// # Errors
///
/// Propagates simulator compilation errors.
pub fn collect_waveforms(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    pop: Population,
) -> Result<Vec<Vec<f64>>, NetlistError> {
    let sim = Simulator::new(netlist)?;
    let n_data = netlist.data_inputs().len();
    let n_mask = netlist.mask_inputs().len();
    let gates = netlist.gate_count();

    let mut seed_rng = StdRng::seed_from_u64(config.seed);
    let fixed_vec: Vec<bool> = match &config.fixed_vector {
        Some(v) => v.clone(),
        None => (0..n_data).map(|_| seed_rng.gen::<bool>()).collect(),
    };
    let mut data_rng = StdRng::seed_from_u64(config.seed ^ 0xDA7A_5EED);
    let mut mask_rng = StdRng::seed_from_u64(config.seed ^ 0x3A5C_0DE5);
    let mut noise_rng = StdRng::seed_from_u64(config.seed ^ 0x0153_B0B5);
    let caps: Vec<f64> = netlist.iter().map(|(_, g)| model.cap(g.kind())).collect();

    let n_traces = match pop {
        Population::Fixed => config.n_fixed,
        Population::Random => config.n_random,
    };
    let mut waves = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        let data: Vec<u64> = match pop {
            Population::Fixed => fixed_vec.iter().map(|&b| if b { 1 } else { 0 }).collect(),
            Population::Random => (0..n_data).map(|_| data_rng.gen::<u64>() & 1).collect(),
        };
        let mut st = sim.zero_state();
        let base_mask: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>() & 1).collect();
        sim.eval(&mut st, &vec![0u64; n_data], &base_mask);
        let mut prev = st.values().to_vec();
        let mut wave = Vec::with_capacity(config.cycles);
        for cycle in 0..config.cycles {
            let masks: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>() & 1).collect();
            sim.eval(&mut st, &data, &masks);
            let mut total = 0.0;
            for g in 0..gates {
                if (prev[g] ^ st.values()[g]) & 1 == 1 {
                    total += caps[g];
                }
            }
            total += model.noise_sigma() * sample_standard_normal(&mut noise_rng);
            wave.push(total);
            prev.copy_from_slice(st.values());
            if cycle + 1 < config.cycles {
                sim.clock(&mut st);
            }
        }
        waves.push(wave);
    }
    Ok(waves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn var(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    }

    #[test]
    fn sample_counts_match_config() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 130, 1);
        let s = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(s.gate_count(), n.gate_count());
        for id in n.ids() {
            assert_eq!(s.fixed(id).len(), 100);
            assert_eq!(s.random(id).len(), 130);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(64, 64, 9);
        let a = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        let b = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        for id in n.ids() {
            assert_eq!(a.fixed(id), b.fixed(id));
            assert_eq!(a.random(id), b.random(id));
        }
    }

    #[test]
    fn parallel_collection_is_bit_identical_to_sequential() {
        // The dense collector concatenates in trace order, so the parallel
        // engine must reproduce the sequential stream *exactly* — including
        // trailing partial batches and asymmetric class sizes.
        let n = generators::iscas_c17();
        let model = PowerModel::default();
        for (nf, nr) in [(100, 130), (65, 1), (TRACES_PER_SHARD + 7, 640)] {
            let cfg = CampaignConfig::new(nf, nr, 21);
            let seq = collect_gate_samples(&n, &model, &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                let par =
                    collect_gate_samples_parallel(&n, &model, &cfg, Parallelism::new(threads))
                        .unwrap();
                for id in n.ids() {
                    assert_eq!(seq.fixed(id), par.fixed(id), "threads={threads}");
                    assert_eq!(seq.random(id), par.random(id), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn shard_grid_is_a_pure_function_of_the_config() {
        let cfg = CampaignConfig::new(TRACES_PER_SHARD * 2 + 5, 3, 1);
        let shards = shard_grid(&cfg);
        assert_eq!(shards.len(), 4, "3 fixed shards + 1 random shard");
        let covered: usize = shards
            .iter()
            .filter(|s| s.pop == Population::Fixed)
            .map(|s| s.count)
            .sum();
        assert_eq!(covered, cfg.n_fixed);
        assert!(shards
            .iter()
            .all(|s| s.start % WORD_LANES == 0 && s.count <= TRACES_PER_SHARD));
    }

    #[test]
    fn shard_grid_interleaves_populations_in_ascending_trace_order() {
        let cfg = CampaignConfig::new(TRACES_PER_SHARD * 3, TRACES_PER_SHARD + 1, 1);
        let shards = shard_grid(&cfg);
        // F0 R0 F1 R1 F2 — trailing fixed extras after the shorter class.
        let pops: Vec<Population> = shards.iter().map(|s| s.pop).collect();
        assert_eq!(
            pops,
            vec![
                Population::Fixed,
                Population::Random,
                Population::Fixed,
                Population::Random,
                Population::Fixed,
            ]
        );
        // Each population's shards appear in ascending trace order.
        for pop in [Population::Fixed, Population::Random] {
            let starts: Vec<usize> = shards
                .iter()
                .filter(|s| s.pop == pop)
                .map(|s| s.start)
                .collect();
            assert!(
                starts.windows(2).all(|w| w[0] < w[1]),
                "{pop:?}: {starts:?}"
            );
        }
    }

    #[test]
    fn partition_shards_tiles_the_grid_contiguously() {
        for (n, parts) in [(0, 1), (1, 1), (7, 3), (8, 2), (8, 16), (13, 5)] {
            let ranges = partition_shards(n, parts);
            assert_eq!(ranges.len(), parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must tile without gaps");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover the whole grid");
            let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
            let (min, max) = (
                sizes.iter().min().copied().unwrap(),
                sizes.iter().max().copied().unwrap(),
            );
            assert!(max - min <= 1, "balanced partition: {sizes:?}");
        }
    }

    #[test]
    fn shard_states_fold_to_the_parallel_run_at_any_partitioning() {
        // Per-shard execution + canonical in-order fold must reproduce
        // run_campaign_parallel bit for bit regardless of how the grid is
        // cut into contiguous parts.
        let n = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(900, 1100, 17);
        let whole: GateSamples =
            run_campaign_parallel(&n, &model, &cfg, Parallelism::new(2)).unwrap();
        let n_shards = shard_grid(&cfg).len();
        for parts in [1usize, 2, 3, n_shards + 2] {
            let mut states: Vec<GateSamples> = Vec::new();
            for range in partition_shards(n_shards, parts) {
                states.extend(
                    run_shard_states::<GateSamples>(
                        &n,
                        &model,
                        &cfg,
                        Parallelism::sequential(),
                        range,
                    )
                    .unwrap(),
                );
            }
            assert_eq!(states.len(), n_shards);
            let folded = fold_shard_states(states);
            for id in n.ids() {
                assert_eq!(whole.fixed(id), folded.fixed(id), "parts = {parts}");
                assert_eq!(whole.random(id), folded.random(id), "parts = {parts}");
            }
        }
    }

    /// Test rule: stop unconditionally after a fixed number of rounds.
    struct StopAfter(usize);

    impl<S> StoppingRule<S> for StopAfter {
        fn should_stop(&mut self, c: &Checkpoint<'_, S>) -> bool {
            c.round >= self.0
        }
    }

    #[test]
    fn never_stop_rounds_match_single_round_fold() {
        // Checkpoint granularity is pure scheduling: folding in rounds of 2
        // shards produces the same merge sequence (and bytes) as one round.
        let n = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(1000, 900, 13);
        let whole: GateSamples =
            run_campaign_parallel(&n, &model, &cfg, Parallelism::new(2)).unwrap();
        let rounds: CampaignOutcome<GateSamples> =
            run_campaign_adaptive(&n, &model, &cfg, Parallelism::new(2), 2, &mut NeverStop)
                .unwrap();
        assert!(!rounds.stats.stopped_early);
        assert_eq!(rounds.stats.fixed_traces, 1000);
        assert_eq!(rounds.stats.random_traces, 900);
        for id in n.ids() {
            assert_eq!(whole.fixed(id), rounds.sink.fixed(id));
            assert_eq!(whole.random(id), rounds.sink.random(id));
        }
    }

    #[test]
    fn early_stop_is_the_exact_prefix_of_the_full_run() {
        let n = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(1200, 1200, 21);
        let stopped: CampaignOutcome<GateSamples> =
            run_campaign_adaptive(&n, &model, &cfg, Parallelism::new(3), 2, &mut StopAfter(2))
                .unwrap();
        assert!(stopped.stats.stopped_early);
        assert_eq!(stopped.stats.rounds, 2);
        // 2 rounds × 2 shards = F0 R0 F1 R1 → one full shard per class each.
        assert_eq!(stopped.stats.fixed_traces, 2 * TRACES_PER_SHARD);
        assert_eq!(stopped.stats.random_traces, 2 * TRACES_PER_SHARD);
        // The stopped sink equals the full run truncated at the boundary…
        let full = collect_gate_samples(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            assert_eq!(
                stopped.sink.fixed(id),
                &full.fixed(id)[..stopped.stats.fixed_traces]
            );
            assert_eq!(
                stopped.sink.random(id),
                &full.random(id)[..stopped.stats.random_traces]
            );
        }
        // …and a campaign re-configured to the stopped budgets reproduces it.
        let prefix_cfg = CampaignConfig::new(
            stopped.stats.fixed_traces,
            stopped.stats.random_traces,
            cfg.seed,
        );
        let prefix = collect_gate_samples(&n, &model, &prefix_cfg).unwrap();
        for id in n.ids() {
            assert_eq!(stopped.sink.fixed(id), prefix.fixed(id));
            assert_eq!(stopped.sink.random(id), prefix.random(id));
        }
    }

    #[test]
    fn stopping_rule_sees_balanced_checkpoints() {
        struct Recorder(Vec<(usize, usize, usize)>);
        impl<S> StoppingRule<S> for Recorder {
            fn should_stop(&mut self, c: &Checkpoint<'_, S>) -> bool {
                self.0.push((c.round, c.fixed_traces, c.random_traces));
                assert!(c.information_fraction() > 0.0 && c.information_fraction() <= 1.0);
                false
            }
        }
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(1024, 1024, 7);
        let mut rec = Recorder(Vec::new());
        let outcome: CampaignOutcome<WelchProbe> = run_campaign_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            2,
            &mut rec,
        )
        .unwrap();
        // 8 shards, 2 per round → 4 rounds; the last round has no checkpoint.
        assert_eq!(outcome.stats.rounds, 4);
        assert_eq!(rec.0, vec![(1, 256, 256), (2, 512, 512), (3, 768, 768)]);
    }

    /// Minimal mergeable sink for scheduler-focused tests.
    #[derive(Default)]
    struct WelchProbe {
        fixed: usize,
        random: usize,
    }

    impl TraceSink for WelchProbe {
        fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
            match pop {
                Population::Fixed => self.fixed += batch.lanes(),
                Population::Random => self.random += batch.lanes(),
            }
        }
    }

    impl MergeableSink for WelchProbe {
        fn merge(&mut self, other: Self) {
            self.fixed += other.fixed;
            self.random += other.random;
        }
    }

    #[test]
    fn sequential_run_sharded_stays_on_the_calling_thread() {
        // Regression: neither `Parallelism::sequential()` nor a single-shard
        // plan may spawn a scoped worker — the inline fold path must run the
        // work on the calling thread.
        let caller = std::thread::current().id();
        let ids = run_sharded(6, Parallelism::sequential(), |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller), "sequential run spawned");
        let ids = run_sharded(1, Parallelism::new(8), |_| std::thread::current().id());
        assert_eq!(ids, vec![caller], "single-shard run spawned");
        let empty = run_sharded(0, Parallelism::new(8), |_| std::thread::current().id());
        assert!(empty.is_empty());
    }

    /// Sink that records the lane count of every batch it receives.
    #[derive(Default)]
    struct LaneRecorder {
        batches: Vec<(Population, usize)>,
    }

    impl TraceSink for LaneRecorder {
        fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
            assert_eq!(batch.energies().len(), batch.gates() * batch.lanes());
            self.batches.push((pop, batch.lanes()));
        }
    }

    fn lane_counts(netlist: &Netlist, cfg: &CampaignConfig, lane_words: usize) -> Vec<Vec<usize>> {
        let engine = Engine::new(netlist, &PowerModel::default(), cfg, lane_words).unwrap();
        let mut rec = LaneRecorder::default();
        engine.run_range(Population::Fixed, 0, cfg.n_fixed, &mut rec);
        engine.run_range(Population::Random, 0, cfg.n_random, &mut rec);
        [Population::Fixed, Population::Random]
            .iter()
            .map(|pop| {
                rec.batches
                    .iter()
                    .filter(|(p, _)| p == pop)
                    .map(|(_, l)| *l)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn trailing_partial_batch_reports_true_lane_count() {
        // The last batch of each class must report its real lane count, not
        // a padded block width — at every lane width.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(130, 65, 2);
        // W = 1: 130 = 64 + 64 + 2, 65 = 64 + 1.
        assert_eq!(lane_counts(&n, &cfg, 1), vec![vec![64, 64, 2], vec![64, 1]]);
        // W = 2: 130 = 128 + 2 (the 2-lane block has one partial word).
        assert_eq!(lane_counts(&n, &cfg, 2), vec![vec![128, 2], vec![65]]);
        // W = 4: both classes fit one block with a partial trailing word.
        assert_eq!(lane_counts(&n, &cfg, 4), vec![vec![130], vec![65]]);
        assert_eq!(lane_counts(&n, &cfg, 8), vec![vec![130], vec![65]]);
    }

    #[test]
    fn energy_batch_rejects_malformed_shapes() {
        let e = vec![0.0; 12];
        // 3 gates × 4 lanes: well-formed.
        let b = EnergyBatch::new(&e, 3, 4).unwrap();
        assert_eq!(b.gates(), 3);
        assert_eq!(b.lanes(), 4);
        assert_eq!(b.gate_lanes(2), &e[8..12]);
        // Zero lanes.
        assert_eq!(
            EnergyBatch::new(&e, 12, 0).unwrap_err(),
            BatchShapeError::ZeroLanes
        );
        // Wider than any simulation block.
        assert_eq!(
            EnergyBatch::new(&e, 1, BATCH_LANES + 1).unwrap_err(),
            BatchShapeError::TooManyLanes {
                lanes: BATCH_LANES + 1
            }
        );
        // Length mismatch — the bug class the old debug_assert let through
        // in release builds.
        assert_eq!(
            EnergyBatch::new(&e, 3, 5).unwrap_err(),
            BatchShapeError::LengthMismatch {
                expected: 15,
                actual: 12
            }
        );
        // Error values render.
        assert!(BatchShapeError::ZeroLanes.to_string().contains("zero"));
        assert!(EnergyBatch::new(&e, 3, 5)
            .unwrap_err()
            .to_string()
            .contains("expected 15"));
    }

    #[test]
    fn lane_width_is_byte_identical_on_dense_samples() {
        // The dense collector must receive the exact same per-gate sample
        // stream at every lane width — including trailing partial blocks
        // with partial words (masked-off lanes never leak garbage).
        let n = generators::iscas_c17();
        let model = PowerModel::default();
        for (nf, nr) in [(130, 65), (64, 64), (300, 257), (1, 513)] {
            let cfg = CampaignConfig::new(nf, nr, 23);
            let collect = |w: usize| {
                let engine = Engine::new(&n, &model, &cfg, w).unwrap();
                let mut s = GateSamples::with_capacity(n.gate_count(), nf, nr);
                engine.run_range(Population::Fixed, 0, nf, &mut s);
                engine.run_range(Population::Random, 0, nr, &mut s);
                s
            };
            let base = collect(1);
            for w in [2usize, 4, 8] {
                let wide = collect(w);
                for id in n.ids() {
                    assert_eq!(base.fixed(id), wide.fixed(id), "W={w} nf={nf} nr={nr}");
                    assert_eq!(base.random(id), wide.random(id), "W={w} nf={nf} nr={nr}");
                }
            }
        }
    }

    #[test]
    fn glitch_path_is_width_invariant() {
        // The unit-delay (glitch) and multi-cycle paths use the toggle
        // counters rather than the single-cycle fast path; both must be
        // width-invariant too.
        let n = generators::multiplier(1, 4);
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(97, 70, 31).with_glitches();
        let collect = |w: usize| {
            let engine = Engine::new(&n, &model, &cfg, w).unwrap();
            let mut s = GateSamples::default();
            engine.run_range(Population::Fixed, 0, cfg.n_fixed, &mut s);
            engine.run_range(Population::Random, 0, cfg.n_random, &mut s);
            s
        };
        let base = collect(1);
        for w in [2usize, 8] {
            let wide = collect(w);
            for id in n.ids() {
                assert_eq!(base.fixed(id), wide.fixed(id), "W={w}");
                assert_eq!(base.random(id), wide.random(id), "W={w}");
            }
        }
    }

    #[test]
    fn multi_cycle_sequential_is_width_invariant() {
        let m = generators::memctrl(1, 3);
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(70, 97, 13).with_cycles(3);
        let collect = |w: usize| {
            let engine = Engine::new(&m, &model, &cfg, w).unwrap();
            let mut s = GateSamples::default();
            engine.run_range(Population::Fixed, 0, cfg.n_fixed, &mut s);
            engine.run_range(Population::Random, 0, cfg.n_random, &mut s);
            s
        };
        let base = collect(1);
        for w in [4usize] {
            let wide = collect(w);
            for id in m.ids() {
                assert_eq!(base.fixed(id), wide.fixed(id), "W={w}");
                assert_eq!(base.random(id), wide.random(id), "W={w}");
            }
        }
    }

    #[test]
    fn fixed_population_has_low_variance_random_high() {
        // An unmasked gate's toggles are deterministic under the fixed class,
        // so its sample variance is just the noise floor; under random data
        // the logic itself varies. This is the physical leakage TVLA detects.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(400, 400, 5);
        let model = PowerModel::default().with_noise(0.05);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        // Look at an internal nand driven by data.
        let gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::Nand)
            .map(|(id, _)| id)
            .unwrap();
        let vf = var(s.fixed(gate));
        let vr = var(s.random(gate));
        assert!(
            vr > vf * 3.0,
            "random-class variance should dominate: fixed {vf}, random {vr}"
        );
    }

    #[test]
    fn fixed_vs_fixed_gives_two_deterministic_classes() {
        let n = generators::iscas_c17();
        let v1 = vec![true, false, true, false, true];
        let v2 = vec![false, true, false, true, false];
        let cfg = CampaignConfig::new(50, 50, 3)
            .with_fixed_vector(v1)
            .fixed_vs_fixed(v2);
        let model = PowerModel::default().with_noise(0.0);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            assert!(var(s.fixed(id)) < 1e-12);
            assert!(var(s.random(id)) < 1e-12);
        }
    }

    #[test]
    fn zero_noise_fixed_class_is_constant() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(80, 80, 11);
        let model = PowerModel::default().with_noise(0.0);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            let f = s.fixed(id);
            assert!(f.iter().all(|&x| (x - f[0]).abs() < 1e-12));
        }
    }

    #[test]
    fn mask_inputs_randomize_both_populations() {
        // xor of data with a mask input: even the fixed class toggles
        // randomly, so the class means converge (no first-order leakage).
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(3000, 3000, 17);
        let model = PowerModel::default().with_noise(0.05);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        let xor_gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::Xor)
            .map(|(id, _)| id)
            .unwrap();
        let mf = mean(s.fixed(xor_gate));
        let mr = mean(s.random(xor_gate));
        assert!(
            (mf - mr).abs() < 0.1,
            "masked gate means should converge: fixed {mf}, random {mr}"
        );
        // And its fixed-class variance is now high (mask-driven toggling).
        assert!(var(s.fixed(xor_gate)) > 0.1);
    }

    #[test]
    fn sequential_design_accumulates_over_cycles() {
        let m = generators::memctrl(1, 3);
        let cfg1 = CampaignConfig::new(32, 32, 3).with_cycles(1);
        let cfg4 = CampaignConfig::new(32, 32, 3).with_cycles(4);
        let model = PowerModel::default().with_noise(0.0);
        let s1 = collect_gate_samples(&m, &model, &cfg1).unwrap();
        let s4 = collect_gate_samples(&m, &model, &cfg4).unwrap();
        let tot1: f64 = m.ids().map(|id| mean(s1.random(id))).sum();
        let tot4: f64 = m.ids().map(|id| mean(s4.random(id))).sum();
        assert!(tot4 > tot1, "more cycles, more switching: {tot4} vs {tot1}");
    }

    #[test]
    fn waveforms_have_requested_shape() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(10, 10, 2).with_cycles(3);
        let w = collect_waveforms(&n, &PowerModel::default(), &cfg, Population::Random).unwrap();
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn glitch_model_sees_static_hazards() {
        // g2 = a AND (NOT a) is statically 0 but glitches on a: 0 -> 1
        // under unit delay (a arrives before the inverter updates).
        let src = "
module h (a, y);
  input a;
  output y;
  not n1 (nb, a);
  and a1 (y, a, nb);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let model = PowerModel::default().with_noise(0.0);
        let and_gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::And)
            .map(|(id, _)| id)
            .unwrap();
        // Fixed vector all-ones: base application drives 0, stimulus drives 1.
        let mk = |glitch: bool| {
            let mut cfg = CampaignConfig::new(8, 8, 3).with_fixed_vector(vec![true]);
            if glitch {
                cfg = cfg.with_glitches();
            }
            collect_gate_samples(&n, &model, &cfg).unwrap()
        };
        let zero = mk(false);
        let unit = mk(true);
        // Zero-delay: the AND output stays 0 → zero energy.
        assert!(zero.fixed(and_gate).iter().all(|&e| e.abs() < 1e-12));
        // Unit-delay: the hazard costs two transitions worth of energy.
        assert!(unit.fixed(and_gate).iter().all(|&e| e > 1.0));
    }

    #[test]
    fn glitch_model_functionally_equivalent() {
        // Final settled outputs agree between the two delay models.
        let n = generators::sin(1, 5);
        let sim = Simulator::new(&n).unwrap();
        let data: Vec<u64> = (0..n.data_inputs().len())
            .map(|i| 0xABCD_EF01_2345_6789u64.rotate_left(i as u32))
            .collect();
        let mut st_zero = sim.zero_state();
        sim.eval(&mut st_zero, &data, &[]);
        let mut st_unit = sim.zero_state();
        sim.eval_unit_delay(&mut st_unit, &data, &[], |_, _| {});
        for (p, _) in n.outputs() {
            let _ = p;
        }
        for id in n.ids() {
            assert_eq!(st_zero.value(id), st_unit.value(id), "gate {id}");
        }
    }

    #[test]
    fn glitches_increase_energy_in_deep_logic() {
        let n = generators::multiplier(1, 5);
        let model = PowerModel::default().with_noise(0.0);
        let zero_cfg = CampaignConfig::new(0, 64, 9);
        let glitch_cfg = CampaignConfig::new(0, 64, 9).with_glitches();
        let z = collect_gate_samples(&n, &model, &zero_cfg).unwrap();
        let g = collect_gate_samples(&n, &model, &glitch_cfg).unwrap();
        let total =
            |s: &GateSamples| -> f64 { n.ids().map(|id| s.random(id).iter().sum::<f64>()).sum() };
        let tz = total(&z);
        let tg = total(&g);
        assert!(
            tg > tz * 1.2,
            "glitching should add energy in an array multiplier: {tg} vs {tz}"
        );
    }

    use crate::logic::Simulator;

    #[test]
    fn partial_batches_handled() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(65, 1, 2);
        let s = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(s.fixed(GateId::new(0)).len(), 65);
        assert_eq!(s.random(GateId::new(0)).len(), 1);
    }

    #[test]
    fn one_sided_campaign_merges_cleanly() {
        // n_fixed == 0: parallel merging must cope with sinks that only ever
        // saw one population.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(0, 300, 4);
        let s: GateSamples =
            run_campaign_parallel(&n, &PowerModel::default(), &cfg, Parallelism::new(4)).unwrap();
        assert_eq!(s.random(GateId::new(0)).len(), 300);
        assert!(s.fixed.iter().all(Vec::is_empty));
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::new(3).threads(), 3);
        assert!(Parallelism::auto().threads() >= 1);
    }
}
