//! Trace campaigns: batched acquisition of per-gate power samples for the
//! two TVLA populations.
//!
//! A *trace* is one stimulus application: the design is first settled on a
//! base vector (all zeros), then driven with the trace's data vector while
//! toggles are counted (plus `cycles - 1` additional clock cycles for
//! sequential designs). Mask inputs receive fresh randomness at every
//! evaluation of every trace — for both populations — mirroring the on-chip
//! mask RNG of a protected implementation.
//!
//! Samples are streamed to a [`TraceSink`] in 64-lane batches so leakage
//! assessment can run in constant memory; [`GateSamples`] is the dense
//! collector used for small designs and figures.

use polaris_netlist::{GateId, Netlist, NetlistError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::logic::Simulator;
use crate::power::{sample_standard_normal, PowerModel};

/// Which TVLA population a batch of traces belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Population {
    /// The fixed-input class `Q0`.
    Fixed,
    /// The random-input (or second fixed, for fixed-vs-fixed) class `Q1`.
    Random,
}

/// Timing model used when counting switching activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DelayModel {
    /// Zero-delay: one settled evaluation per cycle; each gate toggles at
    /// most once. Fast, glitch-free.
    #[default]
    Zero,
    /// Unit-delay: synchronous-relaxation settling; gates at reconvergent
    /// fanout glitch (multiple transitions per cycle), concentrating power
    /// — and leakage — in deep logic, as on real silicon.
    UnitDelay,
}

/// Receiver for streamed per-gate energy samples.
pub trait TraceSink {
    /// Records one batch. `energies[g * lanes + l]` is the energy sample of
    /// gate `g` in trace-lane `l`; `gates * lanes == energies.len()`.
    fn record_batch(&mut self, pop: Population, energies: &[f64], gates: usize, lanes: usize);
}

/// Campaign parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Number of traces in the fixed class.
    pub n_fixed: usize,
    /// Number of traces in the random class.
    pub n_random: usize,
    /// Master seed; every random stream (data, masks, noise, fixed vector)
    /// derives from it, so campaigns are reproducible.
    pub seed: u64,
    /// Clock cycles per trace (1 for combinational designs; sequential
    /// designs accumulate toggles over this many cycles).
    pub cycles: usize,
    /// Explicit fixed-class data vector; derived from `seed` when `None`.
    pub fixed_vector: Option<Vec<bool>>,
    /// When set, the second class also uses a fixed vector (fixed-vs-fixed
    /// TVLA) instead of per-trace random data.
    pub second_fixed_vector: Option<Vec<bool>>,
    /// Switching-activity timing model.
    pub delay_model: DelayModel,
}

impl CampaignConfig {
    /// Fixed-vs-random campaign with `n_fixed == n_random == n` traces.
    pub fn new(n_fixed: usize, n_random: usize, seed: u64) -> Self {
        CampaignConfig {
            n_fixed,
            n_random,
            seed,
            cycles: 1,
            fixed_vector: None,
            second_fixed_vector: None,
            delay_model: DelayModel::Zero,
        }
    }

    /// Sets the number of clock cycles per trace (sequential designs).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn with_cycles(mut self, cycles: usize) -> Self {
        assert!(cycles >= 1, "at least one cycle per trace");
        self.cycles = cycles;
        self
    }

    /// Uses an explicit fixed-class vector.
    pub fn with_fixed_vector(mut self, v: Vec<bool>) -> Self {
        self.fixed_vector = Some(v);
        self
    }

    /// Switches to fixed-vs-fixed TVLA with the given second vector.
    pub fn fixed_vs_fixed(mut self, v: Vec<bool>) -> Self {
        self.second_fixed_vector = Some(v);
        self
    }

    /// Selects the unit-delay (glitch-aware) timing model.
    pub fn with_glitches(mut self) -> Self {
        self.delay_model = DelayModel::UnitDelay;
        self
    }
}

/// Dense per-gate sample collector: `fixed[g]` / `random[g]` hold one energy
/// value per trace.
#[derive(Clone, Debug, Default)]
pub struct GateSamples {
    fixed: Vec<Vec<f64>>,
    random: Vec<Vec<f64>>,
}

impl GateSamples {
    /// Number of gates covered.
    pub fn gate_count(&self) -> usize {
        self.fixed.len()
    }

    /// Fixed-class samples of one gate.
    pub fn fixed(&self, id: GateId) -> &[f64] {
        &self.fixed[id.index()]
    }

    /// Random-class samples of one gate.
    pub fn random(&self, id: GateId) -> &[f64] {
        &self.random[id.index()]
    }
}

impl TraceSink for GateSamples {
    fn record_batch(&mut self, pop: Population, energies: &[f64], gates: usize, lanes: usize) {
        debug_assert_eq!(energies.len(), gates * lanes);
        let store = match pop {
            Population::Fixed => &mut self.fixed,
            Population::Random => &mut self.random,
        };
        if store.is_empty() {
            store.resize(gates, Vec::new());
        }
        for g in 0..gates {
            store[g].extend_from_slice(&energies[g * lanes..g * lanes + lanes]);
        }
    }
}

#[inline]
fn add_toggles(toggles: &mut [u32], gate: usize, diff: u64) {
    if diff != 0 {
        let base = gate * 64;
        let mut d = diff;
        while d != 0 {
            let l = d.trailing_zeros() as usize;
            toggles[base + l] += 1;
            d &= d - 1;
        }
    }
}

/// Runs a campaign, streaming batches into `sink`.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the design cannot be
/// levelized.
pub fn run_campaign<S: TraceSink>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    sink: &mut S,
) -> Result<(), NetlistError> {
    let sim = Simulator::new(netlist)?;
    let n_data = netlist.data_inputs().len();
    let n_mask = netlist.mask_inputs().len();
    let gates = netlist.gate_count();

    let mut seed_rng = StdRng::seed_from_u64(config.seed);
    let fixed_vec: Vec<bool> = match &config.fixed_vector {
        Some(v) => {
            assert_eq!(v.len(), n_data, "fixed vector width mismatch");
            v.clone()
        }
        None => (0..n_data).map(|_| seed_rng.gen::<bool>()).collect(),
    };
    let second_fixed: Option<Vec<bool>> = config.second_fixed_vector.as_ref().map(|v| {
        assert_eq!(v.len(), n_data, "second fixed vector width mismatch");
        v.clone()
    });

    let mut data_rng = StdRng::seed_from_u64(config.seed ^ 0xDA7A_5EED);
    let mut mask_rng = StdRng::seed_from_u64(config.seed ^ 0x3A5C_0DE5);
    let mut noise_rng = StdRng::seed_from_u64(config.seed ^ 0x0153_B0B5);

    let caps: Vec<f64> = netlist.iter().map(|(_, g)| model.cap(g.kind())).collect();
    let sigma = model.noise_sigma();

    let run_population = |pop: Population,
                          n_traces: usize,
                          data_rng: &mut StdRng,
                          mask_rng: &mut StdRng,
                          noise_rng: &mut StdRng,
                          sink: &mut S| {
        let broadcast =
            |v: &Vec<bool>| -> Vec<u64> { v.iter().map(|&b| if b { !0u64 } else { 0 }).collect() };
        let mut remaining = n_traces;
        while remaining > 0 {
            let lanes = remaining.min(64);
            remaining -= lanes;
            let lane_mask: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };

            let data: Vec<u64> = match (pop, &second_fixed) {
                (Population::Fixed, _) => broadcast(&fixed_vec),
                (Population::Random, Some(v2)) => broadcast(v2),
                (Population::Random, None) => (0..n_data)
                    .map(|_| data_rng.gen::<u64>() & lane_mask)
                    .collect(),
            };

            let mut st = sim.zero_state();
            let mut toggles = vec![0u32; gates * 64];
            // Base application: settle on all-zero data with fresh masks;
            // toggles are not counted here.
            let base_mask: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>()).collect();
            sim.eval(&mut st, &vec![0u64; n_data], &base_mask);
            let mut prev = st.values().to_vec();

            for cycle in 0..config.cycles {
                let masks: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>()).collect();
                match config.delay_model {
                    DelayModel::Zero => {
                        sim.eval(&mut st, &data, &masks);
                        for (g, (&p, &v)) in prev.iter().zip(st.values()).enumerate() {
                            add_toggles(&mut toggles, g, (p ^ v) & lane_mask);
                        }
                    }
                    DelayModel::UnitDelay => {
                        // Every settling wave's transition counts (glitches).
                        sim.eval_unit_delay(&mut st, &data, &masks, |g, diff| {
                            add_toggles(&mut toggles, g, diff & lane_mask);
                        });
                    }
                }
                prev.copy_from_slice(st.values());
                if cycle + 1 < config.cycles {
                    sim.clock(&mut st);
                }
            }

            let mut energies = vec![0.0f64; gates * lanes];
            for g in 0..gates {
                let cap = caps[g];
                for l in 0..lanes {
                    let e = cap * f64::from(toggles[g * 64 + l])
                        + sigma * sample_standard_normal(noise_rng);
                    energies[g * lanes + l] = e;
                }
            }
            sink.record_batch(pop, &energies, gates, lanes);
        }
    };

    run_population(
        Population::Fixed,
        config.n_fixed,
        &mut data_rng,
        &mut mask_rng,
        &mut noise_rng,
        sink,
    );
    run_population(
        Population::Random,
        config.n_random,
        &mut data_rng,
        &mut mask_rng,
        &mut noise_rng,
        sink,
    );
    Ok(())
}

/// Convenience wrapper collecting dense [`GateSamples`].
///
/// # Errors
///
/// Propagates [`run_campaign`] errors.
pub fn collect_gate_samples(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
) -> Result<GateSamples, NetlistError> {
    let mut sink = GateSamples::default();
    run_campaign(netlist, model, config, &mut sink)?;
    Ok(sink)
}

/// Per-trace total-power waveforms: `waves[trace][cycle]` is the summed
/// energy of every gate during that cycle (plus noise). Used by the
/// waveform-style figures and benches.
///
/// # Errors
///
/// Propagates simulator compilation errors.
pub fn collect_waveforms(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    pop: Population,
) -> Result<Vec<Vec<f64>>, NetlistError> {
    let sim = Simulator::new(netlist)?;
    let n_data = netlist.data_inputs().len();
    let n_mask = netlist.mask_inputs().len();
    let gates = netlist.gate_count();

    let mut seed_rng = StdRng::seed_from_u64(config.seed);
    let fixed_vec: Vec<bool> = match &config.fixed_vector {
        Some(v) => v.clone(),
        None => (0..n_data).map(|_| seed_rng.gen::<bool>()).collect(),
    };
    let mut data_rng = StdRng::seed_from_u64(config.seed ^ 0xDA7A_5EED);
    let mut mask_rng = StdRng::seed_from_u64(config.seed ^ 0x3A5C_0DE5);
    let mut noise_rng = StdRng::seed_from_u64(config.seed ^ 0x0153_B0B5);
    let caps: Vec<f64> = netlist.iter().map(|(_, g)| model.cap(g.kind())).collect();

    let n_traces = match pop {
        Population::Fixed => config.n_fixed,
        Population::Random => config.n_random,
    };
    let mut waves = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        let data: Vec<u64> = match pop {
            Population::Fixed => fixed_vec.iter().map(|&b| if b { 1 } else { 0 }).collect(),
            Population::Random => (0..n_data).map(|_| data_rng.gen::<u64>() & 1).collect(),
        };
        let mut st = sim.zero_state();
        let base_mask: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>() & 1).collect();
        sim.eval(&mut st, &vec![0u64; n_data], &base_mask);
        let mut prev = st.values().to_vec();
        let mut wave = Vec::with_capacity(config.cycles);
        for cycle in 0..config.cycles {
            let masks: Vec<u64> = (0..n_mask).map(|_| mask_rng.gen::<u64>() & 1).collect();
            sim.eval(&mut st, &data, &masks);
            let mut total = 0.0;
            for g in 0..gates {
                if (prev[g] ^ st.values()[g]) & 1 == 1 {
                    total += caps[g];
                }
            }
            total += model.noise_sigma() * sample_standard_normal(&mut noise_rng);
            wave.push(total);
            prev.copy_from_slice(st.values());
            if cycle + 1 < config.cycles {
                sim.clock(&mut st);
            }
        }
        waves.push(wave);
    }
    Ok(waves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn var(xs: &[f64]) -> f64 {
        let m = mean(xs);
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    }

    #[test]
    fn sample_counts_match_config() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 130, 1);
        let s = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(s.gate_count(), n.gate_count());
        for id in n.ids() {
            assert_eq!(s.fixed(id).len(), 100);
            assert_eq!(s.random(id).len(), 130);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(64, 64, 9);
        let a = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        let b = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        for id in n.ids() {
            assert_eq!(a.fixed(id), b.fixed(id));
            assert_eq!(a.random(id), b.random(id));
        }
    }

    #[test]
    fn fixed_population_has_low_variance_random_high() {
        // An unmasked gate's toggles are deterministic under the fixed class,
        // so its sample variance is just the noise floor; under random data
        // the logic itself varies. This is the physical leakage TVLA detects.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(400, 400, 5);
        let model = PowerModel::default().with_noise(0.05);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        // Look at an internal nand driven by data.
        let gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::Nand)
            .map(|(id, _)| id)
            .unwrap();
        let vf = var(s.fixed(gate));
        let vr = var(s.random(gate));
        assert!(
            vr > vf * 3.0,
            "random-class variance should dominate: fixed {vf}, random {vr}"
        );
    }

    #[test]
    fn fixed_vs_fixed_gives_two_deterministic_classes() {
        let n = generators::iscas_c17();
        let v1 = vec![true, false, true, false, true];
        let v2 = vec![false, true, false, true, false];
        let cfg = CampaignConfig::new(50, 50, 3)
            .with_fixed_vector(v1)
            .fixed_vs_fixed(v2);
        let model = PowerModel::default().with_noise(0.0);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            assert!(var(s.fixed(id)) < 1e-12);
            assert!(var(s.random(id)) < 1e-12);
        }
    }

    #[test]
    fn zero_noise_fixed_class_is_constant() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(80, 80, 11);
        let model = PowerModel::default().with_noise(0.0);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            let f = s.fixed(id);
            assert!(f.iter().all(|&x| (x - f[0]).abs() < 1e-12));
        }
    }

    #[test]
    fn mask_inputs_randomize_both_populations() {
        // xor of data with a mask input: even the fixed class toggles
        // randomly, so the class means converge (no first-order leakage).
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(3000, 3000, 17);
        let model = PowerModel::default().with_noise(0.05);
        let s = collect_gate_samples(&n, &model, &cfg).unwrap();
        let xor_gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::Xor)
            .map(|(id, _)| id)
            .unwrap();
        let mf = mean(s.fixed(xor_gate));
        let mr = mean(s.random(xor_gate));
        assert!(
            (mf - mr).abs() < 0.1,
            "masked gate means should converge: fixed {mf}, random {mr}"
        );
        // And its fixed-class variance is now high (mask-driven toggling).
        assert!(var(s.fixed(xor_gate)) > 0.1);
    }

    #[test]
    fn sequential_design_accumulates_over_cycles() {
        let m = generators::memctrl(1, 3);
        let cfg1 = CampaignConfig::new(32, 32, 3).with_cycles(1);
        let cfg4 = CampaignConfig::new(32, 32, 3).with_cycles(4);
        let model = PowerModel::default().with_noise(0.0);
        let s1 = collect_gate_samples(&m, &model, &cfg1).unwrap();
        let s4 = collect_gate_samples(&m, &model, &cfg4).unwrap();
        let tot1: f64 = m.ids().map(|id| mean(s1.random(id))).sum();
        let tot4: f64 = m.ids().map(|id| mean(s4.random(id))).sum();
        assert!(tot4 > tot1, "more cycles, more switching: {tot4} vs {tot1}");
    }

    #[test]
    fn waveforms_have_requested_shape() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(10, 10, 2).with_cycles(3);
        let w = collect_waveforms(&n, &PowerModel::default(), &cfg, Population::Random).unwrap();
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn glitch_model_sees_static_hazards() {
        // g2 = a AND (NOT a) is statically 0 but glitches on a: 0 -> 1
        // under unit delay (a arrives before the inverter updates).
        let src = "
module h (a, y);
  input a;
  output y;
  not n1 (nb, a);
  and a1 (y, a, nb);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let model = PowerModel::default().with_noise(0.0);
        let and_gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::And)
            .map(|(id, _)| id)
            .unwrap();
        // Fixed vector all-ones: base application drives 0, stimulus drives 1.
        let mk = |glitch: bool| {
            let mut cfg = CampaignConfig::new(8, 8, 3).with_fixed_vector(vec![true]);
            if glitch {
                cfg = cfg.with_glitches();
            }
            collect_gate_samples(&n, &model, &cfg).unwrap()
        };
        let zero = mk(false);
        let unit = mk(true);
        // Zero-delay: the AND output stays 0 → zero energy.
        assert!(zero.fixed(and_gate).iter().all(|&e| e.abs() < 1e-12));
        // Unit-delay: the hazard costs two transitions worth of energy.
        assert!(unit.fixed(and_gate).iter().all(|&e| e > 1.0));
    }

    #[test]
    fn glitch_model_functionally_equivalent() {
        // Final settled outputs agree between the two delay models.
        let n = generators::sin(1, 5);
        let sim = Simulator::new(&n).unwrap();
        let data: Vec<u64> = (0..n.data_inputs().len())
            .map(|i| 0xABCD_EF01_2345_6789u64.rotate_left(i as u32))
            .collect();
        let mut st_zero = sim.zero_state();
        sim.eval(&mut st_zero, &data, &[]);
        let mut st_unit = sim.zero_state();
        sim.eval_unit_delay(&mut st_unit, &data, &[], |_, _| {});
        for (p, _) in n.outputs() {
            let _ = p;
        }
        for id in n.ids() {
            assert_eq!(st_zero.value(id), st_unit.value(id), "gate {id}");
        }
    }

    #[test]
    fn glitches_increase_energy_in_deep_logic() {
        let n = generators::multiplier(1, 5);
        let model = PowerModel::default().with_noise(0.0);
        let zero_cfg = CampaignConfig::new(0, 64, 9);
        let glitch_cfg = CampaignConfig::new(0, 64, 9).with_glitches();
        let z = collect_gate_samples(&n, &model, &zero_cfg).unwrap();
        let g = collect_gate_samples(&n, &model, &glitch_cfg).unwrap();
        let total =
            |s: &GateSamples| -> f64 { n.ids().map(|id| s.random(id).iter().sum::<f64>()).sum() };
        let tz = total(&z);
        let tg = total(&g);
        assert!(
            tg > tz * 1.2,
            "glitching should add energy in an array multiplier: {tg} vs {tz}"
        );
    }

    use crate::logic::Simulator;

    #[test]
    fn partial_batches_handled() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(65, 1, 2);
        let s = collect_gate_samples(&n, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(s.fixed(GateId::new(0)).len(), 65);
        assert_eq!(s.random(GateId::new(0)).len(), 1);
    }
}
