//! Gate-level logic simulation and power-trace acquisition.
//!
//! The simulator is *bit-parallel and multi-word*: every signal is held as
//! `W` consecutive `u64` words (`W ∈ {1, 2, 4, 8}` lane words, each word
//! carrying 64 independent trace lanes), so up to `W × 64 = 512` traces
//! advance per gate visit in straight-line word-parallel code the
//! autovectorizer can widen to SIMD registers. The lane width is a pure
//! throughput knob ([`Parallelism::with_lane_words`]): every random stream
//! stays keyed per 64-lane word, so campaign outcomes are **byte-identical
//! at every width** — same guarantee as the thread count. On top of the
//! logic core sits a switching-activity power model (per-cell capacitance ×
//! toggle count + Gaussian measurement noise) and [`campaign`] — the
//! fixed-vs-random / fixed-vs-fixed trace campaigns TVLA consumes.
//!
//! Mask inputs (see [`Netlist::mask_inputs`][polaris_netlist::Netlist::mask_inputs])
//! are re-randomized on **every trace for both populations**, which is what
//! models the fresh remasking randomness of a protected implementation: a
//! masked gate's switching is driven by the masks, decorrelating its power
//! from the data and collapsing the t-statistic.
//!
//! Campaigns are *sharded*: every random stream is counter-derived from
//! `(master_seed, population, trace index)`, so
//! [`campaign::run_campaign_parallel`] can split a campaign across worker
//! threads — each owning a private [`MergeableSink`] — and fold the shards
//! back deterministically. Results are bit-identical at any thread count.
//! The shard grid is walked in *rounds*: [`campaign::run_campaign_adaptive`]
//! evaluates a [`StoppingRule`] on the checkpoint-folded state after each
//! round and terminates the trace stream once the leakage verdict has
//! converged — an early-stopped run is the exact prefix of the full run.
//! Whole *suites* of campaigns schedule as [`fleet`] work items on one
//! shared pool ([`fleet::run_fleet`]): shards of different campaigns
//! interleave on the same workers while every job stays byte-identical to
//! its standalone run.
//!
//! # Example
//!
//! ```
//! use polaris_netlist::generators;
//! use polaris_sim::{CampaignConfig, PowerModel, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generators::iscas_c17();
//! let sim = Simulator::new(&design)?;
//! // Functional check: drive all-ones, read outputs.
//! let outs = sim.eval_bool(&[true; 5], &[])?;
//! assert_eq!(outs.len(), 2);
//!
//! // Power campaign: 128 fixed vs 128 random traces.
//! let cfg = CampaignConfig::new(128, 128, 0xC0FFEE);
//! let samples = polaris_sim::campaign::collect_gate_samples(
//!     &design,
//!     &PowerModel::default(),
//!     &cfg,
//! )?;
//! assert_eq!(samples.gate_count(), design.gate_count());
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod fleet;
pub mod logic;
pub mod power;

pub use campaign::{
    collect_gate_samples, collect_gate_samples_parallel, fold_shard_states, partition_shards,
    run_campaign, run_campaign_adaptive, run_campaign_parallel, run_campaign_parallel_with,
    run_campaign_traced, run_campaign_traced_with, run_shard_states, run_shard_states_traced_with,
    run_shard_states_with, shard_grid, BatchShapeError, CampaignConfig, CampaignOutcome,
    CampaignStats, Checkpoint, DelayModel, EnergyBatch, GateSamples, MergeableSink, NeverStop,
    Parallelism, Population, ShardSpec, StoppingRule, TraceSink, BATCH_LANES, DEFAULT_LANE_WORDS,
    MAX_LANE_WORDS, WORD_LANES,
};
pub use fleet::{job_rounds, run_fleet, run_fleet_traced, FleetJob};
pub use logic::{BlockState, SimState, Simulator};
pub use power::PowerModel;
