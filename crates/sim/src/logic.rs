//! Bit-parallel levelized logic simulation over multi-word lane blocks.
//!
//! Every signal is held as `W` consecutive `u64` words (`W ∈ {1, 2, 4, 8}`,
//! a compile-time const generic), so one gate visit evaluates `W × 64`
//! independent trace lanes with straight-line word-parallel bitwise ops the
//! autovectorizer can chew on. [`SimState`] is the single-word (`W = 1`,
//! 64-lane) specialization that the scalar [`Simulator::eval`] API and all
//! functional consumers use; the campaign engine drives the `*_block`
//! entry points at wider `W`. Lane values are independent of `W`: word `w`
//! of a block carries exactly the lanes a `W = 1` evaluation of that word's
//! inputs would produce.

use polaris_netlist::{GateId, GateKind, Netlist, NetlistError};

/// Signal state for one `W`-word simulation block (`W × 64` trace lanes):
/// `W` consecutive `u64` words per gate (gate-major layout), with the
/// flip-flop states held separately so a clock edge is an explicit commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockState<const W: usize> {
    /// Current value words of every gate, `W` per gate (gate-major); lane
    /// `i` of word `w` carries trace `w * 64 + i` of the block.
    values: Vec<u64>,
    /// State words of every flip-flop, indexed like `values`.
    dff_state: Vec<u64>,
}

/// Signal state for one 64-lane batch — the single-word block.
pub type SimState = BlockState<1>;

impl<const W: usize> BlockState<W> {
    /// All value words, gate-major: gate `g` owns `values()[g * W..(g + 1) * W]`.
    /// For `W = 1` this is one word per gate, indexed by gate id.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The `W` value words of one gate.
    pub fn block(&self, id: GateId) -> &[u64] {
        &self.values[id.index() * W..(id.index() + 1) * W]
    }

    /// Resets every value and flip-flop word to zero (in place, keeping the
    /// allocation — the campaign engine's per-block reset).
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.dff_state.fill(0);
    }
}

impl BlockState<1> {
    /// Value word of a gate.
    pub fn value(&self, id: GateId) -> u64 {
        self.values[id.index()]
    }
}

#[inline]
fn load<const W: usize>(vals: &[u64], idx: usize) -> [u64; W] {
    let mut out = [0u64; W];
    out.copy_from_slice(&vals[idx * W..idx * W + W]);
    out
}

#[inline]
fn invert<const W: usize>(mut a: [u64; W]) -> [u64; W] {
    for v in &mut a {
        *v = !*v;
    }
    a
}

#[inline]
fn fold_block<const W: usize>(
    vals: &[u64],
    fanin: &[GateId],
    init: u64,
    op: impl Fn(u64, u64) -> u64,
) -> [u64; W] {
    let mut acc = [init; W];
    for f in fanin {
        let x = load::<W>(vals, f.index());
        for w in 0..W {
            acc[w] = op(acc[w], x[w]);
        }
    }
    acc
}

/// Evaluates one gate from the value words in `vals`. Returns `None` for
/// kinds the callers handle specially (inputs and flops).
#[inline]
fn eval_gate<const W: usize>(vals: &[u64], gate: &polaris_netlist::Gate) -> Option<[u64; W]> {
    let v = match gate.kind() {
        GateKind::Input | GateKind::Dff => return None,
        GateKind::Const0 => [0u64; W],
        GateKind::Const1 => [!0u64; W],
        GateKind::Buf => load(vals, gate.fanin()[0].index()),
        GateKind::Not => invert(load(vals, gate.fanin()[0].index())),
        GateKind::And => fold_block(vals, gate.fanin(), !0u64, |a, b| a & b),
        GateKind::Or => fold_block(vals, gate.fanin(), 0, |a, b| a | b),
        GateKind::Nand => invert(fold_block(vals, gate.fanin(), !0u64, |a, b| a & b)),
        GateKind::Nor => invert(fold_block(vals, gate.fanin(), 0, |a, b| a | b)),
        GateKind::Xor => fold_block(vals, gate.fanin(), 0, |a, b| a ^ b),
        GateKind::Xnor => invert(fold_block(vals, gate.fanin(), 0, |a, b| a ^ b)),
        GateKind::Mux => {
            let s = load::<W>(vals, gate.fanin()[0].index());
            let a = load::<W>(vals, gate.fanin()[1].index());
            let b = load::<W>(vals, gate.fanin()[2].index());
            let mut out = [0u64; W];
            for w in 0..W {
                out[w] = (s[w] & a[w]) | (!s[w] & b[w]);
            }
            out
        }
    };
    Some(v)
}

/// A compiled, levelized simulator for one netlist.
///
/// Construction topologically sorts the combinational logic once; every
/// [`Simulator::eval`] / [`Simulator::eval_block`] then visits gates in
/// that fixed order, evaluating all lanes of a block per visit.
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
}

impl<'a> Simulator<'a> {
    /// Compiles a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design has
    /// combinational feedback.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        Ok(Simulator { netlist, order })
    }

    /// The netlist this simulator was compiled for.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Creates an all-zero single-word state (flip-flops reset to 0).
    pub fn zero_state(&self) -> SimState {
        self.zero_block::<1>()
    }

    /// Creates an all-zero `W`-word block state (flip-flops reset to 0).
    pub fn zero_block<const W: usize>(&self) -> BlockState<W> {
        BlockState {
            values: vec![0; self.netlist.gate_count() * W],
            dff_state: vec![0; self.netlist.gate_count() * W],
        }
    }

    /// Settles the combinational logic for the given input words.
    ///
    /// `data` and `mask` are lane words for the data and mask inputs, in
    /// declaration order. Flip-flop outputs present their current state.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the input counts of the netlist.
    pub fn eval(&self, state: &mut SimState, data: &[u64], mask: &[u64]) {
        self.eval_block::<1>(state, data, mask);
    }

    /// `W`-word variant of [`Simulator::eval`]: settles all `W × 64` lanes
    /// of a block per gate visit. `data` and `mask` hold `W` consecutive
    /// words per input (input-major), matching the state's gate-major
    /// layout; for `W = 1` the layout coincides with the scalar API.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match `W ×` the input counts.
    pub fn eval_block<const W: usize>(
        &self,
        state: &mut BlockState<W>,
        data: &[u64],
        mask: &[u64],
    ) {
        let nl = self.netlist;
        assert_eq!(
            data.len(),
            nl.data_inputs().len() * W,
            "data input width mismatch"
        );
        assert_eq!(
            mask.len(),
            nl.mask_inputs().len() * W,
            "mask input width mismatch"
        );
        for (k, &id) in nl.data_inputs().iter().enumerate() {
            let i = id.index();
            state.values[i * W..i * W + W].copy_from_slice(&data[k * W..k * W + W]);
        }
        for (k, &id) in nl.mask_inputs().iter().enumerate() {
            let i = id.index();
            state.values[i * W..i * W + W].copy_from_slice(&mask[k * W..k * W + W]);
        }
        for &id in &self.order {
            let gate = nl.gate(id);
            let i = id.index();
            if gate.kind() == GateKind::Dff {
                let (values, dff) = (&mut state.values, &state.dff_state);
                values[i * W..i * W + W].copy_from_slice(&dff[i * W..i * W + W]);
                continue;
            }
            let Some(v) = eval_gate::<W>(&state.values, gate) else {
                continue; // inputs: already assigned
            };
            state.values[i * W..i * W + W].copy_from_slice(&v);
        }
    }

    /// Commits flip-flop next-state values (a positive clock edge). Call
    /// after [`Simulator::eval`]; the new state becomes visible at the next
    /// `eval`.
    pub fn clock(&self, state: &mut SimState) {
        self.clock_block::<1>(state);
    }

    /// `W`-word variant of [`Simulator::clock`].
    pub fn clock_block<const W: usize>(&self, state: &mut BlockState<W>) {
        for (id, gate) in self.netlist.iter() {
            if gate.kind() == GateKind::Dff {
                let src = gate.fanin()[0].index();
                let dst = id.index();
                let v = load::<W>(&state.values, src);
                state.dff_state[dst * W..dst * W + W].copy_from_slice(&v);
            }
        }
    }

    /// Unit-delay settling evaluation with glitch visibility.
    ///
    /// All gates re-evaluate *simultaneously* from the previous wave's
    /// values (the classic synchronous relaxation delay model): a gate whose
    /// inputs arrive at different logic depths transitions multiple times
    /// before settling, exactly the glitching that dominates dynamic power
    /// in deep combinational logic. `on_wave_toggle(gate, diff)` is called
    /// for every gate whose value word changed in a wave, once per wave.
    ///
    /// Returns the number of waves until fixpoint (bounded by the
    /// combinational depth + 1; panics only if the bound `4 + 2·depth` is
    /// exceeded, which cannot happen for a valid levelized netlist).
    pub fn eval_unit_delay(
        &self,
        state: &mut SimState,
        data: &[u64],
        mask: &[u64],
        mut on_wave_toggle: impl FnMut(usize, u64),
    ) -> usize {
        self.eval_unit_delay_block::<1>(state, data, mask, |g, d| on_wave_toggle(g, d[0]))
    }

    /// `W`-word variant of [`Simulator::eval_unit_delay`]: the callback
    /// receives the full `W`-word toggle-difference block of a gate, once
    /// per wave in which any lane of the gate changed.
    pub fn eval_unit_delay_block<const W: usize>(
        &self,
        state: &mut BlockState<W>,
        data: &[u64],
        mask: &[u64],
        mut on_wave_toggle: impl FnMut(usize, &[u64; W]),
    ) -> usize {
        let nl = self.netlist;
        assert_eq!(
            data.len(),
            nl.data_inputs().len() * W,
            "data input width mismatch"
        );
        assert_eq!(
            mask.len(),
            nl.mask_inputs().len() * W,
            "mask input width mismatch"
        );
        for (k, &id) in nl.data_inputs().iter().enumerate() {
            let i = id.index();
            state.values[i * W..i * W + W].copy_from_slice(&data[k * W..k * W + W]);
        }
        for (k, &id) in nl.mask_inputs().iter().enumerate() {
            let i = id.index();
            state.values[i * W..i * W + W].copy_from_slice(&mask[k * W..k * W + W]);
        }
        // Flip-flop outputs present their held state during settling.
        for &id in &self.order {
            if nl.gate(id).kind() == GateKind::Dff {
                let i = id.index();
                let (values, dff) = (&mut state.values, &state.dff_state);
                values[i * W..i * W + W].copy_from_slice(&dff[i * W..i * W + W]);
            }
        }
        let depth_bound = 4 + 2 * self.order.len();
        let mut next = state.values.clone();
        let mut waves = 0usize;
        loop {
            let mut changed = false;
            for &id in &self.order {
                let gate = nl.gate(id);
                let i = id.index();
                let Some(v) = eval_gate::<W>(&state.values, gate) else {
                    continue; // inputs and flops hold their applied values
                };
                let cur = load::<W>(&state.values, i);
                let mut diff = [0u64; W];
                let mut any = 0u64;
                for w in 0..W {
                    diff[w] = v[w] ^ cur[w];
                    any |= diff[w];
                }
                if any != 0 {
                    on_wave_toggle(i, &diff);
                    changed = true;
                }
                next[i * W..i * W + W].copy_from_slice(&v);
            }
            state.values.copy_from_slice(&next);
            waves += 1;
            if !changed {
                return waves;
            }
            assert!(
                waves < depth_bound,
                "unit-delay settling exceeded the depth bound (oscillation?)"
            );
        }
    }

    /// Convenience single-trace functional evaluation: drives boolean inputs,
    /// settles, and returns the primary output values. Sequential state is
    /// all-zero.
    ///
    /// # Errors
    ///
    /// Returns an error message if the input widths are wrong.
    pub fn eval_bool(&self, data: &[bool], mask: &[bool]) -> Result<Vec<bool>, String> {
        let nl = self.netlist;
        if data.len() != nl.data_inputs().len() {
            return Err(format!(
                "expected {} data inputs, got {}",
                nl.data_inputs().len(),
                data.len()
            ));
        }
        if mask.len() != nl.mask_inputs().len() {
            return Err(format!(
                "expected {} mask inputs, got {}",
                nl.mask_inputs().len(),
                mask.len()
            ));
        }
        let to_word = |b: &bool| if *b { !0u64 } else { 0 };
        let dw: Vec<u64> = data.iter().map(to_word).collect();
        let mw: Vec<u64> = mask.iter().map(to_word).collect();
        let mut st = self.zero_state();
        self.eval(&mut st, &dw, &mw);
        Ok(nl
            .outputs()
            .iter()
            .map(|(_, d)| st.value(*d) & 1 == 1)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn build(src: &str) -> Netlist {
        polaris_netlist::parse_netlist(src).unwrap()
    }

    #[test]
    fn truth_tables_all_two_input_kinds() {
        let src = "
module t (a, b, y0, y1, y2, y3, y4, y5);
  input a, b;
  output y0, y1, y2, y3, y4, y5;
  and  g0 (y0, a, b);
  or   g1 (y1, a, b);
  nand g2 (y2, a, b);
  nor  g3 (y3, a, b);
  xor  g4 (y4, a, b);
  xnor g5 (y5, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let cases = [
            // (a, b) -> and or nand nor xor xnor
            ((false, false), [false, false, true, true, false, true]),
            ((false, true), [false, true, true, false, true, false]),
            ((true, false), [false, true, true, false, true, false]),
            ((true, true), [true, true, false, false, false, true]),
        ];
        for ((a, b), expect) in cases {
            let outs = sim.eval_bool(&[a, b], &[]).unwrap();
            assert_eq!(outs, expect, "inputs a={a} b={b}");
        }
    }

    #[test]
    fn mux_selects_correctly() {
        let src = "
module m (s, a, b, y);
  input s, a, b;
  output y;
  mux g (y, s, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let y = sim.eval_bool(&[s, a, b], &[]).unwrap()[0];
                    assert_eq!(y, if s { a } else { b });
                }
            }
        }
    }

    #[test]
    fn c17_known_vectors() {
        // c17: g22 = !(g10 & g16), g23 = !(g16 & g19) with
        // g10=!(g1&g3), g11=!(g3&g6), g16=!(g2&g11), g19=!(g11&g7).
        let n = generators::iscas_c17();
        let sim = Simulator::new(&n).unwrap();
        let eval = |v: [bool; 5]| sim.eval_bool(&v, &[]).unwrap();
        // All zeros: g10=1, g11=1, g16=1, g19=1 -> g22=0, g23=0.
        assert_eq!(eval([false; 5]), vec![false, false]);
        // All ones: g10=0, g11=0, g16=1, g19=1 -> g22=1, g23=0.
        assert_eq!(eval([true; 5]), vec![true, false]);
    }

    #[test]
    fn ripple_adder_adds() {
        // 4-bit adder via generators::blocks through a hand-built netlist.
        let mut n = Netlist::new("add4");
        let a: Vec<_> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = generators::blocks::ripple_adder(&mut n, "s", &a, &b, None);
        for (i, s) in sum.iter().enumerate() {
            n.add_output(format!("s{i}"), *s).unwrap();
        }
        n.add_output("cout", cout).unwrap();
        let sim = Simulator::new(&n).unwrap();
        for x in 0u32..16 {
            for y in 0u32..16 {
                let bits = |v: u32| (0..4).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
                let mut inputs = bits(x);
                inputs.extend(bits(y));
                let outs = sim.eval_bool(&inputs, &[]).unwrap();
                let got = outs
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i));
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let mut n = Netlist::new("mul3");
        let a: Vec<_> = (0..3).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| n.add_input(format!("b{i}"))).collect();
        let p = generators::blocks::array_multiplier(&mut n, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            n.add_output(format!("p{i}"), *s).unwrap();
        }
        let sim = Simulator::new(&n).unwrap();
        for x in 0u32..8 {
            for y in 0u32..8 {
                let bits = |v: u32| (0..3).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
                let mut inputs = bits(x);
                inputs.extend(bits(y));
                let outs = sim.eval_bool(&inputs, &[]).unwrap();
                let got = outs
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i));
                assert_eq!(got, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn dff_holds_and_updates_on_clock() {
        let src = "
module c (d, q);
  input d;
  output q;
  dff r (q, d);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        // Drive d=1: q stays 0 until clocked.
        sim.eval(&mut st, &[!0u64], &[]);
        let q = n.outputs()[0].1;
        assert_eq!(st.value(q), 0);
        sim.clock(&mut st);
        sim.eval(&mut st, &[!0u64], &[]);
        assert_eq!(st.value(q), !0u64);
        // Drive d=0: q holds 1 until next edge.
        sim.eval(&mut st, &[0], &[]);
        assert_eq!(st.value(q), !0u64);
        sim.clock(&mut st);
        sim.eval(&mut st, &[0], &[]);
        assert_eq!(st.value(q), 0);
    }

    #[test]
    fn toggle_counter_feedback_divides_by_two() {
        // q' = !q toggles every cycle.
        let src = "
module t (y);
  output y;
  dff r (q, d);
  not n1 (d, q);
  buf b1 (y, q);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        let y = n.outputs()[0].1;
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.eval(&mut st, &[], &[]);
            seen.push(st.value(y) & 1);
            sim.clock(&mut st);
        }
        assert_eq!(seen, vec![0, 1, 0, 1]);
    }

    #[test]
    fn lanes_are_independent() {
        let src = "
module t (a, b, y);
  input a, b;
  output y;
  xor g (y, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        // lane 0: a=1,b=0; lane 1: a=1,b=1; lane 2: a=0,b=1.
        sim.eval(&mut st, &[0b011, 0b110], &[]);
        let y = n.outputs()[0].1;
        assert_eq!(st.value(y) & 0b111, 0b101);
    }

    /// Word `w` of a block evaluation must equal a standalone single-word
    /// evaluation of that word's inputs — the per-word lane-independence
    /// the campaign engine's cross-width identity is built on.
    #[test]
    fn block_words_match_single_word_eval() {
        let n = generators::iscas_like("c432", 1, 5).unwrap();
        let sim = Simulator::new(&n).unwrap();
        let n_data = n.data_inputs().len();
        let mix = |i: usize, w: usize| {
            0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(i as u64 + 1)
                .rotate_left(w as u32 * 7 + 3)
        };

        fn check<const W: usize>(
            sim: &Simulator<'_>,
            n_data: usize,
            gates: usize,
            mix: impl Fn(usize, usize) -> u64,
        ) {
            let mut data = vec![0u64; n_data * W];
            for i in 0..n_data {
                for w in 0..W {
                    data[i * W + w] = mix(i, w);
                }
            }
            let mut blk = sim.zero_block::<W>();
            sim.eval_block::<W>(&mut blk, &data, &[]);
            for w in 0..W {
                let word_data: Vec<u64> = (0..n_data).map(|i| mix(i, w)).collect();
                let mut st = sim.zero_state();
                sim.eval(&mut st, &word_data, &[]);
                for g in 0..gates {
                    assert_eq!(
                        blk.values()[g * W + w],
                        st.values()[g],
                        "W={W} word {w} gate {g}"
                    );
                }
            }
        }
        let gates = n.gate_count();
        check::<2>(&sim, n_data, gates, mix);
        check::<4>(&sim, n_data, gates, mix);
        check::<8>(&sim, n_data, gates, mix);
    }

    /// Unit-delay block settling reports the same per-word toggle waves as
    /// single-word settling.
    #[test]
    fn block_unit_delay_matches_single_word() {
        let n = generators::multiplier(1, 4);
        let sim = Simulator::new(&n).unwrap();
        let n_data = n.data_inputs().len();
        const W: usize = 4;
        let mix = |i: usize, w: usize| {
            0xA5A5_5A5A_0F0F_F0F0u64
                .wrapping_mul((i + 3) as u64)
                .rotate_left((w * 11 + i) as u32)
        };
        let mut data = vec![0u64; n_data * W];
        for i in 0..n_data {
            for w in 0..W {
                data[i * W + w] = mix(i, w);
            }
        }
        let mut blk = sim.zero_block::<W>();
        let mut blk_toggles: Vec<Vec<(usize, u64)>> = vec![Vec::new(); W];
        sim.eval_unit_delay_block::<W>(&mut blk, &data, &[], |g, diff| {
            for w in 0..W {
                if diff[w] != 0 {
                    blk_toggles[w].push((g, diff[w]));
                }
            }
        });
        for (w, blk_word_toggles) in blk_toggles.iter().enumerate() {
            let word_data: Vec<u64> = (0..n_data).map(|i| mix(i, w)).collect();
            let mut st = sim.zero_state();
            let mut word_toggles: Vec<(usize, u64)> = Vec::new();
            sim.eval_unit_delay(&mut st, &word_data, &[], |g, d| word_toggles.push((g, d)));
            assert_eq!(blk_word_toggles, &word_toggles, "word {w}");
            for g in 0..n.gate_count() {
                assert_eq!(blk.values()[g * W + w], st.values()[g], "word {w} gate {g}");
            }
        }
    }

    #[test]
    fn reset_clears_state_in_place() {
        let n = generators::iscas_c17();
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_block::<2>();
        sim.eval_block::<2>(&mut st, &vec![!0u64; n.data_inputs().len() * 2], &[]);
        assert!(st.values().iter().any(|&v| v != 0));
        st.reset();
        assert!(st.values().iter().all(|&v| v == 0));
        assert_eq!(st, sim.zero_block::<2>());
    }

    #[test]
    fn eval_bool_rejects_wrong_widths() {
        let n = generators::iscas_c17();
        let sim = Simulator::new(&n).unwrap();
        assert!(sim.eval_bool(&[true; 3], &[]).is_err());
    }
}
