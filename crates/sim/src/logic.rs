//! Bit-parallel levelized logic simulation.

use polaris_netlist::{GateId, GateKind, Netlist, NetlistError};

/// Signal state for one 64-lane batch: one `u64` word per gate, with the
/// flip-flop states held separately so a clock edge is an explicit commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimState {
    /// Current value word of every gate (lane `i` = trace `i`).
    values: Vec<u64>,
    /// State word of every flip-flop, indexed like `values`.
    dff_state: Vec<u64>,
}

impl SimState {
    /// Value word of a gate.
    pub fn value(&self, id: GateId) -> u64 {
        self.values[id.index()]
    }

    /// All value words, indexed by gate id.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// A compiled, levelized simulator for one netlist.
///
/// Construction topologically sorts the combinational logic once; every
/// [`Simulator::eval`] then visits gates in that fixed order, evaluating all
/// 64 lanes of a batch per visit.
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<GateId>,
}

impl<'a> Simulator<'a> {
    /// Compiles a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design has
    /// combinational feedback.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let order = netlist.topo_order()?;
        Ok(Simulator { netlist, order })
    }

    /// The netlist this simulator was compiled for.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Creates an all-zero state (flip-flops reset to 0).
    pub fn zero_state(&self) -> SimState {
        SimState {
            values: vec![0; self.netlist.gate_count()],
            dff_state: vec![0; self.netlist.gate_count()],
        }
    }

    /// Settles the combinational logic for the given input words.
    ///
    /// `data` and `mask` are lane words for the data and mask inputs, in
    /// declaration order. Flip-flop outputs present their current state.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the input counts of the netlist.
    pub fn eval(&self, state: &mut SimState, data: &[u64], mask: &[u64]) {
        let nl = self.netlist;
        assert_eq!(
            data.len(),
            nl.data_inputs().len(),
            "data input width mismatch"
        );
        assert_eq!(
            mask.len(),
            nl.mask_inputs().len(),
            "mask input width mismatch"
        );
        for (&id, &w) in nl.data_inputs().iter().zip(data) {
            state.values[id.index()] = w;
        }
        for (&id, &w) in nl.mask_inputs().iter().zip(mask) {
            state.values[id.index()] = w;
        }
        for &id in &self.order {
            let gate = nl.gate(id);
            let i = id.index();
            let v = match gate.kind() {
                GateKind::Input => continue, // already assigned
                GateKind::Dff => {
                    state.values[i] = state.dff_state[i];
                    continue;
                }
                GateKind::Const0 => 0,
                GateKind::Const1 => !0u64,
                GateKind::Buf => state.values[gate.fanin()[0].index()],
                GateKind::Not => !state.values[gate.fanin()[0].index()],
                GateKind::And => fold(state, gate.fanin(), !0u64, |a, b| a & b),
                GateKind::Or => fold(state, gate.fanin(), 0, |a, b| a | b),
                GateKind::Nand => !fold(state, gate.fanin(), !0u64, |a, b| a & b),
                GateKind::Nor => !fold(state, gate.fanin(), 0, |a, b| a | b),
                GateKind::Xor => fold(state, gate.fanin(), 0, |a, b| a ^ b),
                GateKind::Xnor => !fold(state, gate.fanin(), 0, |a, b| a ^ b),
                GateKind::Mux => {
                    let s = state.values[gate.fanin()[0].index()];
                    let a = state.values[gate.fanin()[1].index()];
                    let b = state.values[gate.fanin()[2].index()];
                    (s & a) | (!s & b)
                }
            };
            state.values[i] = v;
        }
    }

    /// Commits flip-flop next-state values (a positive clock edge). Call
    /// after [`Simulator::eval`]; the new state becomes visible at the next
    /// `eval`.
    pub fn clock(&self, state: &mut SimState) {
        for (id, gate) in self.netlist.iter() {
            if gate.kind() == GateKind::Dff {
                state.dff_state[id.index()] = state.values[gate.fanin()[0].index()];
            }
        }
    }

    /// Unit-delay settling evaluation with glitch visibility.
    ///
    /// All gates re-evaluate *simultaneously* from the previous wave's
    /// values (the classic synchronous relaxation delay model): a gate whose
    /// inputs arrive at different logic depths transitions multiple times
    /// before settling, exactly the glitching that dominates dynamic power
    /// in deep combinational logic. `on_wave_toggle(gate, diff)` is called
    /// for every gate whose value word changed in a wave, once per wave.
    ///
    /// Returns the number of waves until fixpoint (bounded by the
    /// combinational depth + 1; panics only if the bound `4 + 2·depth` is
    /// exceeded, which cannot happen for a valid levelized netlist).
    pub fn eval_unit_delay(
        &self,
        state: &mut SimState,
        data: &[u64],
        mask: &[u64],
        mut on_wave_toggle: impl FnMut(usize, u64),
    ) -> usize {
        let nl = self.netlist;
        assert_eq!(
            data.len(),
            nl.data_inputs().len(),
            "data input width mismatch"
        );
        assert_eq!(
            mask.len(),
            nl.mask_inputs().len(),
            "mask input width mismatch"
        );
        for (&id, &w) in nl.data_inputs().iter().zip(data) {
            state.values[id.index()] = w;
        }
        for (&id, &w) in nl.mask_inputs().iter().zip(mask) {
            state.values[id.index()] = w;
        }
        // Flip-flop outputs present their held state during settling.
        for &id in &self.order {
            if nl.gate(id).kind() == GateKind::Dff {
                state.values[id.index()] = state.dff_state[id.index()];
            }
        }
        let depth_bound = 4 + 2 * self.order.len();
        let mut next = state.values.clone();
        let mut waves = 0usize;
        loop {
            let mut changed = false;
            for &id in &self.order {
                let gate = nl.gate(id);
                let i = id.index();
                let v = match gate.kind() {
                    GateKind::Input | GateKind::Dff => continue,
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0u64,
                    GateKind::Buf => state.values[gate.fanin()[0].index()],
                    GateKind::Not => !state.values[gate.fanin()[0].index()],
                    GateKind::And => fold(state, gate.fanin(), !0u64, |a, b| a & b),
                    GateKind::Or => fold(state, gate.fanin(), 0, |a, b| a | b),
                    GateKind::Nand => !fold(state, gate.fanin(), !0u64, |a, b| a & b),
                    GateKind::Nor => !fold(state, gate.fanin(), 0, |a, b| a | b),
                    GateKind::Xor => fold(state, gate.fanin(), 0, |a, b| a ^ b),
                    GateKind::Xnor => !fold(state, gate.fanin(), 0, |a, b| a ^ b),
                    GateKind::Mux => {
                        let s = state.values[gate.fanin()[0].index()];
                        let a = state.values[gate.fanin()[1].index()];
                        let b = state.values[gate.fanin()[2].index()];
                        (s & a) | (!s & b)
                    }
                };
                let diff = v ^ state.values[i];
                if diff != 0 {
                    on_wave_toggle(i, diff);
                    changed = true;
                }
                next[i] = v;
            }
            state.values.copy_from_slice(&next);
            waves += 1;
            if !changed {
                return waves;
            }
            assert!(
                waves < depth_bound,
                "unit-delay settling exceeded the depth bound (oscillation?)"
            );
        }
    }

    /// Convenience single-trace functional evaluation: drives boolean inputs,
    /// settles, and returns the primary output values. Sequential state is
    /// all-zero.
    ///
    /// # Errors
    ///
    /// Returns an error message if the input widths are wrong.
    pub fn eval_bool(&self, data: &[bool], mask: &[bool]) -> Result<Vec<bool>, String> {
        let nl = self.netlist;
        if data.len() != nl.data_inputs().len() {
            return Err(format!(
                "expected {} data inputs, got {}",
                nl.data_inputs().len(),
                data.len()
            ));
        }
        if mask.len() != nl.mask_inputs().len() {
            return Err(format!(
                "expected {} mask inputs, got {}",
                nl.mask_inputs().len(),
                mask.len()
            ));
        }
        let to_word = |b: &bool| if *b { !0u64 } else { 0 };
        let dw: Vec<u64> = data.iter().map(to_word).collect();
        let mw: Vec<u64> = mask.iter().map(to_word).collect();
        let mut st = self.zero_state();
        self.eval(&mut st, &dw, &mw);
        Ok(nl
            .outputs()
            .iter()
            .map(|(_, d)| st.values[d.index()] & 1 == 1)
            .collect())
    }
}

#[inline]
fn fold(state: &SimState, fanin: &[GateId], init: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
    fanin
        .iter()
        .fold(init, |acc, f| op(acc, state.values[f.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn build(src: &str) -> Netlist {
        polaris_netlist::parse_netlist(src).unwrap()
    }

    #[test]
    fn truth_tables_all_two_input_kinds() {
        let src = "
module t (a, b, y0, y1, y2, y3, y4, y5);
  input a, b;
  output y0, y1, y2, y3, y4, y5;
  and  g0 (y0, a, b);
  or   g1 (y1, a, b);
  nand g2 (y2, a, b);
  nor  g3 (y3, a, b);
  xor  g4 (y4, a, b);
  xnor g5 (y5, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let cases = [
            // (a, b) -> and or nand nor xor xnor
            ((false, false), [false, false, true, true, false, true]),
            ((false, true), [false, true, true, false, true, false]),
            ((true, false), [false, true, true, false, true, false]),
            ((true, true), [true, true, false, false, false, true]),
        ];
        for ((a, b), expect) in cases {
            let outs = sim.eval_bool(&[a, b], &[]).unwrap();
            assert_eq!(outs, expect, "inputs a={a} b={b}");
        }
    }

    #[test]
    fn mux_selects_correctly() {
        let src = "
module m (s, a, b, y);
  input s, a, b;
  output y;
  mux g (y, s, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    let y = sim.eval_bool(&[s, a, b], &[]).unwrap()[0];
                    assert_eq!(y, if s { a } else { b });
                }
            }
        }
    }

    #[test]
    fn c17_known_vectors() {
        // c17: g22 = !(g10 & g16), g23 = !(g16 & g19) with
        // g10=!(g1&g3), g11=!(g3&g6), g16=!(g2&g11), g19=!(g11&g7).
        let n = generators::iscas_c17();
        let sim = Simulator::new(&n).unwrap();
        let eval = |v: [bool; 5]| sim.eval_bool(&v, &[]).unwrap();
        // All zeros: g10=1, g11=1, g16=1, g19=1 -> g22=0, g23=0.
        assert_eq!(eval([false; 5]), vec![false, false]);
        // All ones: g10=0, g11=0, g16=1, g19=1 -> g22=1, g23=0.
        assert_eq!(eval([true; 5]), vec![true, false]);
    }

    #[test]
    fn ripple_adder_adds() {
        // 4-bit adder via generators::blocks through a hand-built netlist.
        let mut n = Netlist::new("add4");
        let a: Vec<_> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let (sum, cout) = generators::blocks::ripple_adder(&mut n, "s", &a, &b, None);
        for (i, s) in sum.iter().enumerate() {
            n.add_output(format!("s{i}"), *s).unwrap();
        }
        n.add_output("cout", cout).unwrap();
        let sim = Simulator::new(&n).unwrap();
        for x in 0u32..16 {
            for y in 0u32..16 {
                let bits = |v: u32| (0..4).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
                let mut inputs = bits(x);
                inputs.extend(bits(y));
                let outs = sim.eval_bool(&inputs, &[]).unwrap();
                let got = outs
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i));
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let mut n = Netlist::new("mul3");
        let a: Vec<_> = (0..3).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| n.add_input(format!("b{i}"))).collect();
        let p = generators::blocks::array_multiplier(&mut n, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            n.add_output(format!("p{i}"), *s).unwrap();
        }
        let sim = Simulator::new(&n).unwrap();
        for x in 0u32..8 {
            for y in 0u32..8 {
                let bits = |v: u32| (0..3).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
                let mut inputs = bits(x);
                inputs.extend(bits(y));
                let outs = sim.eval_bool(&inputs, &[]).unwrap();
                let got = outs
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | ((b as u32) << i));
                assert_eq!(got, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn dff_holds_and_updates_on_clock() {
        let src = "
module c (d, q);
  input d;
  output q;
  dff r (q, d);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        // Drive d=1: q stays 0 until clocked.
        sim.eval(&mut st, &[!0u64], &[]);
        let q = n.outputs()[0].1;
        assert_eq!(st.value(q), 0);
        sim.clock(&mut st);
        sim.eval(&mut st, &[!0u64], &[]);
        assert_eq!(st.value(q), !0u64);
        // Drive d=0: q holds 1 until next edge.
        sim.eval(&mut st, &[0], &[]);
        assert_eq!(st.value(q), !0u64);
        sim.clock(&mut st);
        sim.eval(&mut st, &[0], &[]);
        assert_eq!(st.value(q), 0);
    }

    #[test]
    fn toggle_counter_feedback_divides_by_two() {
        // q' = !q toggles every cycle.
        let src = "
module t (y);
  output y;
  dff r (q, d);
  not n1 (d, q);
  buf b1 (y, q);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        let y = n.outputs()[0].1;
        let mut seen = Vec::new();
        for _ in 0..4 {
            sim.eval(&mut st, &[], &[]);
            seen.push(st.value(y) & 1);
            sim.clock(&mut st);
        }
        assert_eq!(seen, vec![0, 1, 0, 1]);
    }

    #[test]
    fn lanes_are_independent() {
        let src = "
module t (a, b, y);
  input a, b;
  output y;
  xor g (y, a, b);
endmodule";
        let n = build(src);
        let sim = Simulator::new(&n).unwrap();
        let mut st = sim.zero_state();
        // lane 0: a=1,b=0; lane 1: a=1,b=1; lane 2: a=0,b=1.
        sim.eval(&mut st, &[0b011, 0b110], &[]);
        let y = n.outputs()[0].1;
        assert_eq!(st.value(y) & 0b111, 0b101);
    }

    #[test]
    fn eval_bool_rejects_wrong_widths() {
        let n = generators::iscas_c17();
        let sim = Simulator::new(&n).unwrap();
        assert!(sim.eval_bool(&[true; 3], &[]).is_err());
    }
}
