//! Switching-activity power model.
//!
//! Dynamic power of a CMOS cell is `½ · C · V² · f · α`; at fixed voltage and
//! frequency the per-gate, per-cycle energy is proportional to the cell's
//! switched capacitance times its toggle activity. The model therefore
//! assigns each [`GateKind`] a relative capacitance weight and adds zero-mean
//! Gaussian measurement noise, the standard gate-level leakage-simulation
//! setup used by TVLA-based EDA flows (CASCADE, Karna, VALIANT).

use polaris_netlist::GateKind;
use rand::Rng;

/// Per-kind capacitance weights plus measurement-noise level.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Relative switched capacitance per gate kind, indexed by
    /// [`GateKind::ordinal`].
    cap: [f64; GateKind::ALL.len()],
    /// Standard deviation of the additive Gaussian measurement noise applied
    /// to each per-gate energy sample.
    noise_sigma: f64,
}

impl PowerModel {
    /// Builds a model with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or `noise_sigma < 0`.
    pub fn new(cap: [f64; GateKind::ALL.len()], noise_sigma: f64) -> Self {
        assert!(cap.iter().all(|&c| c >= 0.0), "negative capacitance");
        assert!(noise_sigma >= 0.0, "negative noise sigma");
        PowerModel { cap, noise_sigma }
    }

    /// Default 45 nm-flavoured relative weights: inverters cheapest, XOR-class
    /// and sequential cells the most capacitive.
    pub fn default_cmos() -> Self {
        let mut cap = [0.0; GateKind::ALL.len()];
        cap[GateKind::Input.ordinal()] = 0.0; // pads are outside the power rail
        cap[GateKind::Const0.ordinal()] = 0.0;
        cap[GateKind::Const1.ordinal()] = 0.0;
        cap[GateKind::Buf.ordinal()] = 0.9;
        cap[GateKind::Not.ordinal()] = 0.6;
        cap[GateKind::And.ordinal()] = 1.4;
        cap[GateKind::Or.ordinal()] = 1.4;
        cap[GateKind::Nand.ordinal()] = 1.0;
        cap[GateKind::Nor.ordinal()] = 1.1;
        cap[GateKind::Xor.ordinal()] = 2.1;
        cap[GateKind::Xnor.ordinal()] = 2.2;
        cap[GateKind::Mux.ordinal()] = 2.4;
        cap[GateKind::Dff.ordinal()] = 3.6;
        PowerModel {
            cap,
            noise_sigma: 0.35,
        }
    }

    /// Capacitance weight for a gate kind.
    pub fn cap(&self, kind: GateKind) -> f64 {
        self.cap[kind.ordinal()]
    }

    /// Measurement noise standard deviation.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Returns a copy with a different noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative noise sigma");
        self.noise_sigma = sigma;
        self
    }

    /// Energy of `toggles` transitions on a cell of `kind`, before noise.
    pub fn energy(&self, kind: GateKind, toggles: u32) -> f64 {
        self.cap(kind) * f64::from(toggles)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::default_cmos()
    }
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// `rand` offers only uniform sources offline, so the Gaussian is derived
/// here; two uniforms in `(0, 1]` map to one normal deviate.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by shifting the uniform into (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_weights_are_sane() {
        let m = PowerModel::default();
        assert_eq!(m.cap(GateKind::Input), 0.0);
        assert!(m.cap(GateKind::Xor) > m.cap(GateKind::Nand));
        assert!(m.cap(GateKind::Dff) > m.cap(GateKind::Not));
        assert!(m.noise_sigma() > 0.0);
    }

    #[test]
    fn energy_scales_linearly_with_toggles() {
        let m = PowerModel::default();
        let e1 = m.energy(GateKind::Nand, 1);
        let e3 = m.energy(GateKind::Nand, 3);
        assert!((e3 - 3.0 * e1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative noise sigma")]
    fn negative_sigma_rejected() {
        let _ = PowerModel::default().with_noise(-1.0);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn box_muller_is_finite() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
