//! Switching-activity power model.
//!
//! Dynamic power of a CMOS cell is `½ · C · V² · f · α`; at fixed voltage and
//! frequency the per-gate, per-cycle energy is proportional to the cell's
//! switched capacitance times its toggle activity. The model therefore
//! assigns each [`GateKind`] a relative capacitance weight and adds zero-mean
//! Gaussian measurement noise, the standard gate-level leakage-simulation
//! setup used by TVLA-based EDA flows (CASCADE, Karna, VALIANT).

use polaris_netlist::GateKind;
use rand::Rng;

/// Per-kind capacitance weights plus measurement-noise level.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Relative switched capacitance per gate kind, indexed by
    /// [`GateKind::ordinal`].
    cap: [f64; GateKind::ALL.len()],
    /// Standard deviation of the additive Gaussian measurement noise applied
    /// to each per-gate energy sample.
    noise_sigma: f64,
}

impl PowerModel {
    /// Builds a model with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or `noise_sigma < 0`.
    pub fn new(cap: [f64; GateKind::ALL.len()], noise_sigma: f64) -> Self {
        assert!(cap.iter().all(|&c| c >= 0.0), "negative capacitance");
        assert!(noise_sigma >= 0.0, "negative noise sigma");
        PowerModel { cap, noise_sigma }
    }

    /// Default 45 nm-flavoured relative weights: inverters cheapest, XOR-class
    /// and sequential cells the most capacitive.
    pub fn default_cmos() -> Self {
        let mut cap = [0.0; GateKind::ALL.len()];
        cap[GateKind::Input.ordinal()] = 0.0; // pads are outside the power rail
        cap[GateKind::Const0.ordinal()] = 0.0;
        cap[GateKind::Const1.ordinal()] = 0.0;
        cap[GateKind::Buf.ordinal()] = 0.9;
        cap[GateKind::Not.ordinal()] = 0.6;
        cap[GateKind::And.ordinal()] = 1.4;
        cap[GateKind::Or.ordinal()] = 1.4;
        cap[GateKind::Nand.ordinal()] = 1.0;
        cap[GateKind::Nor.ordinal()] = 1.1;
        cap[GateKind::Xor.ordinal()] = 2.1;
        cap[GateKind::Xnor.ordinal()] = 2.2;
        cap[GateKind::Mux.ordinal()] = 2.4;
        cap[GateKind::Dff.ordinal()] = 3.6;
        PowerModel {
            cap,
            noise_sigma: 0.35,
        }
    }

    /// Capacitance weight for a gate kind.
    pub fn cap(&self, kind: GateKind) -> f64 {
        self.cap[kind.ordinal()]
    }

    /// Measurement noise standard deviation.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Returns a copy with a different noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative noise sigma");
        self.noise_sigma = sigma;
        self
    }

    /// Energy of `toggles` transitions on a cell of `kind`, before noise.
    pub fn energy(&self, kind: GateKind, toggles: u32) -> f64 {
        self.cap(kind) * f64::from(toggles)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::default_cmos()
    }
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// `rand` offers only uniform sources offline, so the Gaussian is derived
/// here; two uniforms in `(0, 1]` map to one normal deviate.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by shifting the uniform into (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Natural log for `x ∈ (0, 1]` as a branchless polynomial.
///
/// Exponent/mantissa split, mantissa reduced into `[√2/2, √2)`, then the
/// atanh series `ln m = 2t(1 + t²/3 + t⁴/5 + …)` on `t = (m−1)/(m+1)`
/// (7 terms, |t| < 0.1716 so the truncation error is below 4 × 10⁻¹⁴
/// relative). Every operation is an IEEE-754-exact add/mul/div or a bit
/// manipulation, so the result is bit-identical on every platform — the
/// property the campaign engine's cross-host determinism rests on, which
/// `libm`'s `ln` (allowed to differ by a ulp between implementations) does
/// not give.
#[inline]
fn ln_unit(x: f64) -> f64 {
    const LN2: f64 = std::f64::consts::LN_2;
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    let big = m > SQRT2;
    let m = if big { 0.5 * m } else { m };
    let e = f64::from(e + i32::from(big));
    let t = (m - 1.0) / (m + 1.0);
    let s = t * t;
    let p = 1.0 / 13.0 + s * (1.0 / 15.0);
    let p = 1.0 / 11.0 + s * p;
    let p = 1.0 / 9.0 + s * p;
    let p = 1.0 / 7.0 + s * p;
    let p = 1.0 / 5.0 + s * p;
    let p = 1.0 / 3.0 + s * p;
    let p = 1.0 + s * p;
    e * LN2 + 2.0 * t * p
}

/// `cos(2πu)` for `u ∈ [0, 1)` as a branchless polynomial.
///
/// Quadrant reduction `k = ⌊4u + ½⌋` maps the argument onto
/// `[−π/4, π/4]`, where a degree-12 cosine / degree-11 sine Taylor
/// expansion is accurate to 7 × 10⁻¹² absolute; the quadrant selects
/// between the two and fixes the sign. IEEE-exact ops only (see
/// [`ln_unit`]), so bit-stable across platforms.
#[inline]
fn cos_tau(u: f64) -> f64 {
    const FRAC_PI_2: f64 = std::f64::consts::FRAC_PI_2;
    let x = 4.0 * u;
    let k = (x + 0.5) as i32; // truncation == floor: x + 0.5 is positive
    let r = x - f64::from(k);
    let th = r * FRAC_PI_2;
    let z = th * th;
    let c = {
        let p = 1.0 / 479_001_600.0;
        let p = -(1.0 / 3_628_800.0) + z * p;
        let p = 1.0 / 40_320.0 + z * p;
        let p = -(1.0 / 720.0) + z * p;
        let p = 1.0 / 24.0 + z * p;
        let p = -0.5 + z * p;
        1.0 + z * p
    };
    let s = {
        let p = -(1.0 / 39_916_800.0);
        let p = 1.0 / 362_880.0 + z * p;
        let p = -(1.0 / 5_040.0) + z * p;
        let p = 1.0 / 120.0 + z * p;
        let p = -(1.0 / 6.0) + z * p;
        th * (1.0 + z * p)
    };
    let v = if (k & 1) != 0 { s } else { c };
    if ((k + 1) >> 1) & 1 != 0 {
        -v
    } else {
        v
    }
}

/// Fills `out` with standard-normal samples via a batched, branchless
/// Box–Muller transform.
///
/// Consumes exactly `2 × out.len()` uniform draws from `rng`, two per
/// sample in output order — the same consumption pattern as calling
/// [`sample_standard_normal`] `out.len()` times, so RNG stream positions
/// are interchangeable between the scalar and batched paths. The math uses
/// the polynomial [`ln_unit`] / [`cos_tau`] kernels instead of `libm`, so
/// the *values* differ from the scalar path in the low bits but are
/// bit-identical across platforms and batch partitionings.
///
/// The uniforms are staged into word-sized stack buffers and the transform
/// runs as a second, RNG-free pass: without the serial generator chain
/// threaded through it, the pure-float loop pipelines across samples and
/// the batch runs ≈2.3× faster than scalar `libm` Box–Muller. The staging
/// is invisible to the stream contract — draw order is unchanged.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut u1 = [0.0f64; 64];
    let mut u2 = [0.0f64; 64];
    for chunk in out.chunks_mut(64) {
        let n = chunk.len();
        for i in 0..n {
            u1[i] = 1.0 - rng.gen::<f64>();
            u2[i] = rng.gen();
        }
        for i in 0..n {
            chunk[i] = (-2.0 * ln_unit(u1[i])).sqrt() * cos_tau(u2[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_weights_are_sane() {
        let m = PowerModel::default();
        assert_eq!(m.cap(GateKind::Input), 0.0);
        assert!(m.cap(GateKind::Xor) > m.cap(GateKind::Nand));
        assert!(m.cap(GateKind::Dff) > m.cap(GateKind::Not));
        assert!(m.noise_sigma() > 0.0);
    }

    #[test]
    fn energy_scales_linearly_with_toggles() {
        let m = PowerModel::default();
        let e1 = m.energy(GateKind::Nand, 1);
        let e3 = m.energy(GateKind::Nand, 3);
        assert!((e3 - 3.0 * e1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative noise sigma")]
    fn negative_sigma_rejected() {
        let _ = PowerModel::default().with_noise(-1.0);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn box_muller_is_finite() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }

    #[test]
    fn ln_unit_tracks_libm() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200_000 {
            let x = 1.0 - rng.gen::<f64>();
            let rel = (ln_unit(x) - x.ln()).abs() / x.ln().abs().max(1e-300);
            if x < 0.999 {
                assert!(rel < 1e-12, "ln({x}) rel err {rel}");
            }
        }
        // Smallest reachable uniform: u1 = 2^-53.
        let tiny = (2f64).powi(-53);
        let rel = ((ln_unit(tiny) - tiny.ln()) / tiny.ln()).abs();
        assert!(rel < 1e-13, "ln(2^-53) rel err {rel}");
        assert_eq!(ln_unit(1.0), 0.0);
    }

    #[test]
    fn cos_tau_tracks_libm() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200_000 {
            let u = rng.gen::<f64>();
            let err = (cos_tau(u) - (std::f64::consts::TAU * u).cos()).abs();
            assert!(err < 1e-10, "cos(2pi*{u}) abs err {err}");
        }
        assert_eq!(cos_tau(0.0), 1.0);
        // Quadrant boundaries.
        assert!((cos_tau(0.25)).abs() < 1e-12);
        assert!((cos_tau(0.5) + 1.0).abs() < 1e-12);
        assert!((cos_tau(0.75)).abs() < 1e-12);
    }

    /// The batched fill consumes the RNG stream exactly like repeated
    /// scalar draws: same number of uniforms, two per sample in output
    /// order. The engine relies on this to keep per-word noise streams
    /// position-identical at every lane width.
    #[test]
    fn fill_consumes_rng_like_scalar_path() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = a.clone();
        let mut out = [0.0; 37];
        fill_standard_normal(&mut a, &mut out);
        for _ in 0..37 {
            let _ = sample_standard_normal(&mut b);
        }
        // Both rngs must now be at the same stream position.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    /// Splitting one fill into arbitrary sub-fills over the same RNG gives
    /// bit-identical samples — partial trailing words cost nothing.
    #[test]
    fn fill_is_split_invariant() {
        let mut a = StdRng::seed_from_u64(5);
        let mut whole = [0.0; 64];
        fill_standard_normal(&mut a, &mut whole);
        let mut b = StdRng::seed_from_u64(5);
        let mut parts = [0.0; 64];
        let (head, rest) = parts.split_at_mut(17);
        let (mid, tail) = rest.split_at_mut(30);
        fill_standard_normal(&mut b, head);
        fill_standard_normal(&mut b, mid);
        fill_standard_normal(&mut b, tail);
        for (x, y) in whole.iter().zip(parts.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fill_moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buf = [0.0; 256];
        let n = 400_000usize;
        let (mut s1, mut s2, mut s4) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..n / buf.len() {
            fill_standard_normal(&mut rng, &mut buf);
            for &v in &buf {
                assert!(v.is_finite());
                s1 += v;
                s2 += v * v;
                s4 += v * v * v * v;
            }
        }
        let nf = n as f64;
        let mean = s1 / nf;
        let var = s2 / nf;
        let kurt = s4 / nf / (var * var);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }
}
