//! Multi-design fleet scheduling: whole campaigns as work items on one
//! shared worker pool.
//!
//! The round-checkpointed engine of [`crate::campaign`] parallelizes
//! *inside* one campaign: its workers drain that campaign's shard grid and
//! barrier at every round fold. Suites — the cognition loop, the table
//! harnesses, a manifest of designs — run many campaigns whose small
//! members then serialize on their own barriers while cores idle.
//!
//! A *fleet* inverts the nesting. Each [`FleetJob`] wraps one campaign
//! (netlist + configuration + optional sink factory + stopping rule);
//! [`run_fleet`] compiles one simulation engine per job and lets a single
//! pool of `std::thread::scope` workers pull **shards of any job** from a
//! shared queue, so shards of different campaigns interleave on the same
//! threads and suite throughput scales with cores instead of with the
//! widest single design.
//!
//! # Determinism contract
//!
//! Fleet execution changes scheduling only, never results:
//!
//! * every job keeps its own shard grid and its own accumulator; per-shard
//!   sinks are folded **in that job's canonical shard order** at each round
//!   boundary — the exact fold sequence of
//!   [`run_campaign_parallel`](crate::campaign::run_campaign_parallel) /
//!   [`run_campaign_adaptive`](crate::campaign::run_campaign_adaptive);
//! * a job's [`StoppingRule`] is consulted per job at its own round
//!   checkpoints, on checkpoint-folded state only, so adaptive jobs stop at
//!   the same round mid-fleet as they do standalone;
//! * only the current round of a job is ever in flight (the rule must see
//!   the folded round before more of that job's grid is scheduled), so no
//!   shard past a stop boundary is simulated.
//!
//! Every job's [`CampaignOutcome`] is therefore **byte-identical** to its
//! standalone run — at any worker count and in any job mix.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use polaris_netlist::{Netlist, NetlistError};
use polaris_obs::{NullRecorder, Payload, Phase, PhaseTimer, Recorder};

use crate::campaign::{
    shard_grid, CampaignConfig, CampaignOutcome, CampaignStats, Checkpoint, Engine, MergeableSink,
    NeverStop, Parallelism, Population, ShardSpec, StoppingRule,
};
use crate::power::PowerModel;

/// Factory for the private per-shard sinks of one job.
type SinkFactory<'a, S> = Box<dyn Fn() -> S + Send + Sync + 'a>;

/// A job's (possibly stateful) stopping rule, consulted at its round
/// checkpoints.
type BoxedRule<'a, S> = Box<dyn StoppingRule<S> + Send + 'a>;

/// One campaign scheduled as a top-level work item of a fleet: a (netlist,
/// campaign configuration, sink factory) triple plus an optional stopping
/// rule for adaptive jobs.
pub struct FleetJob<'a, S> {
    netlist: &'a Netlist,
    power: &'a PowerModel,
    config: CampaignConfig,
    factory: Option<SinkFactory<'a, S>>,
    rule: BoxedRule<'a, S>,
    shards_per_round: usize,
}

impl<'a, S: MergeableSink + Default> FleetJob<'a, S> {
    /// A non-adaptive job: the whole shard grid runs as one round (no
    /// checkpoint work), exactly like
    /// [`run_campaign_parallel`](crate::campaign::run_campaign_parallel).
    pub fn new(netlist: &'a Netlist, power: &'a PowerModel, config: CampaignConfig) -> Self {
        FleetJob {
            netlist,
            power,
            config,
            factory: None,
            rule: Box::new(NeverStop),
            shards_per_round: usize::MAX,
        }
    }

    /// Attaches a stopping rule evaluated every `shards_per_round` shards —
    /// the adaptive-job variant. With the same rule state and round size the
    /// job's outcome (sink, stats, stop round) is byte-identical to
    /// [`run_campaign_adaptive`](crate::campaign::run_campaign_adaptive).
    pub fn with_rule<R>(mut self, rule: R, shards_per_round: usize) -> Self
    where
        R: StoppingRule<S> + Send + 'a,
    {
        self.rule = Box::new(rule);
        self.shards_per_round = shards_per_round.max(1);
        self
    }

    /// Uses `factory` instead of `S::default()` for the job's private
    /// per-shard sinks. The factory must produce *empty* sinks equivalent to
    /// `S::default()` — it exists for preallocation, not for seeding state —
    /// or the standalone-equivalence contract is forfeited.
    pub fn with_sink_factory<F>(mut self, factory: F) -> Self
    where
        F: Fn() -> S + Send + Sync + 'a,
    {
        self.factory = Some(Box::new(factory));
        self
    }

    /// The job's campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }
}

/// The round decomposition of one job's `n_shards`-entry grid: contiguous
/// chunks of `shards_per_round` (the last may be short) — a pure function
/// of the pair and the fleet scheduler's single source of truth for both
/// the enqueue schedule and `planned_rounds`. Matches the standalone
/// engine's `chunks(shards_per_round)` walk chunk for chunk.
pub fn job_rounds(n_shards: usize, shards_per_round: usize) -> Vec<std::ops::Range<usize>> {
    let spr = shards_per_round.max(1);
    let mut rounds = Vec::new();
    let mut lo = 0usize;
    while lo < n_shards {
        let hi = lo.saturating_add(spr).min(n_shards);
        rounds.push(lo..hi);
        lo = hi;
    }
    rounds
}

/// One queued work item: shard `grid_idx` of job `job`, depositing into
/// round slot `slot`.
#[derive(Clone, Copy, Debug)]
struct WorkItem {
    job: usize,
    slot: usize,
    grid_idx: usize,
}

/// Mutable per-job scheduler state (behind the fleet mutex).
struct JobState<'a, S> {
    rule: BoxedRule<'a, S>,
    /// The job's round decomposition ([`job_rounds`] of its grid) — the
    /// single source of truth for both the enqueue schedule and
    /// `planned_rounds` (`rounds.len()`).
    rounds: Vec<std::ops::Range<usize>>,
    planned_fixed: usize,
    planned_random: usize,
    /// Running accumulator, folded in grid order at round boundaries.
    acc: Option<S>,
    stats: CampaignStats,
    /// Index into `rounds` of the next round to enqueue.
    next_round: usize,
    /// Grid index of the in-flight round's first shard.
    round_base: usize,
    /// Per-shard deposit slots of the in-flight round (grid order).
    slots: Vec<Option<S>>,
    /// Shards of the in-flight round not yet deposited.
    outstanding: usize,
    done: bool,
}

/// What a completed round fold did to its job.
enum RoundEvent {
    /// The job continues with its next round.
    NextRound,
    /// The job is finished (grid exhausted or rule stopped).
    JobDone,
}

struct FleetInner<'a, S> {
    queue: VecDeque<WorkItem>,
    jobs: Vec<JobState<'a, S>>,
    remaining_jobs: usize,
    /// Set when a worker panicked outside the lock — wakes waiters so the
    /// scope can propagate the panic instead of deadlocking on the condvar.
    poisoned: bool,
}

struct FleetShared<'a, S> {
    inner: Mutex<FleetInner<'a, S>>,
    work_ready: Condvar,
}

fn lock<'g, 'a, S>(shared: &'g FleetShared<'a, S>) -> MutexGuard<'g, FleetInner<'a, S>> {
    // The `poisoned` flag (plus scope join) is the panic protocol; std's
    // mutex poisoning would only turn one panic into many.
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Enqueues job `j`'s next [`job_rounds`] range (with the lock held). Must
/// only be called while the job has rounds left.
fn enqueue_round<S>(inner: &mut FleetInner<'_, S>, j: usize) {
    let st = &mut inner.jobs[j];
    let range = st.rounds[st.next_round].clone();
    st.next_round += 1;
    let count = range.len();
    debug_assert!(count > 0, "job_rounds never emits an empty round");
    st.round_base = range.start;
    st.slots.clear();
    st.slots.resize_with(count, || None);
    st.outstanding = count;
    for (i, grid_idx) in range.enumerate() {
        inner.queue.push_back(WorkItem {
            job: j,
            slot: i,
            grid_idx,
        });
    }
}

/// Books a completed (lock-free) round fold back into its job's state and
/// consults the stopping rule — mirroring the standalone round-checkpointed
/// driver's checkpoint statement for statement. Called with the lock held.
fn finish_round<S: MergeableSink>(
    inner: &mut FleetInner<'_, S>,
    job: usize,
    acc: S,
    fixed_traces: usize,
    random_traces: usize,
) -> RoundEvent {
    let st = &mut inner.jobs[job];
    st.acc = Some(acc);
    st.stats.fixed_traces += fixed_traces;
    st.stats.random_traces += random_traces;
    st.stats.rounds += 1;
    if st.stats.rounds < st.rounds.len() {
        let checkpoint = Checkpoint {
            sink: st.acc.as_ref().expect("non-empty round folds a sink"),
            round: st.stats.rounds,
            planned_rounds: st.rounds.len(),
            fixed_traces: st.stats.fixed_traces,
            random_traces: st.stats.random_traces,
            planned_fixed: st.planned_fixed,
            planned_random: st.planned_random,
        };
        if st.rule.should_stop(&checkpoint) {
            st.stats.stopped_early = true;
            st.done = true;
            RoundEvent::JobDone
        } else {
            RoundEvent::NextRound
        }
    } else {
        st.done = true;
        RoundEvent::JobDone
    }
}

/// Marks a worker panic in the shared state on unwind so waiting workers
/// exit (and the scope can re-raise the panic) instead of sleeping forever.
struct PanicSentry<'g, 'a, S> {
    shared: &'g FleetShared<'a, S>,
    armed: bool,
}

impl<S> Drop for PanicSentry<'_, '_, S> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.shared).poisoned = true;
            self.shared.work_ready.notify_all();
        }
    }
}

/// The shared worker loop: pull a shard of *any* job, simulate it into a
/// fresh private sink, deposit; the round-completing deposit folds the
/// round and schedules the job's next round (or retires the job).
///
/// With an enabled `recorder` the loop reports, per item, the queue state
/// it observed ([`Payload::QueueDepth`]) and the item's phase-split timing
/// ([`Payload::WorkItem`] — its `thread` stamp is the job-interleave
/// signal), plus one [`Payload::WorkerSummary`] when the worker exits.
/// Recording never touches scheduling or fold state, so outcomes stay
/// byte-identical to the untraced fleet.
fn worker_loop<S: MergeableSink + Default>(
    shared: &FleetShared<'_, S>,
    engines: &[Engine<'_>],
    grids: &[Vec<ShardSpec>],
    factories: &[Option<SinkFactory<'_, S>>],
    recorder: &dyn Recorder,
) {
    let tracing = recorder.enabled();
    let t_loop = if tracing { Some(Instant::now()) } else { None };
    let mut items = 0u64;
    let mut busy_ns = 0u64;
    'worker: loop {
        let (item, queue_obs) = {
            let mut guard = lock(shared);
            loop {
                if guard.poisoned || guard.remaining_jobs == 0 {
                    break 'worker;
                }
                if let Some(item) = guard.queue.pop_front() {
                    let obs =
                        tracing.then(|| (guard.queue.len() as u64, guard.remaining_jobs as u64));
                    break (item, obs);
                }
                guard = shared
                    .work_ready
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Some((depth, jobs_remaining)) = queue_obs {
            recorder.record(Payload::QueueDepth {
                depth,
                jobs_remaining,
            });
        }

        let mut sentry = PanicSentry {
            shared,
            armed: true,
        };
        let shard = grids[item.job][item.grid_idx];
        let mut sink = match &factories[item.job] {
            Some(f) => f(),
            None => S::default(),
        };
        let mut timer = PhaseTimer::new(tracing);
        let t_item = timer.begin();
        engines[item.job].run_range_timed(
            shard.population(),
            shard.start(),
            shard.count(),
            &mut sink,
            &mut timer,
        );
        if let Some(t0) = t_item {
            let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            items += 1;
            busy_ns += wall_ns;
            recorder.record(Payload::WorkItem {
                job: item.job as u64,
                grid_index: item.grid_idx as u64,
                count: shard.count() as u64,
                wall_ns,
                rng_ns: timer.nanos(Phase::Rng),
                sim_ns: timer.nanos(Phase::Simulate),
                acc_ns: timer.nanos(Phase::Accumulate),
            });
        }

        let mut guard = lock(shared);
        let st = &mut guard.jobs[item.job];
        debug_assert!(st.slots[item.slot].is_none(), "double deposit");
        st.slots[item.slot] = Some(sink);
        st.outstanding -= 1;
        if st.outstanding == 0 {
            // Round complete. Exactly this worker owns the round now (no
            // item of the job is queued or in flight), so the deterministic
            // grid-order fold can run OUTSIDE the lock — dense-sink merges
            // are a real fraction of simulation cost, and other jobs'
            // workers must keep popping work meanwhile.
            let slots = std::mem::take(&mut st.slots);
            let mut acc = st.acc.take();
            let round_base = st.round_base;
            drop(guard);

            let t_fold = if tracing { Some(Instant::now()) } else { None };
            let grid = &grids[item.job];
            let (mut fixed_traces, mut random_traces) = (0usize, 0usize);
            for (i, slot) in slots.into_iter().enumerate() {
                let shard = grid[round_base + i];
                let sink = slot.expect("a completed round has every slot deposited");
                match &mut acc {
                    None => acc = Some(sink),
                    Some(a) => a.merge(sink),
                }
                match shard.population() {
                    Population::Fixed => fixed_traces += shard.count(),
                    Population::Random => random_traces += shard.count(),
                }
            }
            if let Some(t0) = t_fold {
                busy_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }

            guard = lock(shared);
            let acc = acc.expect("non-empty round folds a sink");
            match finish_round(&mut guard, item.job, acc, fixed_traces, random_traces) {
                RoundEvent::NextRound => {
                    enqueue_round(&mut guard, item.job);
                    shared.work_ready.notify_all();
                }
                RoundEvent::JobDone => {
                    guard.remaining_jobs -= 1;
                    if guard.remaining_jobs == 0 {
                        shared.work_ready.notify_all();
                    }
                }
            }
        }
        drop(guard);
        sentry.armed = false;
    }
    if let Some(t0) = t_loop {
        recorder.record(Payload::WorkerSummary {
            items,
            busy_ns,
            wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

/// Executes every job of a fleet on one shared worker pool and returns the
/// per-job outcomes **in job order**.
///
/// Shards of different jobs interleave freely on the pool's threads; each
/// job's accumulator is folded in its canonical shard order at its own round
/// boundaries, so every outcome is byte-identical to the job's standalone
/// [`run_campaign_parallel`](crate::campaign::run_campaign_parallel) (or,
/// for jobs with a rule,
/// [`run_campaign_adaptive`](crate::campaign::run_campaign_adaptive)) run —
/// at any thread count and in any job mix. A round's fold runs lock-free on
/// the worker that deposited its last shard (that worker owns the round
/// exclusively); only the bookkeeping and rule evaluation hold the
/// scheduler lock.
///
/// `parallelism` caps the pool; like the single-campaign engine, a
/// sequential budget (or a fleet with at most one concurrently runnable
/// shard) executes inline on the calling thread.
///
/// # Errors
///
/// Returns the first [`NetlistError`] hit while compiling a job's design
/// (no shard of any job runs in that case).
///
/// # Panics
///
/// Propagates worker panics.
pub fn run_fleet<S>(
    jobs: Vec<FleetJob<'_, S>>,
    parallelism: Parallelism,
) -> Result<Vec<CampaignOutcome<S>>, NetlistError>
where
    S: MergeableSink + Default,
{
    run_fleet_traced(jobs, parallelism, &NullRecorder)
}

/// [`run_fleet`] reporting structured trace events to `recorder`: per-item
/// queue depth, per-item phase-split timing (whose thread stamps expose the
/// job interleave), and one worker-utilization summary per pool thread.
/// Recording is strictly observational — outcomes stay byte-identical to
/// [`run_fleet`] at any worker count and in any job mix.
///
/// # Errors
///
/// Returns the first [`NetlistError`] hit while compiling a job's design.
///
/// # Panics
///
/// Propagates worker panics.
pub fn run_fleet_traced<S>(
    jobs: Vec<FleetJob<'_, S>>,
    parallelism: Parallelism,
    recorder: &dyn Recorder,
) -> Result<Vec<CampaignOutcome<S>>, NetlistError>
where
    S: MergeableSink + Default,
{
    // Decompose the jobs: engines borrow the configs, mutable rule state
    // moves behind the scheduler mutex.
    let n_jobs = jobs.len();
    let mut configs = Vec::with_capacity(n_jobs);
    let mut factories = Vec::with_capacity(n_jobs);
    let mut parts = Vec::with_capacity(n_jobs);
    for job in jobs {
        configs.push(job.config);
        factories.push(job.factory);
        parts.push((job.netlist, job.power, job.rule, job.shards_per_round));
    }
    let mut engines = Vec::with_capacity(n_jobs);
    let mut states = Vec::with_capacity(n_jobs);
    let mut remaining_jobs = 0usize;
    // Worker budget: per job at most one round — `shards_per_round` shards —
    // is ever in flight, so no thread beyond the fleet's peak runnable-shard
    // count can find work.
    let mut concurrency = 0usize;
    for ((netlist, power, rule, shards_per_round), config) in parts.into_iter().zip(&configs) {
        engines.push(Engine::new(
            netlist,
            power,
            config,
            parallelism.lane_words(),
        )?);
        let n_shards = shard_grid(config).len();
        let rounds = job_rounds(n_shards, shards_per_round);
        concurrency += n_shards.min(shards_per_round.max(1));
        let done = rounds.is_empty();
        remaining_jobs += usize::from(!done);
        states.push(JobState {
            rule,
            planned_fixed: config.n_fixed,
            planned_random: config.n_random,
            acc: None,
            stats: CampaignStats {
                planned_rounds: rounds.len(),
                ..CampaignStats::default()
            },
            rounds,
            next_round: 0,
            round_base: 0,
            slots: Vec::new(),
            outstanding: 0,
            done,
        });
    }
    let grids: Vec<Vec<ShardSpec>> = configs.iter().map(shard_grid).collect();

    let shared = FleetShared {
        inner: Mutex::new(FleetInner {
            queue: VecDeque::new(),
            jobs: states,
            remaining_jobs,
            poisoned: false,
        }),
        work_ready: Condvar::new(),
    };
    {
        let mut inner = lock(&shared);
        for j in 0..n_jobs {
            if !inner.jobs[j].done {
                enqueue_round(&mut inner, j);
            }
        }
    }

    let threads = parallelism.threads().min(concurrency.max(1));
    if remaining_jobs > 0 {
        if threads <= 1 {
            // Inline path: the queue only drains when every job is done, so
            // a single worker never waits on the condvar.
            worker_loop(&shared, &engines, &grids, &factories, recorder);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| worker_loop(&shared, &engines, &grids, &factories, recorder));
                }
            });
        }
    }

    let inner = shared
        .inner
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    assert!(
        !inner.poisoned && inner.remaining_jobs == 0,
        "fleet pool exited with unfinished jobs"
    );
    Ok(inner
        .jobs
        .into_iter()
        .map(|st| CampaignOutcome {
            sink: st.acc.unwrap_or_default(),
            stats: st.stats,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{
        collect_gate_samples_parallel, run_campaign_adaptive, run_campaign_parallel, GateSamples,
        TraceSink, DEFAULT_SHARDS_PER_ROUND,
    };
    use polaris_netlist::generators;

    #[test]
    fn job_rounds_tile_the_grid() {
        for (n, spr) in [
            (0usize, 4usize),
            (1, 4),
            (7, 2),
            (8, 4),
            (9, 4),
            (5, usize::MAX),
        ] {
            let rounds = job_rounds(n, spr);
            let mut next = 0usize;
            for r in &rounds {
                assert_eq!(r.start, next);
                assert!(r.end > r.start && r.end - r.start <= spr.max(1));
                next = r.end;
            }
            assert_eq!(next, n);
        }
        assert!(job_rounds(0, 1).is_empty());
        // spr == 0 is clamped to 1, matching the standalone driver.
        assert_eq!(job_rounds(3, 0).len(), 3);
    }

    #[test]
    fn heterogeneous_fleet_matches_standalone_runs() {
        let c17 = generators::iscas_c17();
        let c432 = generators::iscas_like("c432", 1, 5).unwrap();
        let model = PowerModel::default();
        let cfg_a = CampaignConfig::new(700, 900, 21);
        let cfg_b = CampaignConfig::new(450, 333, 9);

        let solo_a: GateSamples =
            run_campaign_parallel(&c17, &model, &cfg_a, Parallelism::new(2)).unwrap();
        let solo_b: GateSamples =
            run_campaign_parallel(&c432, &model, &cfg_b, Parallelism::new(2)).unwrap();

        for threads in [1usize, 2, 3, 8] {
            let jobs = vec![
                FleetJob::<GateSamples>::new(&c17, &model, cfg_a.clone()),
                FleetJob::<GateSamples>::new(&c432, &model, cfg_b.clone()),
            ];
            let outcomes = run_fleet(jobs, Parallelism::new(threads)).unwrap();
            assert_eq!(outcomes.len(), 2);
            for id in c17.ids() {
                assert_eq!(outcomes[0].sink.fixed(id), solo_a.fixed(id), "{threads}");
                assert_eq!(outcomes[0].sink.random(id), solo_a.random(id), "{threads}");
            }
            for id in c432.ids() {
                assert_eq!(outcomes[1].sink.fixed(id), solo_b.fixed(id), "{threads}");
                assert_eq!(outcomes[1].sink.random(id), solo_b.random(id), "{threads}");
            }
            assert!(!outcomes[0].stats.stopped_early);
            assert_eq!(outcomes[0].stats.fixed_traces, 700);
            assert_eq!(outcomes[0].stats.random_traces, 900);
            assert_eq!(
                outcomes[0].stats.rounds, 1,
                "non-adaptive jobs run as one round"
            );
        }
    }

    /// Test rule: stop unconditionally after a fixed number of rounds.
    struct StopAfter(usize);

    impl<S> StoppingRule<S> for StopAfter {
        fn should_stop(&mut self, c: &Checkpoint<'_, S>) -> bool {
            c.round >= self.0
        }
    }

    #[test]
    fn adaptive_job_stops_at_the_standalone_round_mid_fleet() {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let adaptive_cfg = CampaignConfig::new(1200, 1200, 21);
        let filler_cfg = CampaignConfig::new(600, 600, 3);

        let solo: CampaignOutcome<GateSamples> = run_campaign_adaptive(
            &c17,
            &model,
            &adaptive_cfg,
            Parallelism::new(2),
            2,
            &mut StopAfter(2),
        )
        .unwrap();
        assert!(solo.stats.stopped_early);

        for threads in [1usize, 2, 8] {
            let jobs = vec![
                FleetJob::<GateSamples>::new(&c17, &model, filler_cfg.clone()),
                FleetJob::new(&c17, &model, adaptive_cfg.clone()).with_rule(StopAfter(2), 2),
            ];
            let outcomes = run_fleet(jobs, Parallelism::new(threads)).unwrap();
            assert_eq!(outcomes[1].stats, solo.stats, "{threads} threads");
            for id in c17.ids() {
                assert_eq!(outcomes[1].sink.fixed(id), solo.sink.fixed(id));
                assert_eq!(outcomes[1].sink.random(id), solo.sink.random(id));
            }
        }
    }

    #[test]
    fn empty_and_one_sided_jobs_resolve() {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let jobs = vec![
            FleetJob::<GateSamples>::new(&c17, &model, CampaignConfig::new(0, 0, 1)),
            FleetJob::<GateSamples>::new(&c17, &model, CampaignConfig::new(0, 300, 4)),
        ];
        let outcomes = run_fleet(jobs, Parallelism::new(4)).unwrap();
        assert_eq!(outcomes[0].stats, CampaignStats::default());
        assert_eq!(outcomes[0].sink.gate_count(), 0);
        assert_eq!(outcomes[1].stats.random_traces, 300);
        let solo: GateSamples = run_campaign_parallel(
            &c17,
            &model,
            &CampaignConfig::new(0, 300, 4),
            Parallelism::new(4),
        )
        .unwrap();
        for id in c17.ids() {
            assert_eq!(outcomes[1].sink.random(id), solo.random(id));
        }
        let none: Vec<CampaignOutcome<GateSamples>> =
            run_fleet(Vec::new(), Parallelism::new(4)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn sink_factory_preallocates_without_changing_results() {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(300, 300, 7);
        let gates = c17.gate_count();
        let solo: GateSamples =
            run_campaign_parallel(&c17, &model, &cfg, Parallelism::new(2)).unwrap();
        let job = FleetJob::new(&c17, &model, cfg)
            .with_sink_factory(move || GateSamples::with_capacity(gates, 256, 256));
        let outcomes = run_fleet(vec![job], Parallelism::new(2)).unwrap();
        for id in c17.ids() {
            assert_eq!(outcomes[0].sink.fixed(id), solo.fixed(id));
            assert_eq!(outcomes[0].sink.random(id), solo.random(id));
        }
    }

    /// Sink counting traces per population — cheap probe for scheduling
    /// bookkeeping.
    #[derive(Default)]
    struct CountProbe {
        fixed: usize,
        random: usize,
    }

    impl TraceSink for CountProbe {
        fn record_batch(&mut self, pop: Population, batch: crate::campaign::EnergyBatch<'_>) {
            match pop {
                Population::Fixed => self.fixed += batch.lanes(),
                Population::Random => self.random += batch.lanes(),
            }
        }
    }

    impl MergeableSink for CountProbe {
        fn merge(&mut self, other: Self) {
            self.fixed += other.fixed;
            self.random += other.random;
        }
    }

    #[test]
    fn no_shard_is_lost_or_duplicated_across_a_mixed_fleet() {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let sizes = [(513usize, 0usize), (1, 1), (300, 1000), (0, 257)];
        for threads in [1usize, 3, 8] {
            let jobs: Vec<FleetJob<CountProbe>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &(nf, nr))| {
                    let job =
                        FleetJob::new(&c17, &model, CampaignConfig::new(nf, nr, i as u64 + 1));
                    if i % 2 == 0 {
                        job.with_rule(NeverStop, DEFAULT_SHARDS_PER_ROUND)
                    } else {
                        job
                    }
                })
                .collect();
            let outcomes = run_fleet(jobs, Parallelism::new(threads)).unwrap();
            for (outcome, &(nf, nr)) in outcomes.iter().zip(&sizes) {
                assert_eq!(outcome.sink.fixed, nf, "{threads} threads");
                assert_eq!(outcome.sink.random, nr, "{threads} threads");
                assert_eq!(outcome.stats.fixed_traces, nf);
                assert_eq!(outcome.stats.random_traces, nr);
            }
        }
    }

    #[test]
    fn fleet_dense_collection_matches_collect_gate_samples_parallel() {
        let c17 = generators::iscas_c17();
        let model = PowerModel::default();
        let cfg = CampaignConfig::new(100, 130, 1);
        let solo = collect_gate_samples_parallel(&c17, &model, &cfg, Parallelism::new(2)).unwrap();
        let outcomes = run_fleet(
            vec![FleetJob::<GateSamples>::new(&c17, &model, cfg)],
            Parallelism::new(2),
        )
        .unwrap();
        for id in c17.ids() {
            assert_eq!(outcomes[0].sink.fixed(id), solo.fixed(id));
            assert_eq!(outcomes[0].sink.random(id), solo.random(id));
        }
    }
}
