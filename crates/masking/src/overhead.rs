//! Area / power / delay overhead analysis (Table IV of the paper).
//!
//! * **Area** — sum of cell areas from the [`CellLibrary`].
//! * **Delay** — static timing analysis: the longest register-to-register /
//!   port-to-port combinational path, using per-cell propagation delays.
//! * **Power** — dynamic power from *simulated* switching activity: a short
//!   random-stimulus campaign counts per-gate toggles, each weighted by the
//!   cell's energy-per-toggle. Masked composites therefore show their true
//!   cost: mask-driven gates toggle roughly every other cycle.

use polaris_netlist::{GateKind, Netlist, NetlistError};
use polaris_sim::{CampaignConfig, EnergyBatch, Population, TraceSink};

use crate::tech::CellLibrary;

/// Physical cost of a design.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Overhead {
    /// Total standard-cell area in µm².
    pub area_um2: f64,
    /// Estimated dynamic power in mW (at the implicit 1 GHz of one toggle
    /// set per ns: pJ/cycle ≡ mW).
    pub power_mw: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
}

impl Overhead {
    /// Ratio of each metric to a baseline (`x Original` in Table IV).
    pub fn ratio_to(&self, baseline: &Overhead) -> Overhead {
        let div = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
        Overhead {
            area_um2: div(self.area_um2, baseline.area_um2),
            power_mw: div(self.power_mw, baseline.power_mw),
            delay_ns: div(self.delay_ns, baseline.delay_ns),
        }
    }
}

/// Counts average toggles per gate per trace under random stimulus.
#[derive(Default)]
struct ActivityProbe {
    /// Mean energy is unused; we only need mean toggle count per gate, which
    /// equals the mean of the (noise-free) energy samples divided by the
    /// per-gate cap — so the probe runs with a unit-cap, zero-noise model.
    sums: Vec<f64>,
    traces: usize,
}

impl TraceSink for ActivityProbe {
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
        if pop != Population::Random {
            return;
        }
        if self.sums.is_empty() {
            self.sums.resize(batch.gates(), 0.0);
        }
        for (g, sum) in self.sums.iter_mut().enumerate().take(batch.gates()) {
            for &e in batch.gate_lanes(g) {
                *sum += e;
            }
        }
        self.traces += batch.lanes();
    }
}

/// Computes the overhead of a design.
///
/// `activity_traces` random-stimulus traces estimate switching activity for
/// the power figure (64–256 is plenty; activity converges fast).
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulation.
pub fn analyze_overhead(
    netlist: &Netlist,
    lib: &CellLibrary,
    activity_traces: usize,
    seed: u64,
) -> Result<Overhead, NetlistError> {
    let area_um2: f64 = netlist.iter().map(|(_, g)| lib.area_um2(g.kind())).sum();
    let delay_ns = critical_path_ns(netlist, lib)?;

    // Unit-cap, noise-free probe: sample mean per gate == mean toggles.
    let mut unit_caps = [1.0; GateKind::ALL.len()];
    unit_caps[GateKind::Input.ordinal()] = 1.0;
    let probe_model = polaris_sim::PowerModel::new(unit_caps, 0.0);
    let cfg = CampaignConfig::new(0, activity_traces.max(1), seed);
    let mut probe = ActivityProbe::default();
    polaris_sim::campaign::run_campaign(netlist, &probe_model, &cfg, &mut probe)?;
    let traces = probe.traces.max(1) as f64;
    let power_mw: f64 = netlist
        .iter()
        .map(|(id, g)| lib.energy_pj(g.kind()) * probe.sums[id.index()] / traces)
        .sum();

    Ok(Overhead {
        area_um2,
        power_mw,
        delay_ns,
    })
}

/// Longest combinational path delay: arrival-time propagation over the
/// levelized netlist, with flip-flop outputs and ports as path sources and
/// flip-flop inputs and ports as path endpoints.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn critical_path_ns(netlist: &Netlist, lib: &CellLibrary) -> Result<f64, NetlistError> {
    let order = netlist.topo_order()?;
    let mut arrival = vec![0.0f64; netlist.gate_count()];
    let mut worst: f64 = 0.0;
    for id in order {
        let gate = netlist.gate(id);
        if gate.kind().is_sequential() || gate.kind().is_input() || gate.kind().is_const() {
            arrival[id.index()] = 0.0;
            continue;
        }
        let input_arrival = gate
            .fanin()
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        let a = input_arrival + lib.delay_ns(gate.kind());
        arrival[id.index()] = a;
        worst = worst.max(a);
    }
    // Paths ending at flip-flop data pins.
    for (_, gate) in netlist.iter() {
        if gate.kind().is_sequential() {
            worst = worst.max(arrival[gate.fanin()[0].index()]);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{apply_masking, MaskingStyle};
    use polaris_netlist::generators;
    use polaris_netlist::transform::decompose;

    #[test]
    fn chain_delay_adds_up() {
        // a -> NOT -> NOT -> y: delay = 2 × not.
        let src = "
module t (a, y);
  input a;
  output y;
  not n1 (w, a);
  not n2 (y, w);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let lib = CellLibrary::default();
        let d = critical_path_ns(&n, &lib).unwrap();
        assert!((d - 2.0 * lib.delay_ns(GateKind::Not)).abs() < 1e-12);
    }

    #[test]
    fn dff_cuts_timing_paths() {
        // NOT -> DFF -> NOT: critical path is one NOT, not two.
        let src = "
module t (a, y);
  input a;
  output y;
  not n1 (w, a);
  dff r (q, w);
  not n2 (y, q);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let lib = CellLibrary::default();
        let d = critical_path_ns(&n, &lib).unwrap();
        assert!((d - lib.delay_ns(GateKind::Not)).abs() < 1e-12);
    }

    #[test]
    fn area_is_sum_of_cells() {
        let n = generators::iscas_c17();
        let lib = CellLibrary::default();
        let o = analyze_overhead(&n, &lib, 32, 1).unwrap();
        assert!((o.area_um2 - 6.0 * lib.area_um2(GateKind::Nand)).abs() < 1e-9);
    }

    #[test]
    fn masking_increases_every_metric() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let lib = CellLibrary::default();
        let base = analyze_overhead(&d, &lib, 64, 3).unwrap();
        let masked = apply_masking(&d, &d.cell_ids(), MaskingStyle::Trichina).unwrap();
        let cost = analyze_overhead(&masked.netlist, &lib, 64, 3).unwrap();
        assert!(cost.area_um2 > base.area_um2 * 2.0);
        assert!(cost.power_mw > base.power_mw * 1.5);
        assert!(cost.delay_ns > base.delay_ns);
        let r = cost.ratio_to(&base);
        assert!(
            r.area_um2 > 2.0 && r.area_um2 < 20.0,
            "area ratio {}",
            r.area_um2
        );
    }

    #[test]
    fn partial_masking_costs_less_than_full() {
        let (d, _) = decompose(&generators::des3(1, 5)).unwrap();
        let lib = CellLibrary::default();
        let cells = d.cell_ids();
        let half: Vec<_> = cells.iter().step_by(2).copied().collect();
        let full = apply_masking(&d, &cells, MaskingStyle::Trichina).unwrap();
        let part = apply_masking(&d, &half, MaskingStyle::Trichina).unwrap();
        let of = analyze_overhead(&full.netlist, &lib, 32, 3).unwrap();
        let op = analyze_overhead(&part.netlist, &lib, 32, 3).unwrap();
        assert!(op.area_um2 < of.area_um2);
        assert!(op.power_mw < of.power_mw);
    }

    #[test]
    fn ratio_handles_zero_baseline() {
        let z = Overhead::default();
        let r = z.ratio_to(&z);
        assert_eq!(r, Overhead::default());
    }
}
