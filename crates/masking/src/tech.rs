//! Technology cell library: per-kind area, switching power coefficient and
//! propagation delay, in the spirit of a 45 nm standard-cell datasheet.

use polaris_netlist::GateKind;

/// Per-kind physical characteristics used by the overhead analysis
/// (Table IV reports area in µm², power in mW and delay in ns).
#[derive(Clone, Debug, PartialEq)]
pub struct CellLibrary {
    area_um2: [f64; GateKind::ALL.len()],
    /// Energy per output toggle, in pJ — multiplied by switching activity to
    /// yield dynamic power.
    energy_pj: [f64; GateKind::ALL.len()],
    delay_ns: [f64; GateKind::ALL.len()],
}

impl CellLibrary {
    /// A 45 nm-flavoured library with relative values echoing open PDKs
    /// (NAND2 as the unit cell; XOR/MUX larger; DFF largest).
    pub fn default_45nm() -> Self {
        let mut lib = CellLibrary {
            area_um2: [0.0; GateKind::ALL.len()],
            energy_pj: [0.0; GateKind::ALL.len()],
            delay_ns: [0.0; GateKind::ALL.len()],
        };
        let mut set = |k: GateKind, area: f64, energy: f64, delay: f64| {
            lib.area_um2[k.ordinal()] = area;
            lib.energy_pj[k.ordinal()] = energy;
            lib.delay_ns[k.ordinal()] = delay;
        };
        set(GateKind::Input, 0.0, 0.0, 0.0);
        set(GateKind::Const0, 0.0, 0.0, 0.0);
        set(GateKind::Const1, 0.0, 0.0, 0.0);
        set(GateKind::Buf, 1.6, 0.006, 0.030);
        set(GateKind::Not, 1.1, 0.004, 0.015);
        set(GateKind::Nand, 1.6, 0.007, 0.022);
        set(GateKind::Nor, 1.6, 0.008, 0.026);
        set(GateKind::And, 2.1, 0.010, 0.038);
        set(GateKind::Or, 2.1, 0.010, 0.040);
        set(GateKind::Xor, 3.2, 0.015, 0.055);
        set(GateKind::Xnor, 3.2, 0.015, 0.055);
        set(GateKind::Mux, 3.7, 0.017, 0.060);
        set(GateKind::Dff, 6.9, 0.028, 0.090);
        lib
    }

    /// Cell area in µm².
    pub fn area_um2(&self, kind: GateKind) -> f64 {
        self.area_um2[kind.ordinal()]
    }

    /// Energy per output toggle in pJ.
    pub fn energy_pj(&self, kind: GateKind) -> f64 {
        self.energy_pj[kind.ordinal()]
    }

    /// Propagation delay in ns.
    pub fn delay_ns(&self, kind: GateKind) -> f64 {
        self.delay_ns[kind.ordinal()]
    }

    /// Overrides one cell's characteristics (for ablation studies).
    pub fn set(&mut self, kind: GateKind, area_um2: f64, energy_pj: f64, delay_ns: f64) {
        self.area_um2[kind.ordinal()] = area_um2;
        self.energy_pj[kind.ordinal()] = energy_pj;
        self.delay_ns[kind.ordinal()] = delay_ns;
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::default_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_cells_are_free() {
        let lib = CellLibrary::default();
        for k in [GateKind::Input, GateKind::Const0, GateKind::Const1] {
            assert_eq!(lib.area_um2(k), 0.0);
            assert_eq!(lib.energy_pj(k), 0.0);
            assert_eq!(lib.delay_ns(k), 0.0);
        }
    }

    #[test]
    fn relative_cell_ordering() {
        let lib = CellLibrary::default();
        assert!(lib.area_um2(GateKind::Dff) > lib.area_um2(GateKind::Xor));
        assert!(lib.area_um2(GateKind::Xor) > lib.area_um2(GateKind::Nand));
        assert!(lib.delay_ns(GateKind::Not) < lib.delay_ns(GateKind::And));
    }

    #[test]
    fn set_overrides() {
        let mut lib = CellLibrary::default();
        lib.set(GateKind::Nand, 9.0, 1.0, 2.0);
        assert_eq!(lib.area_um2(GateKind::Nand), 9.0);
        assert_eq!(lib.energy_pj(GateKind::Nand), 1.0);
        assert_eq!(lib.delay_ns(GateKind::Nand), 2.0);
    }
}
