//! Second-order ISW masking (3 shares).
//!
//! The paper's background (§II-B) defines d-th order security: every
//! variable is split into `d + 1` shares so an adversary must combine
//! `d + 1` probes (statistical moments) to recover it. The Trichina
//! composites in [`crate::trichina`] are first-order (2 shares) — their
//! centered-square statistics still leak (see the `leakage_semantics`
//! integration tests). This module implements the classic
//! Ishai–Sahai–Wagner multiplication at order `d = 2`:
//!
//! * operands enter unmasked and are shared on entry:
//!   `a = a0 ⊕ a1 ⊕ a2` with `a1 = x1`, `a2 = x2` fresh masks;
//! * partial products `pij = ai · bj` are re-randomized with fresh
//!   `z01, z02, z12` per the ISW schedule:
//!   `c0 = p00 ⊕ z01 ⊕ z02`,
//!   `c1 = p11 ⊕ (z01 ⊕ p01 ⊕ p10) ⊕ z12`,
//!   `c2 = p22 ⊕ (z02 ⊕ p02 ⊕ p20) ⊕ (z12 ⊕ p12 ⊕ p21)`;
//! * the boundary re-combination `c0 ⊕ c1 ⊕ c2 = a·b` keeps the
//!   surrounding netlist functional (crate convention).
//!
//! Cost: 9 AND + 16 XOR ≈ 25 cells and 7 fresh mask bits per gate — the
//! quadratic share-count blowup that motivates *selective* higher-order
//! masking.
//!
//! Security, as validated by the workspace `leakage_semantics` tests with
//! [`polaris-tvla`'s bivariate second-order test]: every share-domain core
//! pair of an ISW composite passes bivariate TVLA, while a Trichina
//! composite has core pairs that fail it. The entry-sharing and exit
//! re-combination gates are the usual boundary concession of the crate's
//! local mask/re-combine convention (the raw operand wires exist in the
//! surrounding unmasked netlist regardless).

use polaris_netlist::{GateId, GateKind, Netlist};

use crate::trichina::MaskedExpansion;

/// Fresh-randomness bundle for one second-order gate.
#[derive(Clone, Copy, Debug)]
pub struct IswMasks {
    /// Input-sharing masks for operand `a` (`a1`, `a2`).
    pub x1: GateId,
    /// Second sharing mask for `a`.
    pub x2: GateId,
    /// Input-sharing masks for operand `b`.
    pub y1: GateId,
    /// Second sharing mask for `b`.
    pub y2: GateId,
    /// Cross-product refresh randomness.
    pub z01: GateId,
    /// Cross-product refresh randomness.
    pub z02: GateId,
    /// Cross-product refresh randomness.
    pub z12: GateId,
}

impl IswMasks {
    /// Allocates the seven mask inputs on `n` with a common `prefix`.
    pub fn allocate(n: &mut Netlist, prefix: &str) -> Self {
        IswMasks {
            x1: n.add_mask_input(format!("{prefix}_x1")),
            x2: n.add_mask_input(format!("{prefix}_x2")),
            y1: n.add_mask_input(format!("{prefix}_y1")),
            y2: n.add_mask_input(format!("{prefix}_y2")),
            z01: n.add_mask_input(format!("{prefix}_z01")),
            z02: n.add_mask_input(format!("{prefix}_z02")),
            z12: n.add_mask_input(format!("{prefix}_z12")),
        }
    }

    /// Number of mask bits a second-order gate consumes.
    pub const BITS: usize = 7;
}

fn add(
    n: &mut Netlist,
    gates: &mut Vec<GateId>,
    kind: GateKind,
    name: String,
    fi: &[GateId],
) -> GateId {
    let g = n.add_gate(kind, name, fi).expect("valid masked-gate fanin");
    gates.push(g);
    g
}

/// Second-order ISW masked AND; output equals `a·b`.
pub fn masked_and_order2(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    m: IswMasks,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(26);
    // Share the operands: a0 = a ⊕ x1 ⊕ x2, a1 = x1, a2 = x2.
    let ax1 = add(n, &mut gates, GateKind::Xor, format!("{p}_ax1"), &[a, m.x1]);
    let a0 = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_a0"),
        &[ax1, m.x2],
    );
    let by1 = add(n, &mut gates, GateKind::Xor, format!("{p}_by1"), &[b, m.y1]);
    let b0 = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_b0"),
        &[by1, m.y2],
    );
    let shares_a = [a0, m.x1, m.x2];
    let shares_b = [b0, m.y1, m.y2];
    // Partial products.
    let mut pp = [[GateId::new(0); 3]; 3];
    for (i, &ai) in shares_a.iter().enumerate() {
        for (j, &bj) in shares_b.iter().enumerate() {
            pp[i][j] = add(
                n,
                &mut gates,
                GateKind::And,
                format!("{p}_p{i}{j}"),
                &[ai, bj],
            );
        }
    }
    // ISW refresh schedule: zji = (zij ⊕ pij) ⊕ pji for i < j.
    let cross = |n: &mut Netlist, gates: &mut Vec<GateId>, z: GateId, i: usize, j: usize| {
        let t = add(
            n,
            gates,
            GateKind::Xor,
            format!("{p}_t{i}{j}"),
            &[z, pp[i][j]],
        );
        add(
            n,
            gates,
            GateKind::Xor,
            format!("{p}_u{i}{j}"),
            &[t, pp[j][i]],
        )
    };
    let z10 = cross(n, &mut gates, m.z01, 0, 1);
    let z20 = cross(n, &mut gates, m.z02, 0, 2);
    let z21 = cross(n, &mut gates, m.z12, 1, 2);
    // Output shares.
    let c0a = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_c0a"),
        &[pp[0][0], m.z01],
    );
    let c0 = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_c0"),
        &[c0a, m.z02],
    );
    let c1a = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_c1a"),
        &[pp[1][1], z10],
    );
    let c1 = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_c1"),
        &[c1a, m.z12],
    );
    let c2a = add(
        n,
        &mut gates,
        GateKind::Xor,
        format!("{p}_c2a"),
        &[pp[2][2], z20],
    );
    let c2 = add(n, &mut gates, GateKind::Xor, format!("{p}_c2"), &[c2a, z21]);
    // Boundary re-combination.
    let r01 = add(n, &mut gates, GateKind::Xor, format!("{p}_r01"), &[c0, c1]);
    let out = add(n, &mut gates, GateKind::Xor, format!("{p}_out"), &[r01, c2]);
    MaskedExpansion { output: out, gates }
}

/// Second-order masked OR via De Morgan; output equals `a|b`.
pub fn masked_or_order2(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    m: IswMasks,
) -> MaskedExpansion {
    let na = n
        .add_gate(GateKind::Not, format!("{p}_na"), &[a])
        .expect("valid fanin");
    let nb = n
        .add_gate(GateKind::Not, format!("{p}_nb"), &[b])
        .expect("valid fanin");
    let mut e = masked_and_order2(n, p, na, nb, m);
    let out = n
        .add_gate(GateKind::Not, format!("{p}_or"), &[e.output])
        .expect("valid fanin");
    e.gates.push(na);
    e.gates.push(nb);
    e.gates.push(out);
    e.output = out;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_sim::Simulator;

    fn build(or_gate: bool) -> (Netlist, MaskedExpansion) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m = IswMasks::allocate(&mut n, "m");
        let e = if or_gate {
            masked_or_order2(&mut n, "g", a, b, m)
        } else {
            masked_and_order2(&mut n, "g", a, b, m)
        };
        n.add_output("y", e.output).unwrap();
        n.validate().unwrap();
        (n, e)
    }

    #[test]
    fn isw_and_functionally_equal_for_all_masks() {
        let (n, _) = build(false);
        let sim = Simulator::new(&n).unwrap();
        for bits in 0..(1u32 << 9) {
            let v = |i: u32| bits >> i & 1 == 1;
            let data = [v(0), v(1)];
            let masks: Vec<bool> = (2..9).map(v).collect();
            let out = sim.eval_bool(&data, &masks).unwrap()[0];
            assert_eq!(out, v(0) && v(1), "bits {bits:09b}");
        }
    }

    #[test]
    fn isw_or_functionally_equal_for_all_masks() {
        let (n, _) = build(true);
        let sim = Simulator::new(&n).unwrap();
        for bits in 0..(1u32 << 9) {
            let v = |i: u32| bits >> i & 1 == 1;
            let data = [v(0), v(1)];
            let masks: Vec<bool> = (2..9).map(v).collect();
            let out = sim.eval_bool(&data, &masks).unwrap()[0];
            assert_eq!(out, v(0) || v(1), "bits {bits:09b}");
        }
    }

    #[test]
    fn every_internal_signal_is_first_order_uniform() {
        // Mask-averaged value of every internal gate (except the boundary
        // re-combination chain) is independent of (a, b).
        let (n, e) = build(false);
        let sim = Simulator::new(&n).unwrap();
        let boundary: Vec<GateId> = e.gates[e.gates.len() - 2..].to_vec(); // r01, out
        for &g in &e.gates {
            if boundary.contains(&g) {
                continue;
            }
            let mut counts = Vec::new();
            for ab in 0..4u32 {
                let mut ones = 0u32;
                for mask_bits in 0..(1u32 << 7) {
                    let data = [ab & 1 == 1, ab >> 1 & 1 == 1];
                    let masks: Vec<bool> = (0..7).map(|i| mask_bits >> i & 1 == 1).collect();
                    let dv: Vec<u64> = data.iter().map(|&x| if x { 1 } else { 0 }).collect();
                    let mv: Vec<u64> = masks.iter().map(|&x| if x { 1 } else { 0 }).collect();
                    let mut st = sim.zero_state();
                    sim.eval(&mut st, &dv, &mv);
                    ones += (st.value(g) & 1) as u32;
                }
                counts.push(ones);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "gate {g} first-order leaks: {counts:?}"
            );
        }
    }

    #[test]
    fn gate_and_mask_budget() {
        let (n, e) = build(false);
        assert_eq!(n.mask_inputs().len(), IswMasks::BITS);
        // 9 AND + 16 XOR + sharing = 26 gates give or take the boundary.
        assert!(
            e.gates.len() >= 20,
            "expected a big composite, got {}",
            e.gates.len()
        );
    }
}
