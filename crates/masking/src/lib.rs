//! Masking-gate transforms and design-overhead analysis.
//!
//! This crate provides the *mitigation* substrate of the paper:
//!
//! * [`trichina`] — the masked AND/OR composite gates of Trichina (paper
//!   Eq. 5 / Fig. 1) plus masked forms of the remaining 2-input cells.
//! * [`dom`] — Domain-Oriented-Masking style composites (the paper's §V-E
//!   extension), which insert a register stage on the cross-domain terms.
//! * [`transform`] — [`apply_masking`]: replaces selected gates of a
//!   normalized netlist with their masked composites, wiring fresh mask
//!   randomness ports and tracking the origin of every new gate so per-gate
//!   leakage can be attributed across the rewrite.
//! * [`tech`] / [`overhead`] — a 45 nm-flavoured standard-cell library and
//!   the area/power/delay analysis behind Table IV.
//!
//! ## Masking semantics
//!
//! Each masked composite computes the *same boolean function* as the gate it
//! replaces (the masked value is re-combined at the composite boundary), so
//! the design's functionality is untouched — verified by property tests.
//! What changes is the power profile: the composite's internal gates switch
//! as functions of per-trace fresh mask bits, which decorrelates the
//! composite's total energy from the data and collapses the TVLA
//! t-statistic. This local mask/re-combine style is what gate-granular
//! hardening flows (Karna, VALIANT) apply; share-preserving global masking
//! (full DOM pipelines) is out of scope for gate-level selective masking.
//!
//! # Example
//!
//! ```
//! use polaris_masking::{apply_masking, MaskingStyle};
//! use polaris_netlist::{generators, transform::decompose};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (design, _) = decompose(&generators::iscas_c17())?;
//! let targets = design.cell_ids();
//! let masked = apply_masking(&design, &targets, MaskingStyle::Trichina)?;
//! assert!(masked.netlist.gate_count() > design.gate_count());
//! assert_eq!(masked.netlist.mask_inputs().len(), 3 * targets.len());
//! # Ok(())
//! # }
//! ```

pub mod dom;
pub mod isw;
pub mod overhead;
pub mod tech;
pub mod transform;
pub mod trichina;

pub use overhead::{analyze_overhead, Overhead};
pub use tech::CellLibrary;
pub use transform::{apply_masking, MaskedDesign, MaskingError, MaskingStyle};
