//! Trichina masked composite gates (paper §II-B, Eq. 5, Fig. 1).
//!
//! For masked bits `â = a ⊕ x`, `b̂ = b ⊕ y` and a fresh output mask `z`,
//! the Trichina masked AND computes
//!
//! ```text
//! M(a·b) = (((â·b̂) ⊕ ((x·b̂) ⊕ ((x·y) ⊕ z))) ⊕ (y·â))  =  (a·b) ⊕ z
//! ```
//!
//! without any intermediate signal depending on both unmasked operands —
//! the parenthesization order matters and is preserved here exactly as in
//! Eq. 5 of the paper. The builders in this module emit the composite into a
//! netlist and re-combine (`⊕ z`) at the boundary so the surrounding logic
//! is functionally unchanged.

use polaris_netlist::{GateId, GateKind, Netlist};

/// Signals produced when expanding one masked gate.
#[derive(Clone, Debug)]
pub struct MaskedExpansion {
    /// Gate computing the original (re-combined) output value.
    pub output: GateId,
    /// Every gate materialized for the composite (output included).
    pub gates: Vec<GateId>,
}

/// Emits `â = a ⊕ x`, `b̂ = b ⊕ y` and the Eq.-5 masked AND chain, returning
/// the gate computing `(a·b) ⊕ z` *without* the final re-combination.
#[allow(clippy::too_many_arguments)] // mask wiring is positional by design
fn masked_and_core(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
    gates: &mut Vec<GateId>,
) -> GateId {
    let mut add = |n: &mut Netlist, kind: GateKind, name: String, fi: &[GateId]| -> GateId {
        let g = n.add_gate(kind, name, fi).expect("valid masked-gate fanin");
        gates.push(g);
        g
    };
    let a_hat = add(n, GateKind::Xor, format!("{p}_ah"), &[a, x]);
    let b_hat = add(n, GateKind::Xor, format!("{p}_bh"), &[b, y]);
    let t1 = add(n, GateKind::And, format!("{p}_t1"), &[a_hat, b_hat]); // â·b̂
    let t2 = add(n, GateKind::And, format!("{p}_t2"), &[x, b_hat]); // x·b̂
    let t3 = add(n, GateKind::And, format!("{p}_t3"), &[x, y]); // x·y
    let t4 = add(n, GateKind::And, format!("{p}_t4"), &[y, a_hat]); // y·â

    // Eq. 5 inner-to-outer: ((x·y) ⊕ z), then ⊕ (x·b̂), then ⊕ (â·b̂),
    // then ⊕ (y·â).
    let s1 = add(n, GateKind::Xor, format!("{p}_s1"), &[t3, z]);
    let s2 = add(n, GateKind::Xor, format!("{p}_s2"), &[t2, s1]);
    let s3 = add(n, GateKind::Xor, format!("{p}_s3"), &[t1, s2]);
    add(n, GateKind::Xor, format!("{p}_m"), &[s3, t4]) // = (a·b) ⊕ z
}

/// Masked AND with boundary re-combination: output equals `a·b`.
pub fn masked_and(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(11);
    let m = masked_and_core(n, p, a, b, x, y, z, &mut gates);
    let out = n
        .add_gate(GateKind::Xor, format!("{p}_out"), &[m, z])
        .expect("valid fanin");
    gates.push(out);
    MaskedExpansion { output: out, gates }
}

/// Masked OR via De Morgan over the masked AND (Fig. 1 of the paper):
/// `a + b = ¬(¬a · ¬b)`; output equals `a|b`.
pub fn masked_or(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(14);
    let na = n
        .add_gate(GateKind::Not, format!("{p}_na"), &[a])
        .expect("valid fanin");
    let nb = n
        .add_gate(GateKind::Not, format!("{p}_nb"), &[b])
        .expect("valid fanin");
    gates.push(na);
    gates.push(nb);
    let m = masked_and_core(n, p, na, nb, x, y, z, &mut gates);
    let v = n
        .add_gate(GateKind::Xor, format!("{p}_v"), &[m, z])
        .expect("valid fanin"); // ¬a·¬b
    let out = n
        .add_gate(GateKind::Not, format!("{p}_out"), &[v])
        .expect("valid fanin");
    gates.push(v);
    gates.push(out);
    MaskedExpansion { output: out, gates }
}

/// Masked NAND: masked AND + inverter.
pub fn masked_nand(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut e = masked_and(n, p, a, b, x, y, z);
    let out = n
        .add_gate(GateKind::Not, format!("{p}_inv"), &[e.output])
        .expect("valid fanin");
    e.gates.push(out);
    e.output = out;
    e
}

/// Masked NOR: masked OR + inverter.
pub fn masked_nor(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut e = masked_or(n, p, a, b, x, y, z);
    let out = n
        .add_gate(GateKind::Not, format!("{p}_inv"), &[e.output])
        .expect("valid fanin");
    e.gates.push(out);
    e.output = out;
    e
}

/// Masked XOR: XOR is share-linear, so `(â ⊕ b̂) ⊕ (x ⊕ y) = a ⊕ b`; the
/// fresh `z` additionally remasks the intermediate.
pub fn masked_xor(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(7);
    let mut add = |n: &mut Netlist, kind: GateKind, name: String, fi: &[GateId]| -> GateId {
        let g = n.add_gate(kind, name, fi).expect("valid fanin");
        gates.push(g);
        g
    };
    let a_hat = add(n, GateKind::Xor, format!("{p}_ah"), &[a, x]);
    let b_hat = add(n, GateKind::Xor, format!("{p}_bh"), &[b, y]);
    let hx = add(n, GateKind::Xor, format!("{p}_hx"), &[a_hat, b_hat]); // (a⊕b)⊕x⊕y
    let hz = add(n, GateKind::Xor, format!("{p}_hz"), &[hx, z]); // remask with z
    let xy = add(n, GateKind::Xor, format!("{p}_xy"), &[x, y]);
    let xyz = add(n, GateKind::Xor, format!("{p}_xyz"), &[xy, z]);
    let out = add(n, GateKind::Xor, format!("{p}_out"), &[hz, xyz]); // = a⊕b
    MaskedExpansion { output: out, gates }
}

/// Masked XNOR: masked XOR + inverter.
pub fn masked_xnor(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    let mut e = masked_xor(n, p, a, b, x, y, z);
    let out = n
        .add_gate(GateKind::Not, format!("{p}_inv"), &[e.output])
        .expect("valid fanin");
    e.gates.push(out);
    e.output = out;
    e
}

/// Masked inverter/buffer: route through a mask so the wire toggles with
/// fresh randomness (`(a ⊕ x) ⊕ x = a`, inverted for NOT).
pub fn masked_unary(
    n: &mut Netlist,
    p: &str,
    invert: bool,
    a: GateId,
    x: GateId,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(3);
    let a_hat = n
        .add_gate(GateKind::Xor, format!("{p}_ah"), &[a, x])
        .expect("valid fanin");
    gates.push(a_hat);
    let unm = n
        .add_gate(GateKind::Xor, format!("{p}_um"), &[a_hat, x])
        .expect("valid fanin");
    gates.push(unm);
    let output = if invert {
        let g = n
            .add_gate(GateKind::Not, format!("{p}_out"), &[unm])
            .expect("valid fanin");
        gates.push(g);
        g
    } else {
        unm
    };
    MaskedExpansion { output, gates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_sim::Simulator;

    /// Exhaustively verify a masked builder against its boolean function over
    /// all (a, b, x, y, z) combinations.
    fn check(
        f: impl Fn(&mut Netlist, &str, GateId, GateId, GateId, GateId, GateId) -> MaskedExpansion,
        truth: impl Fn(bool, bool) -> bool,
        name: &str,
    ) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_mask_input("x");
        let y = n.add_mask_input("y");
        let z = n.add_mask_input("z");
        let e = f(&mut n, "g", a, b, x, y, z);
        n.add_output("out", e.output).unwrap();
        n.validate().unwrap();
        let sim = Simulator::new(&n).unwrap();
        for bits in 0..32u32 {
            let v = |i: u32| bits >> i & 1 == 1;
            let out = sim.eval_bool(&[v(0), v(1)], &[v(2), v(3), v(4)]).unwrap()[0];
            assert_eq!(
                out,
                truth(v(0), v(1)),
                "{name}: a={} b={} x={} y={} z={}",
                v(0),
                v(1),
                v(2),
                v(3),
                v(4)
            );
        }
    }

    #[test]
    fn masked_and_functionally_equal() {
        check(masked_and, |a, b| a && b, "and");
    }

    #[test]
    fn masked_or_functionally_equal() {
        check(masked_or, |a, b| a || b, "or");
    }

    #[test]
    fn masked_nand_functionally_equal() {
        check(masked_nand, |a, b| !(a && b), "nand");
    }

    #[test]
    fn masked_nor_functionally_equal() {
        check(masked_nor, |a, b| !(a || b), "nor");
    }

    #[test]
    fn masked_xor_functionally_equal() {
        check(masked_xor, |a, b| a ^ b, "xor");
    }

    #[test]
    fn masked_xnor_functionally_equal() {
        check(masked_xnor, |a, b| !(a ^ b), "xnor");
    }

    #[test]
    fn masked_unary_functionally_equal() {
        for invert in [false, true] {
            let mut n = Netlist::new("t");
            let a = n.add_input("a");
            let x = n.add_mask_input("x");
            let e = masked_unary(&mut n, "g", invert, a, x);
            n.add_output("out", e.output).unwrap();
            let sim = Simulator::new(&n).unwrap();
            for bits in 0..4u32 {
                let av = bits & 1 == 1;
                let xv = bits >> 1 & 1 == 1;
                let out = sim.eval_bool(&[av], &[xv]).unwrap()[0];
                assert_eq!(out, av ^ invert, "invert={invert} a={av} x={xv}");
            }
        }
    }

    #[test]
    fn no_intermediate_depends_on_both_unmasked_operands() {
        // Security property of the Eq.-5 ordering: every internal signal of
        // the masked-AND core (before re-combination) is statistically
        // independent of (a AND b) when masks are uniform. We check a
        // necessary condition: for each internal gate, its value averaged
        // over all mask assignments is the same for every (a, b) — i.e.,
        // first-order probing reveals nothing. The final `_out` gate is the
        // deliberate boundary re-combination and is excluded.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_mask_input("x");
        let y = n.add_mask_input("y");
        let z = n.add_mask_input("z");
        let e = masked_and(&mut n, "g", a, b, x, y, z);
        n.add_output("out", e.output).unwrap();
        let sim = Simulator::new(&n).unwrap();
        // Skip the two input-mask XORs (â, b̂ depend on one operand each, not
        // both) — include them anyway; the property holds for them too.
        for &g in &e.gates {
            if g == e.output {
                continue;
            }
            let mut counts = Vec::new();
            for ab in 0..4u32 {
                let mut ones = 0;
                for m in 0..8u32 {
                    let mut st = sim.zero_state();
                    let dv = [
                        if ab & 1 == 1 { !0u64 } else { 0 },
                        if ab >> 1 & 1 == 1 { !0u64 } else { 0 },
                    ];
                    let mv = [
                        if m & 1 == 1 { !0u64 } else { 0 },
                        if m >> 1 & 1 == 1 { !0u64 } else { 0 },
                        if m >> 2 & 1 == 1 { !0u64 } else { 0 },
                    ];
                    sim.eval(&mut st, &dv, &mv);
                    if st.value(g) & 1 == 1 {
                        ones += 1;
                    }
                }
                counts.push(ones);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "gate {g} leaks: mask-averaged ones per (a,b) = {counts:?}"
            );
        }
    }
}
