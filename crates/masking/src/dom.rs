//! Domain-oriented masking (DOM) composites — the paper's §V-E extension.
//!
//! DOM splits each operand into two shares living in separate "domains" and
//! inserts a register stage on the cross-domain partial products before they
//! are recombined, preventing glitches from combining shares. Following the
//! crate's local mask/re-combine convention (see the crate docs), operands
//! arrive unmasked, are shared on entry (`a = a0 ⊕ a1` with `a1 = x`), and
//! the result is re-combined on exit so the surrounding netlist is
//! functionally unchanged — after the one-cycle register latency settles.

use polaris_netlist::{GateId, GateKind, Netlist};

use crate::trichina::MaskedExpansion;

/// DOM-masked 2-input gate for `kind ∈ {And, Or, Nand, Nor}`.
///
/// The AND core is the DOM-indep multiplier: shares `a0 = a⊕x, a1 = x`,
/// `b0 = b⊕y, b1 = y`; partial products `pij = ai·bj`; the cross terms
/// `p01 ⊕ z` and `p10 ⊕ z` pass through flip-flops; output shares are
/// `c0 = p00 ⊕ reg(p01 ⊕ z)` and `c1 = p11 ⊕ reg(p10 ⊕ z)`, re-combined as
/// `c0 ⊕ c1 = a·b`. OR/NAND/NOR wrap the AND core De-Morgan style.
///
/// # Panics
///
/// Panics if `kind` is not one of the four supported gates.
#[allow(clippy::too_many_arguments)] // mask wiring is positional by design
pub fn masked_gate(
    n: &mut Netlist,
    p: &str,
    kind: GateKind,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
) -> MaskedExpansion {
    match kind {
        GateKind::And => dom_and(n, p, a, b, x, y, z, false),
        GateKind::Nand => dom_and(n, p, a, b, x, y, z, true),
        GateKind::Or => dom_or(n, p, a, b, x, y, z, false),
        GateKind::Nor => dom_or(n, p, a, b, x, y, z, true),
        other => panic!("DOM masking does not support {other}"),
    }
}

#[allow(clippy::too_many_arguments)] // mask wiring is positional by design
fn dom_and(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
    invert: bool,
) -> MaskedExpansion {
    let mut gates = Vec::with_capacity(16);
    fn add(
        n: &mut Netlist,
        gates: &mut Vec<GateId>,
        kind: GateKind,
        name: String,
        fi: &[GateId],
    ) -> GateId {
        let g = n.add_gate(kind, name, fi).expect("valid fanin");
        gates.push(g);
        g
    }
    // Share the operands: a0 ⊕ a1 = a with a1 = x (likewise b).
    let a0 = add(n, &mut gates, GateKind::Xor, format!("{p}_a0"), &[a, x]);
    let b0 = add(n, &mut gates, GateKind::Xor, format!("{p}_b0"), &[b, y]);
    // Partial products (a1 = x, b1 = y are the mask wires themselves).
    let p00 = add(n, &mut gates, GateKind::And, format!("{p}_p00"), &[a0, b0]);
    let p01 = add(n, &mut gates, GateKind::And, format!("{p}_p01"), &[a0, y]);
    let p10 = add(n, &mut gates, GateKind::And, format!("{p}_p10"), &[x, b0]);
    let p11 = add(n, &mut gates, GateKind::And, format!("{p}_p11"), &[x, y]);
    // Resharing with fresh z, registered (the DOM glitch barrier).
    let r01 = add(n, &mut gates, GateKind::Xor, format!("{p}_r01"), &[p01, z]);
    let r10 = add(n, &mut gates, GateKind::Xor, format!("{p}_r10"), &[p10, z]);
    let q01 = n.add_dff_placeholder(format!("{p}_q01"));
    n.connect_dff(q01, r01);
    gates.push(q01);
    let q10 = n.add_dff_placeholder(format!("{p}_q10"));
    n.connect_dff(q10, r10);
    gates.push(q10);
    // Output shares and boundary re-combination.
    let c0 = add(n, &mut gates, GateKind::Xor, format!("{p}_c0"), &[p00, q01]);
    let c1 = add(n, &mut gates, GateKind::Xor, format!("{p}_c1"), &[p11, q10]);
    let comb = add(n, &mut gates, GateKind::Xor, format!("{p}_cmb"), &[c0, c1]);
    let output = if invert {
        add(n, &mut gates, GateKind::Not, format!("{p}_out"), &[comb])
    } else {
        comb
    };
    MaskedExpansion { output, gates }
}

#[allow(clippy::too_many_arguments)] // mask wiring is positional by design
fn dom_or(
    n: &mut Netlist,
    p: &str,
    a: GateId,
    b: GateId,
    x: GateId,
    y: GateId,
    z: GateId,
    invert: bool,
) -> MaskedExpansion {
    // a | b = ¬(¬a · ¬b); NOR skips the outer inversion.
    let na = n
        .add_gate(GateKind::Not, format!("{p}_na"), &[a])
        .expect("valid fanin");
    let nb = n
        .add_gate(GateKind::Not, format!("{p}_nb"), &[b])
        .expect("valid fanin");
    let mut e = dom_and(n, p, na, nb, x, y, z, !invert);
    e.gates.push(na);
    e.gates.push(nb);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_sim::Simulator;

    /// DOM outputs are valid one clock after inputs stabilize; settle by
    /// eval→clock→eval.
    fn settled_output(netlist: &Netlist, data: &[bool], masks: &[bool]) -> bool {
        let sim = Simulator::new(netlist).unwrap();
        let dw: Vec<u64> = data.iter().map(|&v| if v { !0 } else { 0 }).collect();
        let mw: Vec<u64> = masks.iter().map(|&v| if v { !0 } else { 0 }).collect();
        let mut st = sim.zero_state();
        sim.eval(&mut st, &dw, &mw);
        sim.clock(&mut st);
        sim.eval(&mut st, &dw, &mw);
        st.value(netlist.outputs()[0].1) & 1 == 1
    }

    fn check(kind: GateKind, truth: impl Fn(bool, bool) -> bool) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_mask_input("x");
        let y = n.add_mask_input("y");
        let z = n.add_mask_input("z");
        let e = masked_gate(&mut n, "g", kind, a, b, x, y, z);
        n.add_output("out", e.output).unwrap();
        n.validate().unwrap();
        for bits in 0..32u32 {
            let v = |i: u32| bits >> i & 1 == 1;
            let out = settled_output(&n, &[v(0), v(1)], &[v(2), v(3), v(4)]);
            assert_eq!(out, truth(v(0), v(1)), "{kind}: bits {bits:05b}");
        }
    }

    #[test]
    fn dom_and_functionally_equal() {
        check(GateKind::And, |a, b| a && b);
    }

    #[test]
    fn dom_nand_functionally_equal() {
        check(GateKind::Nand, |a, b| !(a && b));
    }

    #[test]
    fn dom_or_functionally_equal() {
        check(GateKind::Or, |a, b| a || b);
    }

    #[test]
    fn dom_nor_functionally_equal() {
        check(GateKind::Nor, |a, b| !(a || b));
    }

    #[test]
    fn dom_adds_two_registers() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_mask_input("x");
        let y = n.add_mask_input("y");
        let z = n.add_mask_input("z");
        let e = masked_gate(&mut n, "g", GateKind::And, a, b, x, y, z);
        n.add_output("out", e.output).unwrap();
        assert_eq!(n.stats().flops, 2);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn dom_rejects_xor() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_mask_input("x");
        let y = n.add_mask_input("y");
        let z = n.add_mask_input("z");
        let _ = masked_gate(&mut n, "g", GateKind::Xor, a, b, x, y, z);
    }
}
