//! The gate-replacement masking transform (`modify(Sgates, D)` of the
//! paper's Algorithms 1 and 2).

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use polaris_netlist::{GateId, GateKind, Netlist, NetlistError};

use crate::dom;
use crate::trichina;

/// Which masked-gate family to instantiate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MaskingStyle {
    /// Trichina composite gates (paper Eq. 5 / Fig. 1) — the default.
    #[default]
    Trichina,
    /// Domain-oriented masking with a register stage on cross-domain terms
    /// (paper §V-E extension). Produces a sequential design; allow at least
    /// two clock cycles for the composite outputs to settle.
    Dom,
    /// Second-order ISW masking (3 shares, 7 fresh mask bits per gate) —
    /// the paper's d-th-order background (§II-B) at `d = 2`. Its
    /// share-domain core defeats univariate *and* bivariate TVLA at ~2.3×
    /// the Trichina cell cost.
    IswOrder2,
}

/// Error raised by [`apply_masking`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaskingError {
    /// The target gate kind cannot be masked (inputs, constants, flops, or
    /// un-normalized gates — run
    /// [`decompose`][polaris_netlist::transform::decompose] first).
    UnsupportedGate {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// Its fanin count.
        fanin: usize,
    },
    /// A target id is out of range.
    UnknownGate {
        /// The offending id.
        gate: GateId,
    },
    /// Underlying netlist construction failed.
    Netlist(NetlistError),
}

impl fmt::Display for MaskingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskingError::UnsupportedGate { gate, kind, fanin } => write!(
                f,
                "gate {gate} ({kind}, {fanin} inputs) cannot be masked; normalize the netlist first"
            ),
            MaskingError::UnknownGate { gate } => write!(f, "unknown target gate {gate}"),
            MaskingError::Netlist(e) => write!(f, "netlist error during masking: {e}"),
        }
    }
}

impl Error for MaskingError {}

impl From<NetlistError> for MaskingError {
    fn from(e: NetlistError) -> Self {
        MaskingError::Netlist(e)
    }
}

/// Result of [`apply_masking`]: the rewritten netlist plus the bookkeeping
/// needed to attribute per-gate leakage and overhead back to the original
/// design.
#[derive(Clone, Debug)]
pub struct MaskedDesign {
    /// The masked netlist (functionally equivalent to the original).
    pub netlist: Netlist,
    /// For every gate of the masked netlist: the original gate it was
    /// materialized for (`None` for the added mask inputs).
    pub origin: Vec<Option<GateId>>,
    /// The original gate ids that were replaced by masked composites.
    pub masked_gates: Vec<GateId>,
    /// Number of fresh mask-randomness input bits added.
    pub added_mask_bits: usize,
}

impl MaskedDesign {
    /// Grouping vector for grouped leakage assessment: entry `g` holds the
    /// group index of masked-netlist gate `g`, where groups are numbered by
    /// original gate id (`original.gate_count()` groups). Added mask inputs
    /// get their own trailing group.
    pub fn group_of(&self, original_gate_count: usize) -> Vec<usize> {
        self.origin
            .iter()
            .map(|o| o.map_or(original_gate_count, |id| id.index()))
            .collect()
    }

    /// New gates materialized for one original gate.
    pub fn gates_for(&self, original: GateId) -> Vec<GateId> {
        self.origin
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(original))
            .map(|(i, _)| GateId::new(i))
            .collect()
    }
}

/// Replaces each gate in `targets` with its masked composite.
///
/// The input netlist must be *normalized*: every combinational cell has one
/// or two inputs and there are no muxes (run
/// [`decompose`][polaris_netlist::transform::decompose] first). Non-cell
/// targets (inputs, constants, flip-flops) are rejected.
///
/// Every masked 2-input gate consumes three fresh mask bits (`x`, `y`, `z`);
/// unary gates consume one. Mask bits are new
/// [`mask inputs`][Netlist::add_mask_input] that trace campaigns
/// re-randomize per trace.
///
/// # Errors
///
/// Returns [`MaskingError::UnsupportedGate`] / [`MaskingError::UnknownGate`]
/// on invalid targets, or a wrapped [`NetlistError`] if reconstruction fails.
pub fn apply_masking(
    netlist: &Netlist,
    targets: &[GateId],
    style: MaskingStyle,
) -> Result<MaskedDesign, MaskingError> {
    let target_set: HashSet<GateId> = targets.iter().copied().collect();
    for &t in targets {
        if t.index() >= netlist.gate_count() {
            return Err(MaskingError::UnknownGate { gate: t });
        }
        let g = netlist.gate(t);
        let supported =
            g.kind().is_combinational_cell() && g.fanin().len() <= 2 && g.kind() != GateKind::Mux;
        if !supported {
            return Err(MaskingError::UnsupportedGate {
                gate: t,
                kind: g.kind(),
                fanin: g.fanin().len(),
            });
        }
    }

    let mut out = Netlist::new(format!("{}_masked", netlist.name()));
    let mut origin: Vec<Option<GateId>> = Vec::new();
    let mut new_id: HashMap<GateId, GateId> = HashMap::with_capacity(netlist.gate_count());
    let data_inputs: HashSet<GateId> = netlist.data_inputs().iter().copied().collect();
    let mut added_mask_bits = 0usize;

    // Record `origin` lazily: after each append to `out`, fill entries.
    let sync_origin = |origin: &mut Vec<Option<GateId>>, out: &Netlist, o: Option<GateId>| {
        while origin.len() < out.gate_count() {
            origin.push(o);
        }
    };

    // Pre-register flip-flops so feedback resolves.
    for (old, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            let id = out.add_dff_placeholder(gate.name().to_string());
            new_id.insert(old, id);
            sync_origin(&mut origin, &out, Some(old));
        }
    }

    for old in netlist.topo_order()? {
        let gate = netlist.gate(old);
        match gate.kind() {
            GateKind::Dff => continue,
            GateKind::Input => {
                let id = if data_inputs.contains(&old) {
                    out.add_input(gate.name().to_string())
                } else {
                    out.add_mask_input(gate.name().to_string())
                };
                new_id.insert(old, id);
                sync_origin(&mut origin, &out, Some(old));
            }
            _ if !target_set.contains(&old) => {
                let fanin: Vec<GateId> = gate.fanin().iter().map(|f| new_id[f]).collect();
                let id = out.add_gate(gate.kind(), gate.name().to_string(), &fanin)?;
                new_id.insert(old, id);
                sync_origin(&mut origin, &out, Some(old));
            }
            _ => {
                // Masked replacement. Fresh mask inputs first (origin: None —
                // they are ports, not logic attributable to the gate).
                let p = format!("mg{}", old.index());
                let fanin: Vec<GateId> = gate.fanin().iter().map(|f| new_id[f]).collect();
                let expansion = if gate.fanin().len() == 1 {
                    let x = out.add_mask_input(format!("{p}_x"));
                    added_mask_bits += 1;
                    sync_origin(&mut origin, &out, None);
                    trichina::masked_unary(&mut out, &p, gate.kind() == GateKind::Not, fanin[0], x)
                } else if style == MaskingStyle::IswOrder2
                    && matches!(
                        gate.kind(),
                        GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor
                    )
                {
                    let masks = crate::isw::IswMasks::allocate(&mut out, &p);
                    added_mask_bits += crate::isw::IswMasks::BITS;
                    sync_origin(&mut origin, &out, None);
                    let (a, b) = (fanin[0], fanin[1]);
                    let mut e = match gate.kind() {
                        GateKind::And => crate::isw::masked_and_order2(&mut out, &p, a, b, masks),
                        GateKind::Or => crate::isw::masked_or_order2(&mut out, &p, a, b, masks),
                        GateKind::Nand => {
                            let mut e = crate::isw::masked_and_order2(&mut out, &p, a, b, masks);
                            let inv =
                                out.add_gate(GateKind::Not, format!("{p}_inv"), &[e.output])?;
                            e.gates.push(inv);
                            e.output = inv;
                            e
                        }
                        GateKind::Nor => {
                            let mut e = crate::isw::masked_or_order2(&mut out, &p, a, b, masks);
                            let inv =
                                out.add_gate(GateKind::Not, format!("{p}_inv"), &[e.output])?;
                            e.gates.push(inv);
                            e.output = inv;
                            e
                        }
                        _ => unreachable!("guarded by the matches! above"),
                    };
                    e.gates.dedup();
                    e
                } else {
                    let x = out.add_mask_input(format!("{p}_x"));
                    let y = out.add_mask_input(format!("{p}_y"));
                    let z = out.add_mask_input(format!("{p}_z"));
                    added_mask_bits += 3;
                    sync_origin(&mut origin, &out, None);
                    let (a, b) = (fanin[0], fanin[1]);
                    match (style, gate.kind()) {
                        (MaskingStyle::Trichina | MaskingStyle::IswOrder2, GateKind::And) => {
                            trichina::masked_and(&mut out, &p, a, b, x, y, z)
                        }
                        (MaskingStyle::Trichina | MaskingStyle::IswOrder2, GateKind::Or) => {
                            trichina::masked_or(&mut out, &p, a, b, x, y, z)
                        }
                        (MaskingStyle::Trichina | MaskingStyle::IswOrder2, GateKind::Nand) => {
                            trichina::masked_nand(&mut out, &p, a, b, x, y, z)
                        }
                        (MaskingStyle::Trichina | MaskingStyle::IswOrder2, GateKind::Nor) => {
                            trichina::masked_nor(&mut out, &p, a, b, x, y, z)
                        }
                        (_, GateKind::Xor) => trichina::masked_xor(&mut out, &p, a, b, x, y, z),
                        (_, GateKind::Xnor) => trichina::masked_xnor(&mut out, &p, a, b, x, y, z),
                        (MaskingStyle::Dom, kind) => {
                            dom::masked_gate(&mut out, &p, kind, a, b, x, y, z)
                        }
                        (MaskingStyle::Trichina | MaskingStyle::IswOrder2, kind) => {
                            unreachable!("unsupported kind {kind} slipped validation")
                        }
                    }
                };
                sync_origin(&mut origin, &out, Some(old));
                new_id.insert(old, expansion.output);
            }
        }
    }
    // Connect flip-flop data inputs.
    for (old, gate) in netlist.iter() {
        if gate.kind() == GateKind::Dff {
            out.connect_dff(new_id[&old], new_id[&gate.fanin()[0]]);
        }
    }
    for (port, driver) in netlist.outputs() {
        out.add_output(port.clone(), new_id[driver])?;
    }
    out.validate()?;
    debug_assert_eq!(origin.len(), out.gate_count());

    let mut masked_gates: Vec<GateId> = target_set.into_iter().collect();
    masked_gates.sort_unstable();
    Ok(MaskedDesign {
        netlist: out,
        origin,
        masked_gates,
        added_mask_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;
    use polaris_netlist::transform::decompose;
    use polaris_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_equivalent(
        original: &Netlist,
        masked: &MaskedDesign,
        settle_cycles: usize,
        seed: u64,
    ) {
        let sim_o = Simulator::new(original).unwrap();
        let sim_m = Simulator::new(&masked.netlist).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let data: Vec<bool> = (0..original.data_inputs().len())
                .map(|_| rng.gen())
                .collect();
            let masks: Vec<bool> = (0..masked.netlist.mask_inputs().len())
                .map(|_| rng.gen())
                .collect();
            let out_o = sim_o.eval_bool(&data, &[]).unwrap();
            let out_m = if settle_cycles <= 1 {
                sim_m.eval_bool(&data, &masks).unwrap()
            } else {
                // Sequential composites (DOM): clock until settled.
                let dw: Vec<u64> = data.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let mw: Vec<u64> = masks.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let mut st = sim_m.zero_state();
                for _ in 0..settle_cycles {
                    sim_m.eval(&mut st, &dw, &mw);
                    sim_m.clock(&mut st);
                }
                sim_m.eval(&mut st, &dw, &mw);
                masked
                    .netlist
                    .outputs()
                    .iter()
                    .map(|(_, d)| st.value(*d) & 1 == 1)
                    .collect()
            };
            assert_eq!(out_o, out_m, "masking changed the function");
        }
    }

    #[test]
    fn masking_all_cells_preserves_function_trichina() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let masked = apply_masking(&d, &d.cell_ids(), MaskingStyle::Trichina).unwrap();
        assert_equivalent(&d, &masked, 1, 11);
    }

    #[test]
    fn masking_subset_preserves_function() {
        let (d, _) = decompose(&generators::des3(1, 5)).unwrap();
        let cells = d.cell_ids();
        let subset: Vec<GateId> = cells.iter().step_by(7).copied().collect();
        let masked = apply_masking(&d, &subset, MaskingStyle::Trichina).unwrap();
        assert_equivalent(&d, &masked, 1, 13);
        assert_eq!(masked.masked_gates.len(), subset.len());
    }

    #[test]
    fn mask_bits_accounted() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let cells = d.cell_ids();
        let masked = apply_masking(&d, &cells, MaskingStyle::Trichina).unwrap();
        // c17 is all 2-input nands: 3 mask bits each.
        assert_eq!(masked.added_mask_bits, 3 * cells.len());
        assert_eq!(masked.netlist.mask_inputs().len(), masked.added_mask_bits);
    }

    #[test]
    fn origin_covers_every_gate() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let cells = d.cell_ids();
        let masked = apply_masking(&d, &cells, MaskingStyle::Trichina).unwrap();
        assert_eq!(masked.origin.len(), masked.netlist.gate_count());
        // Every original cell owns a nonempty group.
        for &c in &cells {
            assert!(!masked.gates_for(c).is_empty());
        }
        // Mask inputs have no origin.
        let none_count = masked.origin.iter().filter(|o| o.is_none()).count();
        assert_eq!(none_count, masked.added_mask_bits);
    }

    #[test]
    fn group_of_layout() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let cells = d.cell_ids();
        let masked = apply_masking(&d, &cells[..2], MaskingStyle::Trichina).unwrap();
        let groups = masked.group_of(d.gate_count());
        assert_eq!(groups.len(), masked.netlist.gate_count());
        assert!(groups.iter().all(|&g| g <= d.gate_count()));
    }

    #[test]
    fn rejects_input_target() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let input = d.data_inputs()[0];
        let err = apply_masking(&d, &[input], MaskingStyle::Trichina).unwrap_err();
        assert!(matches!(err, MaskingError::UnsupportedGate { .. }));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let err = apply_masking(&d, &[GateId::new(10_000)], MaskingStyle::Trichina).unwrap_err();
        assert!(matches!(err, MaskingError::UnknownGate { .. }));
    }

    #[test]
    fn rejects_wide_gate() {
        let mut n = Netlist::new("w");
        let ins: Vec<GateId> = (0..3).map(|i| n.add_input(format!("i{i}"))).collect();
        let g = n.add_gate(GateKind::And, "g", &ins).unwrap();
        n.add_output("y", g).unwrap();
        let err = apply_masking(&n, &[g], MaskingStyle::Trichina).unwrap_err();
        assert!(matches!(err, MaskingError::UnsupportedGate { .. }));
    }

    #[test]
    fn dom_style_preserves_function_after_settling() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let cells = d.cell_ids();
        let masked = apply_masking(&d, &cells, MaskingStyle::Dom).unwrap();
        assert!(masked.netlist.stats().flops > 0, "DOM adds registers");
        // Each DOM composite adds one register latency; chained composites
        // need one settle cycle per logic level (c17 is 3 levels deep).
        assert_equivalent(&d, &masked, 8, 17);
    }

    #[test]
    fn masking_sequential_design_preserves_flops() {
        let (d, _) = decompose(&generators::memctrl(1, 3)).unwrap();
        let cells = d.cell_ids();
        let subset: Vec<GateId> = cells.iter().step_by(5).copied().collect();
        let masked = apply_masking(&d, &subset, MaskingStyle::Trichina).unwrap();
        assert_eq!(masked.netlist.stats().flops, d.stats().flops);
        masked.netlist.validate().unwrap();
    }

    #[test]
    fn isw_style_preserves_function() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let cells = d.cell_ids();
        let masked = apply_masking(&d, &cells, MaskingStyle::IswOrder2).unwrap();
        // c17 is all nands: 7 mask bits each.
        assert_eq!(masked.added_mask_bits, 7 * cells.len());
        assert_equivalent(&d, &masked, 1, 29);
    }

    #[test]
    fn isw_style_on_mixed_gates() {
        let (d, _) = decompose(&generators::des3(1, 5)).unwrap();
        let cells = d.cell_ids();
        let subset: Vec<GateId> = cells.iter().step_by(9).copied().collect();
        let masked = apply_masking(&d, &subset, MaskingStyle::IswOrder2).unwrap();
        masked.netlist.validate().unwrap();
        assert_equivalent(&d, &masked, 1, 31);
    }

    #[test]
    fn empty_target_list_is_a_copy() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let masked = apply_masking(&d, &[], MaskingStyle::Trichina).unwrap();
        assert_eq!(masked.netlist.gate_count(), d.gate_count());
        assert_eq!(masked.added_mask_bits, 0);
        assert_equivalent(&d, &masked, 1, 23);
    }
}
