//! Exact interventional TreeSHAP.
//!
//! For one background sample `b` the coalition game is
//! `val(S) = tree(x with features outside S replaced by b)`. For a decision
//! tree this game decomposes over leaves: a leaf `l` is reached by coalition
//! `S` iff every path feature that only `x` satisfies is *in* `S` (set
//! `X_l`, size `a`) and every path feature that only `b` satisfies is *out*
//! (set `B_l`, size `c`); features satisfying both are irrelevant, and a
//! feature satisfying neither makes the leaf unreachable. Free features are
//! Shapley-dummies, so the per-leaf contribution has the closed form
//!
//! ```text
//! f ∈ X_l:  φ_f += v_l · (a−1)! c! / (a+c)!
//! f ∈ B_l:  φ_f −= v_l · a! (c−1)! / (a+c)!
//! ```
//!
//! This runs in `O(leaves × depth)` per background sample and matches the
//! brute-force oracle of [`crate::exact`] bit-for-bit (see tests). Ensemble
//! values are the weighted sums over trees, in margin space, averaged over
//! the background set.

use polaris_ml::{Tree, TreeEnsemble, TreeNode};

/// SHAP explanation of one prediction, in the ensemble's margin space.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapExplanation {
    /// Expected margin over the background set (`E[f(x)]` in Fig. 3).
    pub base_value: f64,
    /// Per-feature Shapley contributions φ.
    pub values: Vec<f64>,
    /// The explained sample's margin (`f(x)` in Fig. 3).
    pub fx: f64,
}

impl ShapExplanation {
    /// Efficiency-axiom residual `(base + Σφ) − f(x)`; ~0 for exact methods.
    pub fn efficiency_gap(&self) -> f64 {
        self.base_value + self.values.iter().sum::<f64>() - self.fx
    }
}

/// Computes exact interventional SHAP values of `model` at `x` against a
/// background dataset, in margin space.
///
/// # Panics
///
/// Panics if `background` is empty or any row width differs from `x`.
pub fn tree_shap<M: TreeEnsemble>(
    model: &M,
    background: &[Vec<f32>],
    x: &[f32],
) -> ShapExplanation {
    assert!(!background.is_empty(), "background must be nonempty");
    assert!(
        background.iter().all(|b| b.len() == x.len()),
        "background width mismatch"
    );
    let trees = model.weighted_trees();
    let mut values = vec![0.0f64; x.len()];
    let mut base = model.base_margin();

    // Factorials up to the deepest path (paths cannot exceed tree depth).
    let max_depth = trees.iter().map(|(_, t)| t.depth()).max().unwrap_or(0) + 1;
    let mut fact = vec![1.0f64; max_depth + 2];
    for i in 1..fact.len() {
        fact[i] = fact[i - 1] * i as f64;
    }

    let inv_bg = 1.0 / background.len() as f64;
    for b in background {
        for (w, tree) in &trees {
            single_reference_shap(tree, x, b, *w * inv_bg, &fact, &mut values);
        }
        base += inv_bg * trees.iter().map(|(w, t)| w * t.predict(b)).sum::<f64>();
    }
    ShapExplanation {
        base_value: base,
        values,
        fx: model.margin(x),
    }
}

/// Per-feature path consistency while descending to a leaf.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Consistency {
    Unseen,
    Both,
    XOnly,
    BOnly,
    Neither,
}

/// Adds `scale ×` the single-background-sample SHAP values of one tree.
fn single_reference_shap(
    tree: &Tree,
    x: &[f32],
    b: &[f32],
    scale: f64,
    fact: &[f64],
    out: &mut [f64],
) {
    // Depth-first traversal carrying per-feature consistency state.
    let mut state = vec![Consistency::Unseen; x.len()];
    let mut path_features: Vec<usize> = Vec::new();
    descend(
        tree,
        0,
        x,
        b,
        scale,
        fact,
        &mut state,
        &mut path_features,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn descend(
    tree: &Tree,
    node: usize,
    x: &[f32],
    b: &[f32],
    scale: f64,
    fact: &[f64],
    state: &mut Vec<Consistency>,
    path_features: &mut Vec<usize>,
    out: &mut [f64],
) {
    match &tree.nodes()[node] {
        TreeNode::Leaf { value, .. } => {
            // Gather X_l and B_l from the path state.
            let mut a = 0usize; // |X_l|
            let mut c = 0usize; // |B_l|
            for &f in path_features.iter() {
                match state[f] {
                    Consistency::XOnly => a += 1,
                    Consistency::BOnly => c += 1,
                    Consistency::Neither => return, // unreachable leaf
                    _ => {}
                }
            }
            if a == 0 && c == 0 {
                return; // both reach: no feature gets credit for this leaf
            }
            let v = value * scale;
            let denom = fact[a + c];
            for &f in path_features.iter() {
                match state[f] {
                    Consistency::XOnly => out[f] += v * fact[a - 1] * fact[c] / denom,
                    Consistency::BOnly => out[f] -= v * fact[a] * fact[c - 1] / denom,
                    _ => {}
                }
            }
        }
        TreeNode::Internal {
            feature,
            threshold,
            left,
            right,
            ..
        } => {
            let f = *feature;
            let x_goes_left = x[f] <= *threshold;
            let b_goes_left = b[f] <= *threshold;
            for (child, branch_left) in [(*left, true), (*right, false)] {
                let x_ok = x_goes_left == branch_left;
                let b_ok = b_goes_left == branch_left;
                // Early prune: if neither sample can take this branch given
                // prior path constraints, the subtree is unreachable for
                // every coalition.
                let prev = state[f];
                let combined = combine(prev, x_ok, b_ok);
                if combined == Consistency::Neither {
                    continue;
                }
                let pushed = prev == Consistency::Unseen;
                if pushed {
                    path_features.push(f);
                }
                state[f] = combined;
                descend(tree, child, x, b, scale, fact, state, path_features, out);
                state[f] = prev;
                if pushed {
                    path_features.pop();
                }
            }
        }
    }
}

/// Merges a new `(x_ok, b_ok)` decision into a feature's path consistency.
fn combine(prev: Consistency, x_ok: bool, b_ok: bool) -> Consistency {
    let cur = match (x_ok, b_ok) {
        (true, true) => Consistency::Both,
        (true, false) => Consistency::XOnly,
        (false, true) => Consistency::BOnly,
        (false, false) => Consistency::Neither,
    };
    match prev {
        Consistency::Unseen | Consistency::Both => cur,
        Consistency::Neither => Consistency::Neither,
        Consistency::XOnly => match cur {
            Consistency::Both | Consistency::XOnly => Consistency::XOnly,
            _ => Consistency::Neither,
        },
        Consistency::BOnly => match cur {
            Consistency::Both | Consistency::BOnly => Consistency::BOnly,
            _ => Consistency::Neither,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use polaris_ml::adaboost::{AdaBoost, AdaBoostConfig};
    use polaris_ml::forest::{ForestConfig, RandomForest};
    use polaris_ml::gbdt::{GbdtConfig, GradientBoost};
    use polaris_ml::{Classifier, Dataset};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let names = (0..m).map(|i| format!("f{i}")).collect();
        let mut d = Dataset::new(names);
        for _ in 0..n {
            let row: Vec<f32> = (0..m).map(|_| rng.gen_range(0..2) as f32).collect();
            // Nontrivial label: f0 XOR f1 OR (f2 AND f3-ish).
            let y = (row[0] != row[1]) || (m > 3 && row[2] == 1.0 && row[3] == 1.0);
            d.push(&row, y as u8).unwrap();
        }
        d
    }

    fn rows(d: &Dataset) -> Vec<Vec<f32>> {
        (0..d.len()).map(|i| d.row(i).to_vec()).collect()
    }

    fn margin_fn<'a, M: TreeEnsemble>(model: &'a M) -> impl Fn(&[f32]) -> f64 + 'a {
        move |x: &[f32]| model.margin(x)
    }

    #[test]
    fn matches_bruteforce_adaboost() {
        let d = random_dataset(80, 5, 3);
        let model = AdaBoost::fit(
            &d,
            &AdaBoostConfig {
                n_estimators: 12,
                max_depth: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let bg: Vec<Vec<f32>> = rows(&d).into_iter().take(10).collect();
        let f = margin_fn(&model);
        for i in 0..6 {
            let x = d.row(i);
            let fast = tree_shap(&model, &bg, x);
            let slow = exact_shapley(&f, x, &bg);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "fast {a} vs exact {b}");
            }
            assert!(fast.efficiency_gap().abs() < 1e-9);
        }
    }

    #[test]
    fn matches_bruteforce_gbdt() {
        let d = random_dataset(60, 4, 7);
        let model = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 10,
                max_depth: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let bg: Vec<Vec<f32>> = rows(&d).into_iter().take(8).collect();
        let f = margin_fn(&model);
        for i in 0..5 {
            let x = d.row(i);
            let fast = tree_shap(&model, &bg, x);
            let slow = exact_shapley(&f, x, &bg);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "fast {a} vs exact {b}");
            }
        }
    }

    #[test]
    fn matches_bruteforce_forest() {
        let d = random_dataset(60, 4, 11);
        let model = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 8,
                max_depth: 4,
                ..Default::default()
            },
        );
        let bg: Vec<Vec<f32>> = rows(&d).into_iter().take(6).collect();
        let f = margin_fn(&model);
        for i in 0..5 {
            let x = d.row(i);
            let fast = tree_shap(&model, &bg, x);
            let slow = exact_shapley(&f, x, &bg);
            for (a, b) in fast.values.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "fast {a} vs exact {b}");
            }
        }
    }

    #[test]
    fn efficiency_axiom_always_holds() {
        let d = random_dataset(120, 8, 5);
        let model = AdaBoost::fit(&d, &Default::default()).unwrap();
        let bg = rows(&d);
        for i in (0..d.len()).step_by(17) {
            let e = tree_shap(&model, &bg, d.row(i));
            assert!(
                e.efficiency_gap().abs() < 1e-8,
                "gap {}",
                e.efficiency_gap()
            );
        }
    }

    #[test]
    fn base_value_is_mean_background_margin() {
        let d = random_dataset(50, 4, 9);
        let model = AdaBoost::fit(&d, &Default::default()).unwrap();
        let bg = rows(&d);
        let e = tree_shap(&model, &bg, d.row(0));
        let mean: f64 = bg.iter().map(|b| model.margin(b)).sum::<f64>() / bg.len() as f64;
        assert!((e.base_value - mean).abs() < 1e-9);
    }

    #[test]
    fn dummy_feature_gets_zero_shap() {
        // Train on data where feature 2 is constant: no split can use it.
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "dead".into()]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = rng.gen_range(0..2) as f32;
            let b = rng.gen_range(0..2) as f32;
            d.push(&[a, b, 0.5], (a != b) as u8).unwrap();
        }
        let model = AdaBoost::fit(&d, &Default::default()).unwrap();
        let bg = rows(&d);
        let e = tree_shap(&model, &bg, &[1.0, 0.0, 0.5]);
        assert!(e.values[2].abs() < 1e-12);
        assert!(model.predict(&[1.0, 0.0, 0.5]) == 1);
    }
}
