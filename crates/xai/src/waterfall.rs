//! Text waterfall plots (paper Fig. 3): how each feature's SHAP value moves
//! the prediction from the expected value `E[f(x)]` to the model output
//! `f(x)`.

use crate::tree_shap::ShapExplanation;

/// A rendered-ready waterfall: contributions sorted by magnitude.
#[derive(Clone, Debug)]
pub struct Waterfall {
    /// Expected model output `E[f(x)]`.
    pub base_value: f64,
    /// Model output `f(x)` for the explained sample.
    pub fx: f64,
    /// `(feature name, φ, feature value)` sorted by descending `|φ|`.
    pub contributions: Vec<(String, f64, f32)>,
}

impl Waterfall {
    /// Builds a waterfall from an explanation, feature names and the
    /// explained sample's feature values.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn new(explanation: &ShapExplanation, names: &[String], x: &[f32]) -> Self {
        assert_eq!(explanation.values.len(), names.len(), "name count mismatch");
        assert_eq!(x.len(), names.len(), "value count mismatch");
        let mut contributions: Vec<(String, f64, f32)> = names
            .iter()
            .zip(&explanation.values)
            .zip(x)
            .map(|((n, &phi), &v)| (n.clone(), phi, v))
            .collect();
        contributions.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Waterfall {
            base_value: explanation.base_value,
            fx: explanation.fx,
            contributions,
        }
    }

    /// Renders an ASCII waterfall with up to `max_rows` features; the rest
    /// are folded into an "other features" row. Bars are scaled to
    /// `bar_width` characters.
    pub fn render(&self, max_rows: usize, bar_width: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "f(x) = {:+.4}", self.fx);
        let shown = self.contributions.iter().take(max_rows);
        let rest: f64 = self
            .contributions
            .iter()
            .skip(max_rows)
            .map(|(_, phi, _)| phi)
            .sum();
        let max_abs = self
            .contributions
            .iter()
            .map(|(_, phi, _)| phi.abs())
            .fold(rest.abs(), f64::max)
            .max(1e-12);
        let bar = |phi: f64| -> String {
            let len = ((phi.abs() / max_abs) * bar_width as f64).round() as usize;
            let ch = if phi >= 0.0 { '█' } else { '░' };
            std::iter::repeat_n(ch, len.max(1)).collect()
        };
        for (name, phi, value) in shown {
            let _ = writeln!(
                s,
                "  {phi:+8.4}  {bar:<width$}  {name} = {value}",
                bar = bar(*phi),
                width = bar_width,
            );
        }
        if self.contributions.len() > max_rows {
            let n = self.contributions.len() - max_rows;
            let _ = writeln!(
                s,
                "  {rest:+8.4}  {bar:<width$}  ({n} other features)",
                bar = bar(rest),
                width = bar_width,
            );
        }
        let _ = writeln!(s, "E[f(x)] = {:+.4}", self.base_value);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explanation() -> (ShapExplanation, Vec<String>, Vec<f32>) {
        (
            ShapExplanation {
                base_value: 0.1,
                values: vec![0.5, -0.3, 0.05],
                fx: 0.35,
            },
            vec!["g4_nand".into(), "g5_and".into(), "conn_8_9".into()],
            vec![1.0, 0.0, 1.0],
        )
    }

    #[test]
    fn contributions_sorted_by_magnitude() {
        let (e, names, x) = explanation();
        let w = Waterfall::new(&e, &names, &x);
        assert_eq!(w.contributions[0].0, "g4_nand");
        assert_eq!(w.contributions[1].0, "g5_and");
        assert_eq!(w.contributions[2].0, "conn_8_9");
    }

    #[test]
    fn render_contains_endpoints_and_features() {
        let (e, names, x) = explanation();
        let w = Waterfall::new(&e, &names, &x);
        let out = w.render(10, 20);
        assert!(out.contains("f(x) = +0.3500"));
        assert!(out.contains("E[f(x)] = +0.1000"));
        assert!(out.contains("g4_nand"));
        assert!(out.contains("+0.5000"));
    }

    #[test]
    fn overflow_folds_into_other_row() {
        let (e, names, x) = explanation();
        let w = Waterfall::new(&e, &names, &x);
        let out = w.render(1, 10);
        assert!(out.contains("(2 other features)"));
        // Folded value = −0.3 + 0.05 = −0.25.
        assert!(out.contains("-0.2500"));
    }

    #[test]
    fn negative_bars_use_light_shade() {
        let (e, names, x) = explanation();
        let w = Waterfall::new(&e, &names, &x);
        let out = w.render(10, 10);
        assert!(out.contains('░'), "negative φ rendered with ░");
        assert!(out.contains('█'), "positive φ rendered with █");
    }
}
