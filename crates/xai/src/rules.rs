//! SHAP-guided rule mining (paper Table V).
//!
//! POLARIS distills its trained model into human-readable conjunction rules:
//! for confidently-classified samples, the top-|φ| features *supporting* the
//! prediction form a candidate condition set; condition sets recurring
//! across many samples become rules ("as long as G4 = NAND && G5 = AND … →
//! Select & Replace with masking gate"). Rules can then drive masking
//! decisions on their own or refine model scores (paper §IV-B).

use std::collections::HashMap;

use crate::tree_shap::ShapExplanation;

/// What a matched rule recommends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaskAction {
    /// Select the gate and replace it with a masking composite.
    Mask,
    /// Leave the gate unmasked.
    DontMask,
}

impl std::fmt::Display for MaskAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskAction::Mask => write!(f, "Select & Replace with masking gate"),
            MaskAction::DontMask => write!(f, "Do not Mask"),
        }
    }
}

/// One conjunct of a rule: a binary feature required to be set / unset.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleCondition {
    /// Feature column index.
    pub feature: usize,
    /// Feature name (as produced by the feature extractor).
    pub name: String,
    /// Required truth value (features are thresholded at 0.5).
    pub expected: bool,
}

impl RuleCondition {
    /// True if the sample satisfies this conjunct.
    pub fn matches(&self, x: &[f32]) -> bool {
        (x[self.feature] >= 0.5) == self.expected
    }
}

/// A mined conjunction rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The conjuncts, in descending mean-|φ| order.
    pub conditions: Vec<RuleCondition>,
    /// Recommended action when all conditions hold.
    pub action: MaskAction,
    /// Number of mining samples matching the condition set.
    pub support: usize,
    /// Fraction of matching samples whose model prediction agrees with
    /// `action`.
    pub confidence: f64,
    /// Mean total |φ| of the conditions across supporting samples.
    pub strength: f64,
}

impl Rule {
    /// True if every condition holds for the sample.
    pub fn matches(&self, x: &[f32]) -> bool {
        self.conditions.iter().all(|c| c.matches(x))
    }

    /// Renders the rule in the paper's Table-V style.
    pub fn render(&self) -> String {
        let conds: Vec<String> = self
            .conditions
            .iter()
            .map(|c| {
                if c.expected {
                    c.name.clone()
                } else {
                    format!("NOT({})", c.name)
                }
            })
            .collect();
        format!(
            "As long as {} => {} [support={}, confidence={:.2}]",
            conds.join(" && "),
            self.action,
            self.support,
            self.confidence
        )
    }
}

/// A mined rule list usable as a standalone decision procedure or a score
/// refiner.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Builds a rule set from pre-constructed rules (persistence path);
    /// callers are responsible for ordering (strongest first).
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// The rules, strongest first.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules were mined.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// First matching rule's action, if any (rules are ordered strongest
    /// first).
    pub fn decide(&self, x: &[f32]) -> Option<MaskAction> {
        self.rules.iter().find(|r| r.matches(x)).map(|r| r.action)
    }

    /// Score adjustment for model/rule hybrid inference (paper §IV-C): a
    /// matching Mask rule boosts the model score, a DontMask rule lowers it,
    /// each scaled by rule confidence.
    pub fn score_adjustment(&self, x: &[f32], boost: f64) -> f64 {
        match self.rules.iter().find(|r| r.matches(x)) {
            Some(r) => match r.action {
                MaskAction::Mask => boost * r.confidence,
                MaskAction::DontMask => -boost * r.confidence,
            },
            None => 0.0,
        }
    }
}

/// Rule-mining parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleMiner {
    /// Conjuncts per candidate rule.
    pub conditions_per_rule: usize,
    /// Only samples with model probability ≥ this (or ≤ 1−this for
    /// DontMask rules) are mined.
    pub min_probability: f64,
    /// Minimum supporting samples for a rule to be kept.
    pub min_support: usize,
    /// Maximum rules kept per action.
    pub max_rules: usize,
}

impl Default for RuleMiner {
    fn default() -> Self {
        RuleMiner {
            conditions_per_rule: 3,
            min_probability: 0.7,
            min_support: 3,
            max_rules: 5,
        }
    }
}

impl RuleMiner {
    /// Mines rules from explained samples.
    ///
    /// `samples` pairs each feature vector with its SHAP explanation and the
    /// model's positive-class probability.
    ///
    /// # Panics
    ///
    /// Panics if `feature_names` length disagrees with the explanations.
    pub fn mine(
        &self,
        samples: &[(Vec<f32>, ShapExplanation, f64)],
        feature_names: &[String],
    ) -> RuleSet {
        // condition-set key → (support, agreeing predictions, Σ strength)
        type BucketKey = (Vec<(usize, bool)>, MaskAction);
        let mut buckets: HashMap<BucketKey, (usize, usize, f64)> = HashMap::new();
        for (x, explanation, proba) in samples {
            assert_eq!(
                explanation.values.len(),
                feature_names.len(),
                "explanation width mismatch"
            );
            let action = if *proba >= self.min_probability {
                MaskAction::Mask
            } else if *proba <= 1.0 - self.min_probability {
                MaskAction::DontMask
            } else {
                continue;
            };
            // Features pushing *toward* the decision: positive φ for Mask,
            // negative φ for DontMask.
            let mut ranked: Vec<(usize, f64)> = explanation
                .values
                .iter()
                .enumerate()
                .map(|(i, &phi)| (i, phi))
                .filter(|(_, phi)| match action {
                    MaskAction::Mask => *phi > 0.0,
                    MaskAction::DontMask => *phi < 0.0,
                })
                .collect();
            ranked.sort_by(|a, b| {
                b.1.abs()
                    .partial_cmp(&a.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            ranked.truncate(self.conditions_per_rule);
            if ranked.len() < self.conditions_per_rule {
                continue;
            }
            let strength: f64 = ranked.iter().map(|(_, phi)| phi.abs()).sum();
            let mut key: Vec<(usize, bool)> =
                ranked.iter().map(|(i, _)| (*i, x[*i] >= 0.5)).collect();
            key.sort_unstable();
            let entry = buckets.entry((key, action)).or_insert((0, 0, 0.0));
            entry.0 += 1; // support
            let agrees = match action {
                MaskAction::Mask => *proba >= 0.5,
                MaskAction::DontMask => *proba < 0.5,
            };
            if agrees {
                entry.1 += 1;
            }
            entry.2 += strength;
        }

        let mut per_action: HashMap<MaskAction, Vec<Rule>> = HashMap::new();
        for ((key, action), (support, agree, strength_sum)) in buckets {
            if support < self.min_support {
                continue;
            }
            let conditions = key
                .into_iter()
                .map(|(feature, expected)| RuleCondition {
                    feature,
                    name: feature_names[feature].clone(),
                    expected,
                })
                .collect();
            per_action.entry(action).or_default().push(Rule {
                conditions,
                action,
                support,
                confidence: agree as f64 / support as f64,
                strength: strength_sum / support as f64,
            });
        }
        let mut rules = Vec::new();
        for (_, mut v) in per_action {
            v.sort_by(|a, b| {
                (b.support as f64 * b.strength)
                    .partial_cmp(&(a.support as f64 * a.strength))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            v.truncate(self.max_rules);
            rules.extend(v);
        }
        rules.sort_by(|a, b| {
            (b.support as f64 * b.strength)
                .partial_cmp(&(a.support as f64 * a.strength))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        RuleSet { rules }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(x: Vec<f32>, phis: Vec<f64>, proba: f64) -> (Vec<f32>, ShapExplanation, f64) {
        let fx = phis.iter().sum::<f64>();
        (
            x,
            ShapExplanation {
                base_value: 0.0,
                values: phis,
                fx,
            },
            proba,
        )
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn mines_recurring_positive_pattern() {
        // Five samples share the same top-2 positive features (0, 1).
        let samples: Vec<_> = (0..5)
            .map(|_| sample(vec![1.0, 1.0, 0.0], vec![0.9, 0.6, 0.01], 0.95))
            .collect();
        let miner = RuleMiner {
            conditions_per_rule: 2,
            min_support: 3,
            ..Default::default()
        };
        let rules = miner.mine(&samples, &names(3));
        assert_eq!(rules.len(), 1);
        let r = &rules.rules()[0];
        assert_eq!(r.action, MaskAction::Mask);
        assert_eq!(r.support, 5);
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!(r.matches(&[1.0, 1.0, 0.0]));
        assert!(!r.matches(&[0.0, 1.0, 0.0]));
    }

    #[test]
    fn mines_dont_mask_rules_from_negative_shap() {
        let samples: Vec<_> = (0..4)
            .map(|_| sample(vec![0.0, 1.0], vec![-0.8, -0.5], 0.05))
            .collect();
        let miner = RuleMiner {
            conditions_per_rule: 2,
            min_support: 3,
            ..Default::default()
        };
        let rules = miner.mine(&samples, &names(2));
        assert_eq!(rules.len(), 1);
        assert_eq!(rules.rules()[0].action, MaskAction::DontMask);
        assert_eq!(rules.decide(&[0.0, 1.0]), Some(MaskAction::DontMask));
        assert!(rules.score_adjustment(&[0.0, 1.0], 0.2) < 0.0);
    }

    #[test]
    fn low_support_patterns_dropped() {
        let samples = vec![sample(vec![1.0, 1.0], vec![0.9, 0.6], 0.95)];
        let miner = RuleMiner {
            conditions_per_rule: 2,
            min_support: 3,
            ..Default::default()
        };
        assert!(miner.mine(&samples, &names(2)).is_empty());
    }

    #[test]
    fn uncertain_samples_ignored() {
        let samples: Vec<_> = (0..10)
            .map(|_| sample(vec![1.0, 1.0], vec![0.3, 0.2], 0.55))
            .collect();
        let miner = RuleMiner {
            conditions_per_rule: 2,
            min_support: 1,
            min_probability: 0.7,
            ..Default::default()
        };
        assert!(miner.mine(&samples, &names(2)).is_empty());
    }

    #[test]
    fn render_matches_table_v_style() {
        let samples: Vec<_> = (0..3)
            .map(|_| sample(vec![1.0, 0.0], vec![0.9, 0.6], 0.9))
            .collect();
        let miner = RuleMiner {
            conditions_per_rule: 2,
            min_support: 2,
            ..Default::default()
        };
        let rules = miner.mine(&samples, &["G4 = NAND".into(), "conn(G8,G9)".into()]);
        let text = rules.rules()[0].render();
        assert!(text.contains("As long as"));
        assert!(text.contains("G4 = NAND"));
        assert!(text.contains("NOT(conn(G8,G9))"));
        assert!(text.contains("Select & Replace"));
    }

    #[test]
    fn no_match_gives_no_decision() {
        let rules = RuleSet::default();
        assert_eq!(rules.decide(&[1.0]), None);
        assert_eq!(rules.score_adjustment(&[1.0], 0.5), 0.0);
    }
}
