//! Brute-force Shapley oracle (paper Eq. 6, computed literally).
//!
//! `val(S)` is the interventional expectation: features in `S` take the
//! explained sample's values, the rest are drawn from a background dataset
//! and the model output is averaged. Exponential in the feature count —
//! test-only scale, but exact by construction.

/// Exact Shapley values of `f` at `x` against `background`, enumerating all
/// `2^M` coalitions (paper Eq. 6).
///
/// # Panics
///
/// Panics if `x` has more than 20 features (enumeration would explode), if
/// `background` is empty, or if widths disagree.
pub fn exact_shapley(f: &dyn Fn(&[f32]) -> f64, x: &[f32], background: &[Vec<f32>]) -> Vec<f64> {
    let m = x.len();
    assert!(m <= 20, "brute-force Shapley is capped at 20 features");
    assert!(!background.is_empty(), "background must be nonempty");
    assert!(
        background.iter().all(|b| b.len() == m),
        "background width mismatch"
    );

    // val(S) for every coalition bitmask.
    let mut val = vec![0.0f64; 1 << m];
    let mut composite = vec![0.0f32; m];
    for (mask, slot) in val.iter_mut().enumerate() {
        let mut acc = 0.0;
        for b in background {
            for i in 0..m {
                composite[i] = if mask >> i & 1 == 1 { x[i] } else { b[i] };
            }
            acc += f(&composite);
        }
        *slot = acc / background.len() as f64;
    }

    // Factorial weights w(s) = s!(M-s-1)!/M!.
    let mut fact = vec![1.0f64; m + 1];
    for i in 1..=m {
        fact[i] = fact[i - 1] * i as f64;
    }
    let weight = |s: usize| fact[s] * fact[m - s - 1] / fact[m];

    let mut phi = vec![0.0f64; m];
    for (i, p) in phi.iter_mut().enumerate() {
        let bit = 1usize << i;
        for mask in 0..(1usize << m) {
            if mask & bit != 0 {
                continue;
            }
            let s = mask.count_ones() as usize;
            *p += weight(s) * (val[mask | bit] - val[mask]);
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_recovers_coefficients() {
        // f(x) = 3x0 − 2x1 + 5: φ_i = c_i (x_i − E[b_i]).
        let f = |x: &[f32]| 3.0 * f64::from(x[0]) - 2.0 * f64::from(x[1]) + 5.0;
        let background = vec![vec![0.0, 0.0], vec![1.0, 1.0]]; // means 0.5, 0.5
        let phi = exact_shapley(&f, &[1.0, 1.0], &background);
        assert!((phi[0] - 3.0 * 0.5).abs() < 1e-12);
        assert!((phi[1] - (-2.0) * 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_axiom() {
        let f = |x: &[f32]| f64::from(x[0]) * f64::from(x[1]) + 2.0 * f64::from(x[2]);
        let background = vec![
            vec![0.1, 0.4, 0.9],
            vec![0.7, 0.2, 0.3],
            vec![0.5, 0.5, 0.5],
        ];
        let x = [1.0f32, 0.0, 0.6];
        let phi = exact_shapley(&f, &x, &background);
        let base: f64 = background.iter().map(|b| f(b)).sum::<f64>() / background.len() as f64;
        let total: f64 = phi.iter().sum();
        assert!((base + total - f(&x)).abs() < 1e-12);
    }

    #[test]
    fn dummy_feature_gets_zero() {
        let f = |x: &[f32]| f64::from(x[0]) * 7.0;
        let background = vec![vec![0.0, 0.3], vec![1.0, 0.8]];
        let phi = exact_shapley(&f, &[0.5, 0.9], &background);
        assert!(phi[1].abs() < 1e-12, "irrelevant feature must get φ = 0");
    }

    #[test]
    fn symmetry_axiom() {
        // f symmetric in x0, x1 and x equal on both → equal φ.
        let f = |x: &[f32]| f64::from(x[0]) + f64::from(x[1]) + f64::from(x[0]) * f64::from(x[1]);
        let background = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, 0.5]];
        let phi = exact_shapley(&f, &[0.8, 0.8], &background);
        assert!((phi[0] - phi[1]).abs() < 1e-12);
    }

    #[test]
    fn interaction_split_between_players() {
        // Pure AND game with zero background: φ0 = φ1 = 1/2 at x=(1,1).
        let f = |x: &[f32]| f64::from(x[0]) * f64::from(x[1]);
        let background = vec![vec![0.0, 0.0]];
        let phi = exact_shapley(&f, &[1.0, 1.0], &background);
        assert!((phi[0] - 0.5).abs() < 1e-12);
        assert!((phi[1] - 0.5).abs() < 1e-12);
    }
}
