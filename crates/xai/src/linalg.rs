//! Minimal dense linear algebra: Gaussian elimination for the KernelSHAP
//! weighted-least-squares solve.

/// Solves `A x = b` for square `A` (row-major) by Gaussian elimination with
/// partial pivoting. Returns `None` if the matrix is numerically singular.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(b.len(), n, "rhs must have length n");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[r * n + col].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))?;
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[r * n + k] -= factor * m[col * n + k];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in row + 1..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Weighted least squares: minimizes `Σ w_i (y_i − X_i·β)²` via the normal
/// equations with a small ridge for conditioning. `x` is row-major
/// `rows × cols`.
///
/// Returns `None` on a singular system.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn weighted_least_squares(
    x: &[f64],
    y: &[f64],
    w: &[f64],
    rows: usize,
    cols: usize,
) -> Option<Vec<f64>> {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(y.len(), rows);
    assert_eq!(w.len(), rows);
    let mut xtx = vec![0.0f64; cols * cols];
    let mut xty = vec![0.0f64; cols];
    for r in 0..rows {
        let wr = w[r];
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += wr * row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += wr * row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and add a tiny ridge.
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += 1e-10;
    }
    solve(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = (1, 3).
        let a = [2.0, 1.0, 1.0, 3.0];
        let b = [5.0, 10.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] → x = (3, 2).
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[2.0, 3.0], 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn wls_recovers_line() {
        // y = 2a − b exactly; WLS must recover (2, −1) for any weights.
        let x = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 1.0];
        let y = [2.0, -1.0, 1.0, 3.0];
        let w = [1.0, 2.0, 0.5, 1.5];
        let beta = weighted_least_squares(&x, &y, &w, 4, 2).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6);
        assert!((beta[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn wls_weights_matter() {
        // Conflicting observations of a constant: weighted mean wins.
        let x = [1.0, 1.0];
        let y = [0.0, 10.0];
        let w = [9.0, 1.0];
        let beta = weighted_least_squares(&x, &y, &w, 2, 1).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-6);
    }
}
