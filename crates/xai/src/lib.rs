//! Explainable-AI substrate: SHAP for tree ensembles.
//!
//! POLARIS interprets its trained masking model with SHAP (paper §IV-B,
//! Eq. 6) to produce waterfall explanations (Fig. 3) and distilled
//! human-readable masking rules (Table V). This crate implements:
//!
//! * [`mod@tree_shap`] — **exact interventional TreeSHAP**: per-leaf closed-form
//!   Shapley contributions against a background dataset, `O(leaves × depth)`
//!   per background sample, summed over the ensemble in margin space.
//! * [`kernel_shap`] — model-agnostic KernelSHAP (coalition-sampling +
//!   constrained weighted least squares), usable on any black-box scorer.
//! * [`exact`] — the `O(2^M)` brute-force Shapley oracle used to validate
//!   both implementations in tests.
//! * [`waterfall`] — text waterfall plots of one prediction's φ values.
//! * [`rules`] — SHAP-guided mining of conjunction rules ("as long as …
//!   → Select & Replace with masking gate").
//!
//! # Example
//!
//! ```
//! use polaris_ml::{Dataset, adaboost::AdaBoost, TreeEnsemble};
//! use polaris_xai::tree_shap::tree_shap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut d = Dataset::new(vec!["a".into(), "b".into()]);
//! for i in 0..100u32 {
//!     let a = (i % 2) as f32;
//!     let b = ((i / 2) % 2) as f32;
//!     d.push(&[a, b], (a != b) as u8)?;
//! }
//! let model = AdaBoost::fit(&d, &Default::default())?;
//! let background: Vec<Vec<f32>> = (0..d.len()).map(|i| d.row(i).to_vec()).collect();
//! let explanation = tree_shap(&model, &background, &[1.0, 0.0]);
//! // Efficiency axiom: contributions sum from the base value to the margin.
//! let sum: f64 = explanation.values.iter().sum();
//! assert!((explanation.base_value + sum - model.margin(&[1.0, 0.0])).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod exact;
pub mod kernel_shap;
pub mod linalg;
pub mod rules;
pub mod tree_shap;
pub mod waterfall;

pub use rules::{MaskAction, Rule, RuleCondition, RuleMiner, RuleSet};
pub use tree_shap::{tree_shap, ShapExplanation};
pub use waterfall::Waterfall;
