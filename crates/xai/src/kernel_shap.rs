//! KernelSHAP: model-agnostic Shapley estimation (Lundberg & Lee 2017).
//!
//! Fits a weighted linear model over coalition indicators with the Shapley
//! kernel `π(z) = (M−1) / (C(M,|z|) · |z| · (M−|z|))`, with the two
//! infinite-weight coalitions (∅ and the grand coalition) folded in as the
//! intercept and an equality constraint. With full coalition enumeration the
//! estimate is *exact*; with sampling it converges as the sample count
//! grows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg::weighted_least_squares;
use crate::tree_shap::ShapExplanation;

/// KernelSHAP settings.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelShapConfig {
    /// Enumerate all coalitions when the feature count is at most this
    /// (exact mode); otherwise sample.
    pub max_exhaustive_features: usize,
    /// Number of sampled coalitions in sampling mode.
    pub n_samples: usize,
    /// RNG seed for sampling mode.
    pub seed: u64,
}

impl Default for KernelShapConfig {
    fn default() -> Self {
        KernelShapConfig {
            max_exhaustive_features: 13,
            n_samples: 4096,
            seed: 0,
        }
    }
}

/// Estimates SHAP values of a black-box scorer `f` at `x` against a
/// background dataset.
///
/// # Panics
///
/// Panics if `background` is empty or widths disagree.
pub fn kernel_shap(
    f: &dyn Fn(&[f32]) -> f64,
    x: &[f32],
    background: &[Vec<f32>],
    config: &KernelShapConfig,
) -> ShapExplanation {
    let m = x.len();
    assert!(!background.is_empty(), "background must be nonempty");
    assert!(
        background.iter().all(|b| b.len() == m),
        "background width mismatch"
    );

    // val(z): interventional expectation over the background.
    let mut composite = vec![0.0f32; m];
    let mut val = |mask: &[bool]| -> f64 {
        let mut acc = 0.0;
        for b in background {
            for i in 0..m {
                composite[i] = if mask[i] { x[i] } else { b[i] };
            }
            acc += f(&composite);
        }
        acc / background.len() as f64
    };

    let base_value = val(&vec![false; m]);
    let fx = val(&vec![true; m]);
    if m == 1 {
        return ShapExplanation {
            base_value,
            values: vec![fx - base_value],
            fx,
        };
    }
    let delta = fx - base_value;

    // Shapley kernel over coalition sizes 1..m-1.
    let ln_choose = |n: usize, k: usize| -> f64 {
        let ln_fact = |v: usize| (1..=v).map(|i| (i as f64).ln()).sum::<f64>();
        ln_fact(n) - ln_fact(k) - ln_fact(n - k)
    };
    let kernel =
        |s: usize| -> f64 { ((m - 1) as f64 / (s * (m - s)) as f64) * (-ln_choose(m, s)).exp() };

    // Collect coalitions (mask, weight).
    let mut masks: Vec<(Vec<bool>, f64)> = Vec::new();
    if m <= config.max_exhaustive_features {
        for bits in 1..(1usize << m) - 1 {
            let mask: Vec<bool> = (0..m).map(|i| bits >> i & 1 == 1).collect();
            masks.push((mask, kernel(bits.count_ones() as usize)));
        }
    } else {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Sample sizes proportional to total kernel mass per size, then a
        // uniform subset of that size.
        let size_mass: Vec<f64> = (1..m).map(|s| kernel(s) * ln_choose(m, s).exp()).collect();
        let total: f64 = size_mass.iter().sum();
        for _ in 0..config.n_samples {
            let mut pick = rng.gen::<f64>() * total;
            let mut s = 1usize;
            for (i, w) in size_mass.iter().enumerate() {
                if pick < *w {
                    s = i + 1;
                    break;
                }
                pick -= w;
                s = i + 1;
            }
            // Uniform random subset of size s (partial Fisher–Yates).
            let mut idx: Vec<usize> = (0..m).collect();
            for i in 0..s {
                let j = rng.gen_range(i..m);
                idx.swap(i, j);
            }
            let mut mask = vec![false; m];
            for &i in &idx[..s] {
                mask[i] = true;
            }
            masks.push((mask, 1.0)); // kernel folded into sampling distribution
        }
    }

    // Constrained WLS: substitute φ_{m-1} = Δ − Σ_{i<m-1} φ_i.
    let cols = m - 1;
    let rows = masks.len();
    let mut design = vec![0.0f64; rows * cols];
    let mut target = vec![0.0f64; rows];
    let mut weights = vec![0.0f64; rows];
    for (r, (mask, w)) in masks.iter().enumerate() {
        let z_last = f64::from(u8::from(mask[m - 1]));
        for i in 0..cols {
            design[r * cols + i] = f64::from(u8::from(mask[i])) - z_last;
        }
        target[r] = val(mask) - base_value - z_last * delta;
        weights[r] = *w;
    }
    let beta = weighted_least_squares(&design, &target, &weights, rows, cols)
        .unwrap_or_else(|| vec![0.0; cols]);
    let mut values = beta;
    let sum_head: f64 = values.iter().sum();
    values.push(delta - sum_head);

    ShapExplanation {
        base_value,
        values,
        fx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;

    #[test]
    fn exhaustive_mode_matches_bruteforce() {
        let f = |x: &[f32]| {
            f64::from(x[0]) * f64::from(x[1]) + 2.0 * f64::from(x[2]) - 0.5 * f64::from(x[3])
        };
        let background = vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.5, 0.2, 0.8],
            vec![0.3, 1.0, 0.9, 0.1],
        ];
        let x = [1.0f32, 1.0, 0.5, 0.0];
        let ks = kernel_shap(&f, &x, &background, &KernelShapConfig::default());
        let ex = exact_shapley(&f, &x, &background);
        for (a, b) in ks.values.iter().zip(&ex) {
            assert!((a - b).abs() < 1e-6, "kernel {a} vs exact {b}");
        }
        assert!(ks.efficiency_gap().abs() < 1e-9);
    }

    #[test]
    fn single_feature_gets_full_delta() {
        let f = |x: &[f32]| 3.0 * f64::from(x[0]);
        let bg = vec![vec![0.0]];
        let e = kernel_shap(&f, &[2.0], &bg, &KernelShapConfig::default());
        assert!((e.values[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_holds_in_sampling_mode() {
        let f = |x: &[f32]| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 + 1.0) * f64::from(v))
                .sum::<f64>()
        };
        let m = 16; // above the exhaustive cap
        let background = vec![vec![0.0f32; m], vec![1.0f32; m]];
        let x: Vec<f32> = (0..m).map(|i| (i % 2) as f32).collect();
        let cfg = KernelShapConfig {
            n_samples: 2000,
            ..Default::default()
        };
        let e = kernel_shap(&f, &x, &background, &cfg);
        assert!(
            e.efficiency_gap().abs() < 1e-9,
            "gap {}",
            e.efficiency_gap()
        );
    }

    #[test]
    fn sampling_mode_approximates_linear_model() {
        // Linear model: φ_i = c_i (x_i − mean(b_i)) exactly.
        let coefs: Vec<f64> = (0..16).map(|i| (i as f64) - 7.5).collect();
        let c = coefs.clone();
        let f = move |x: &[f32]| {
            x.iter()
                .zip(&c)
                .map(|(&v, &ci)| ci * f64::from(v))
                .sum::<f64>()
        };
        let m = 16;
        let background = vec![vec![0.0f32; m], vec![1.0f32; m]];
        let x: Vec<f32> = vec![1.0; m];
        let cfg = KernelShapConfig {
            n_samples: 6000,
            seed: 3,
            ..Default::default()
        };
        let e = kernel_shap(&f, &x, &background, &cfg);
        for (i, &phi) in e.values.iter().enumerate() {
            let want = coefs[i] * 0.5;
            assert!(
                (phi - want).abs() < 0.35,
                "feature {i}: kernel {phi} vs exact {want}"
            );
        }
    }
}
