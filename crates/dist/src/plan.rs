//! Shard plans: the coordinator-side partition of a campaign's shard grid
//! into contiguous per-worker ranges, plus the campaign fingerprint that
//! ties every shard-state file to one exact `(netlist, power model,
//! campaign)` triple.

use std::ops::Range;

use polaris_netlist::{GateKind, Netlist};
use polaris_sim::campaign::{partition_shards, shard_grid, splitmix64, CampaignConfig, DelayModel};
use polaris_sim::PowerModel;

use crate::codec::SinkKind;
use crate::wire::fnv1a64;
use crate::DistError;

/// Digest of everything that determines a campaign's sample stream: the
/// netlist structure, the power model (per-kind capacitances and noise
/// sigma shape every energy sample), and the campaign configuration (seed,
/// class budgets, cycles, delay model, resolved class vectors). Two parties
/// agree on the fingerprint iff folding their shard states is meaningful —
/// the merge refuses mismatching parts.
///
/// The digest is *not* cryptographic (like the file checksum it guards
/// against mistakes, not adversaries) and is only compared between builds
/// of the same format version, so its recipe may change freely whenever
/// [`crate::FORMAT_VERSION`] bumps.
pub fn campaign_fingerprint(netlist: &Netlist, model: &PowerModel, config: &CampaignConfig) -> u64 {
    let mut h = splitmix64(0x504C_5253_4449_5354); // "PLRSDIST"
    let mix = |h: &mut u64, v: u64| *h = splitmix64(*h ^ v);

    // Power model: every per-kind capacitance weight plus the noise level.
    for kind in GateKind::ALL {
        mix(&mut h, model.cap(kind).to_bits());
    }
    mix(&mut h, model.noise_sigma().to_bits());

    // Netlist structure: name, interface widths, then every gate's kind and
    // fanin. Gate ids are dense indices, so this pins the exact graph.
    mix(&mut h, fnv1a64(netlist.name().as_bytes()));
    mix(&mut h, netlist.gate_count() as u64);
    mix(&mut h, netlist.data_inputs().len() as u64);
    mix(&mut h, netlist.mask_inputs().len() as u64);
    for (_, gate) in netlist.iter() {
        mix(&mut h, gate.kind().ordinal() as u64);
        mix(&mut h, gate.fanin().len() as u64);
        for &f in gate.fanin() {
            mix(&mut h, f.index() as u64);
        }
    }

    // Campaign configuration, including the *resolved* fixed vector(s) so
    // an explicit vector and its seed-derived twin fingerprint identically.
    mix(&mut h, config.seed);
    mix(&mut h, config.n_fixed as u64);
    mix(&mut h, config.n_random as u64);
    mix(&mut h, config.cycles as u64);
    mix(
        &mut h,
        match config.delay_model {
            DelayModel::Zero => 0,
            DelayModel::UnitDelay => 1,
        },
    );
    let mix_bits = |h: &mut u64, bits: &[bool]| {
        mix(h, bits.len() as u64);
        for chunk in bits.chunks(64) {
            let mut word = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                word |= u64::from(b) << i;
            }
            mix(h, word);
        }
    };
    mix_bits(
        &mut h,
        &config.resolve_fixed_vector(netlist.data_inputs().len()),
    );
    match &config.second_fixed_vector {
        None => mix(&mut h, 0),
        Some(v) => {
            mix(&mut h, 1);
            mix_bits(&mut h, v);
        }
    }
    h
}

/// A distributed campaign plan: the campaign parameters a worker needs to
/// recompute its shard range, the partition itself, and the fingerprint the
/// coordinator derived. Serializes to a line-oriented manifest
/// ([`DistPlan::render`] / [`DistPlan::parse`]) that ships to workers
/// alongside the netlist.
///
/// The manifest deliberately carries only seed-derivable campaigns
/// (fixed-vs-random with the fixed class derived from the seed — what the
/// CLI runs); flows with explicit class vectors use the library API
/// ([`crate::execute_part`] / [`crate::merge_parts`]) on a shared
/// [`CampaignConfig`] instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistPlan {
    /// Module name of the design (cross-checked at load).
    pub design: String,
    /// Accumulator family the workers snapshot.
    pub sink: SinkKind,
    /// Campaign master seed.
    pub seed: u64,
    /// Fixed-class trace budget.
    pub n_fixed: usize,
    /// Random-class trace budget.
    pub n_random: usize,
    /// Clock cycles per trace.
    pub cycles: usize,
    /// Unit-delay (glitch) timing model.
    pub glitch: bool,
    /// [`campaign_fingerprint`] of `(netlist, power model, campaign)`.
    pub fingerprint: u64,
    /// Total shards in the campaign grid.
    pub n_shards: usize,
    /// Contiguous per-part shard ranges, tiling `0..n_shards` in order.
    pub parts: Vec<Range<usize>>,
    /// Gate pairs the workers accumulate bivariate co-moments for. Non-empty
    /// exactly when `sink` is [`SinkKind::Pairs`] — every worker must build
    /// its [`polaris_tvla::PairAccumulator`] over the *same ordered list*,
    /// or the central fold would combine moments of different pairs.
    pub pair_gates: Vec<(u32, u32)>,
    /// Gate triples the workers accumulate trivariate co-moments for.
    /// Non-empty exactly when `sink` is [`SinkKind::Triples`], under the
    /// same same-ordered-list contract as `pair_gates`.
    pub triple_gates: Vec<(u32, u32, u32)>,
}

const MANIFEST_HEADER: &str = "polaris-dist-plan v1";

impl DistPlan {
    /// Plans `config` over `netlist` in `parts` contiguous shard ranges.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] if `parts == 0`, the campaign carries
    /// explicit class vectors (which the manifest cannot transport), or
    /// `sink` is [`SinkKind::Pairs`] / [`SinkKind::Triples`] (which need a
    /// gate list — use [`DistPlan::new_pairs`] / [`DistPlan::new_triples`]).
    pub fn new(
        netlist: &Netlist,
        model: &PowerModel,
        config: &CampaignConfig,
        sink: SinkKind,
        parts: usize,
    ) -> Result<Self, DistError> {
        if sink == SinkKind::Pairs {
            return Err(DistError::Malformed(
                "a pairs plan needs a gate-pair list; use DistPlan::new_pairs".into(),
            ));
        }
        if sink == SinkKind::Triples {
            return Err(DistError::Malformed(
                "a triples plan needs a gate-triple list; use DistPlan::new_triples".into(),
            ));
        }
        Self::build(netlist, model, config, sink, parts, Vec::new(), Vec::new())
    }

    /// Plans a bivariate ([`SinkKind::Pairs`]) campaign: like
    /// [`DistPlan::new`], plus the ordered gate-pair list every worker
    /// accumulates.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] on the [`DistPlan::new`] conditions or an
    /// empty pair list; [`DistError::GateList`] if the list fails
    /// [`polaris_tvla::validate_pairs`] (out-of-range index, self-pair,
    /// duplicate entry).
    pub fn new_pairs(
        netlist: &Netlist,
        model: &PowerModel,
        config: &CampaignConfig,
        pair_gates: Vec<(u32, u32)>,
        parts: usize,
    ) -> Result<Self, DistError> {
        if pair_gates.is_empty() {
            return Err(DistError::Malformed(
                "a pairs plan needs at least one gate pair".into(),
            ));
        }
        polaris_tvla::validate_pairs(&pair_gates, netlist.gate_count())
            .map_err(|e| DistError::GateList(format!("pairs plan: {e}")))?;
        Self::build(
            netlist,
            model,
            config,
            SinkKind::Pairs,
            parts,
            pair_gates,
            Vec::new(),
        )
    }

    /// Plans a trivariate ([`SinkKind::Triples`]) campaign: like
    /// [`DistPlan::new`], plus the ordered gate-triple list every worker
    /// accumulates.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] on the [`DistPlan::new`] conditions or an
    /// empty triple list; [`DistError::GateList`] if the list fails
    /// [`polaris_tvla::validate_triples`].
    pub fn new_triples(
        netlist: &Netlist,
        model: &PowerModel,
        config: &CampaignConfig,
        triple_gates: Vec<(u32, u32, u32)>,
        parts: usize,
    ) -> Result<Self, DistError> {
        if triple_gates.is_empty() {
            return Err(DistError::Malformed(
                "a triples plan needs at least one gate triple".into(),
            ));
        }
        polaris_tvla::validate_triples(&triple_gates, netlist.gate_count())
            .map_err(|e| DistError::GateList(format!("triples plan: {e}")))?;
        Self::build(
            netlist,
            model,
            config,
            SinkKind::Triples,
            parts,
            Vec::new(),
            triple_gates,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        netlist: &Netlist,
        model: &PowerModel,
        config: &CampaignConfig,
        sink: SinkKind,
        parts: usize,
        pair_gates: Vec<(u32, u32)>,
        triple_gates: Vec<(u32, u32, u32)>,
    ) -> Result<Self, DistError> {
        if parts == 0 {
            return Err(DistError::Malformed(
                "a plan needs at least one part".into(),
            ));
        }
        if config.fixed_vector.is_some() || config.second_fixed_vector.is_some() {
            return Err(DistError::Malformed(
                "plan manifests cannot carry explicit class vectors; \
                 use the library API for fixed-vs-fixed campaigns"
                    .into(),
            ));
        }
        let n_shards = shard_grid(config).len();
        Ok(DistPlan {
            design: netlist.name().to_string(),
            sink,
            seed: config.seed,
            n_fixed: config.n_fixed,
            n_random: config.n_random,
            cycles: config.cycles,
            glitch: config.delay_model == DelayModel::UnitDelay,
            fingerprint: campaign_fingerprint(netlist, model, config),
            n_shards,
            parts: partition_shards(n_shards, parts),
            pair_gates,
            triple_gates,
        })
    }

    /// Reconstructs the campaign configuration the plan describes.
    pub fn campaign(&self) -> CampaignConfig {
        let mut c =
            CampaignConfig::new(self.n_fixed, self.n_random, self.seed).with_cycles(self.cycles);
        if self.glitch {
            c = c.with_glitches();
        }
        c
    }

    /// Re-derives the campaign against a freshly loaded netlist and the
    /// power model this process will simulate with, and checks both against
    /// the plan's fingerprint and grid size — the worker-side guard that it
    /// was handed the same design (and energy model) the coordinator
    /// planned. The manifest does not transport the model; agreeing on it
    /// is part of agreeing on the fingerprint.
    ///
    /// # Errors
    ///
    /// [`DistError::FingerprintMismatch`] / [`DistError::PlanMismatch`] on
    /// divergence; [`DistError::GateList`] when the plan's pair or triple
    /// list is invalid for the loaded netlist (so a hand-edited list fails
    /// on the worker exactly as it would at planning time).
    pub fn verify(
        &self,
        netlist: &Netlist,
        model: &PowerModel,
    ) -> Result<CampaignConfig, DistError> {
        let campaign = self.campaign();
        let found = campaign_fingerprint(netlist, model, &campaign);
        if found != self.fingerprint {
            return Err(DistError::FingerprintMismatch {
                expected: self.fingerprint,
                found,
            });
        }
        let n_shards = shard_grid(&campaign).len();
        if n_shards != self.n_shards {
            return Err(DistError::PlanMismatch(format!(
                "plan says {} shards, campaign produces {n_shards}",
                self.n_shards
            )));
        }
        if !self.pair_gates.is_empty() {
            polaris_tvla::validate_pairs(&self.pair_gates, netlist.gate_count())
                .map_err(|e| DistError::GateList(format!("pair list: {e}")))?;
        }
        if !self.triple_gates.is_empty() {
            polaris_tvla::validate_triples(&self.triple_gates, netlist.gate_count())
                .map_err(|e| DistError::GateList(format!("triple list: {e}")))?;
        }
        Ok(campaign)
    }

    /// Renders the line-oriented plan manifest.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("design {}\n", self.design));
        out.push_str(&format!("sink {}\n", self.sink.name()));
        if !self.pair_gates.is_empty() {
            let list: Vec<String> = self
                .pair_gates
                .iter()
                .map(|(a, b)| format!("{a}:{b}"))
                .collect();
            out.push_str(&format!("pair-gates {}\n", list.join(",")));
        }
        if !self.triple_gates.is_empty() {
            let list: Vec<String> = self
                .triple_gates
                .iter()
                .map(|(a, b, c)| format!("{a}:{b}:{c}"))
                .collect();
            out.push_str(&format!("triple-gates {}\n", list.join(",")));
        }
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("traces-fixed {}\n", self.n_fixed));
        out.push_str(&format!("traces-random {}\n", self.n_random));
        out.push_str(&format!("cycles {}\n", self.cycles));
        out.push_str(&format!("glitch {}\n", u8::from(self.glitch)));
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("shards {}\n", self.n_shards));
        out.push_str(&format!("parts {}\n", self.parts.len()));
        for (i, r) in self.parts.iter().enumerate() {
            out.push_str(&format!("part {i} {} {}\n", r.start, r.end));
        }
        out
    }

    /// Parses a manifest produced by [`DistPlan::render`].
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] on any structural problem (wrong header,
    /// missing or duplicate keys, non-tiling part ranges).
    pub fn parse(text: &str) -> Result<Self, DistError> {
        fn bad(why: String) -> DistError {
            DistError::Malformed(format!("plan manifest: {why}"))
        }
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        match lines.next() {
            Some(l) if l.trim() == MANIFEST_HEADER => {}
            other => {
                return Err(bad(format!(
                    "expected header `{MANIFEST_HEADER}`, found {other:?}"
                )))
            }
        }
        let mut design = None;
        let mut sink = None;
        let mut pair_gates: Option<Vec<(u32, u32)>> = None;
        let mut triple_gates: Option<Vec<(u32, u32, u32)>> = None;
        let mut seed = None;
        let mut n_fixed = None;
        let mut n_random = None;
        let mut cycles = None;
        let mut glitch = None;
        let mut fingerprint = None;
        let mut n_shards = None;
        let mut n_parts: Option<usize> = None;
        let mut parts: Vec<(usize, Range<usize>)> = Vec::new();

        fn set<T>(slot: &mut Option<T>, key: &str, v: T) -> Result<(), DistError> {
            if slot.is_some() {
                return Err(DistError::Malformed(format!(
                    "plan manifest: duplicate key `{key}`"
                )));
            }
            *slot = Some(v);
            Ok(())
        }
        let int = |key: &str, v: &str| -> Result<usize, DistError> {
            v.parse()
                .map_err(|_| DistError::Malformed(format!("plan manifest: bad {key} `{v}`")))
        };

        for line in lines {
            let mut words = line.split_whitespace();
            let key = words.next().unwrap_or_default();
            let rest: Vec<&str> = words.collect();
            let one = || -> Result<&str, DistError> {
                if rest.len() == 1 {
                    Ok(rest[0])
                } else {
                    Err(DistError::Malformed(format!(
                        "plan manifest: `{key}` takes one value, line `{line}`"
                    )))
                }
            };
            match key {
                "design" => set(&mut design, key, one()?.to_string())?,
                "sink" => {
                    let name = one()?;
                    let kind = SinkKind::from_name(name)
                        .ok_or_else(|| bad(format!("unknown sink kind `{name}`")))?;
                    set(&mut sink, key, kind)?;
                }
                "pair-gates" => {
                    let list = one()?;
                    let mut pairs = Vec::new();
                    for entry in list.split(',') {
                        let (a, b) = entry
                            .split_once(':')
                            .ok_or_else(|| bad(format!("bad pair entry `{entry}`")))?;
                        let parse = |v: &str| {
                            v.parse::<u32>()
                                .map_err(|_| bad(format!("bad pair gate index `{v}`")))
                        };
                        pairs.push((parse(a)?, parse(b)?));
                    }
                    set(&mut pair_gates, key, pairs)?;
                }
                "triple-gates" => {
                    let list = one()?;
                    let mut triples = Vec::new();
                    for entry in list.split(',') {
                        let parse = |v: &str| {
                            v.parse::<u32>()
                                .map_err(|_| bad(format!("bad triple gate index `{v}`")))
                        };
                        let fields: Vec<&str> = entry.split(':').collect();
                        if fields.len() != 3 {
                            return Err(bad(format!("bad triple entry `{entry}`")));
                        }
                        triples.push((parse(fields[0])?, parse(fields[1])?, parse(fields[2])?));
                    }
                    set(&mut triple_gates, key, triples)?;
                }
                "seed" => set(
                    &mut seed,
                    key,
                    one()?
                        .parse::<u64>()
                        .map_err(|_| bad(format!("bad seed `{}`", rest[0])))?,
                )?,
                "traces-fixed" => set(&mut n_fixed, key, int(key, one()?)?)?,
                "traces-random" => set(&mut n_random, key, int(key, one()?)?)?,
                "cycles" => set(&mut cycles, key, int(key, one()?)?)?,
                "glitch" => set(
                    &mut glitch,
                    key,
                    match one()? {
                        "0" => false,
                        "1" => true,
                        v => return Err(bad(format!("bad glitch flag `{v}`"))),
                    },
                )?,
                "fingerprint" => set(
                    &mut fingerprint,
                    key,
                    u64::from_str_radix(one()?, 16)
                        .map_err(|_| bad(format!("bad fingerprint `{}`", rest[0])))?,
                )?,
                "shards" => set(&mut n_shards, key, int(key, one()?)?)?,
                "parts" => set(&mut n_parts, key, int(key, one()?)?)?,
                "part" => {
                    if rest.len() != 3 {
                        return Err(bad(format!("`part` takes index lo hi, line `{line}`")));
                    }
                    parts.push((
                        int("part index", rest[0])?,
                        int("part lo", rest[1])?..int("part hi", rest[2])?,
                    ));
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }

        let req = |name: &'static str| move || bad(format!("missing key `{name}`"));
        let plan = DistPlan {
            design: design.ok_or_else(req("design"))?,
            sink: sink.ok_or_else(req("sink"))?,
            seed: seed.ok_or_else(req("seed"))?,
            n_fixed: n_fixed.ok_or_else(req("traces-fixed"))?,
            n_random: n_random.ok_or_else(req("traces-random"))?,
            cycles: cycles.ok_or_else(req("cycles"))?,
            glitch: glitch.ok_or_else(req("glitch"))?,
            fingerprint: fingerprint.ok_or_else(req("fingerprint"))?,
            n_shards: n_shards.ok_or_else(req("shards"))?,
            parts: {
                let declared = n_parts.ok_or_else(req("parts"))?;
                if parts.len() != declared {
                    return Err(bad(format!(
                        "declared {declared} parts, found {}",
                        parts.len()
                    )));
                }
                for (i, (idx, _)) in parts.iter().enumerate() {
                    if *idx != i {
                        return Err(bad(format!("part indices out of order at `{idx}`")));
                    }
                }
                parts.into_iter().map(|(_, r)| r).collect()
            },
            pair_gates: pair_gates.unwrap_or_default(),
            triple_gates: triple_gates.unwrap_or_default(),
        };
        // Each gate list and the sink kind must agree: a pairs/triples plan
        // without its list (or a list on another sink) cannot drive the
        // workers.
        if plan.sink == SinkKind::Pairs && plan.pair_gates.is_empty() {
            return Err(bad("sink `pairs` requires a `pair-gates` list".into()));
        }
        if plan.sink != SinkKind::Pairs && !plan.pair_gates.is_empty() {
            return Err(bad(format!(
                "`pair-gates` is only valid with sink `pairs`, found `{}`",
                plan.sink.name()
            )));
        }
        if plan.sink == SinkKind::Triples && plan.triple_gates.is_empty() {
            return Err(bad("sink `triples` requires a `triple-gates` list".into()));
        }
        if plan.sink != SinkKind::Triples && !plan.triple_gates.is_empty() {
            return Err(bad(format!(
                "`triple-gates` is only valid with sink `triples`, found `{}`",
                plan.sink.name()
            )));
        }
        // Ranges must tile the grid in order.
        let mut next = 0usize;
        for (i, r) in plan.parts.iter().enumerate() {
            if r.start != next || r.end < r.start {
                return Err(bad(format!("part {i} range {r:?} does not tile the grid")));
            }
            next = r.end;
        }
        if next != plan.n_shards {
            return Err(bad(format!(
                "parts cover {next} shards, grid has {}",
                plan.n_shards
            )));
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    #[test]
    fn manifest_round_trips() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(3000, 3000, 11);
        let plan = DistPlan::new(&n, &PowerModel::default(), &cfg, SinkKind::Welch, 3).unwrap();
        let parsed = DistPlan::parse(&plan.render()).unwrap();
        assert_eq!(plan, parsed);
        assert_eq!(parsed.campaign(), cfg);
        parsed.verify(&n, &PowerModel::default()).unwrap();
    }

    #[test]
    fn fingerprint_separates_configs_and_designs() {
        let c17 = generators::iscas_c17();
        let cfg = CampaignConfig::new(1000, 1000, 7);
        let model = PowerModel::default();
        let base = campaign_fingerprint(&c17, &model, &cfg);
        assert_eq!(
            base,
            campaign_fingerprint(&c17, &model, &cfg),
            "deterministic"
        );
        let reseeded = CampaignConfig::new(1000, 1000, 8);
        assert_ne!(base, campaign_fingerprint(&c17, &model, &reseeded));
        let rebudgeted = CampaignConfig::new(1000, 1001, 7);
        assert_ne!(base, campaign_fingerprint(&c17, &model, &rebudgeted));
        let glitchy = CampaignConfig::new(1000, 1000, 7).with_glitches();
        assert_ne!(base, campaign_fingerprint(&c17, &model, &glitchy));
        let noisy = PowerModel::default().with_noise(0.05);
        assert_ne!(base, campaign_fingerprint(&c17, &noisy, &cfg));
        let other = generators::iscas_like("c432", 1, 7).unwrap();
        assert_ne!(base, campaign_fingerprint(&other, &model, &cfg));
    }

    #[test]
    fn explicit_vector_fingerprints_like_its_derived_twin() {
        // The fingerprint hashes the *resolved* fixed vector, so pinning the
        // derived vector explicitly is the same campaign.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(500, 500, 9);
        let pinned = cfg
            .clone()
            .with_fixed_vector(cfg.resolve_fixed_vector(n.data_inputs().len()));
        let model = PowerModel::default();
        assert_eq!(
            campaign_fingerprint(&n, &model, &cfg),
            campaign_fingerprint(&n, &model, &pinned)
        );
    }

    #[test]
    fn verify_rejects_a_different_netlist() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(1000, 1000, 7);
        let model = PowerModel::default();
        let plan = DistPlan::new(&n, &model, &cfg, SinkKind::Welch, 2).unwrap();
        let other = generators::iscas_like("c432", 1, 7).unwrap();
        assert!(matches!(
            plan.verify(&other, &model),
            Err(DistError::FingerprintMismatch { .. })
        ));
        // The same netlist under a different power model is a different
        // campaign too.
        assert!(matches!(
            plan.verify(&n, &PowerModel::default().with_noise(0.01)),
            Err(DistError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(1000, 1000, 7);
        let good = DistPlan::new(&n, &PowerModel::default(), &cfg, SinkKind::Welch, 2)
            .unwrap()
            .render();

        for mangle in [
            good.replace("polaris-dist-plan v1", "polaris-dist-plan v9"),
            good.replace("seed 7", ""),
            good.replace("seed 7", "seed banana"),
            good.replace("sink welch", "sink parquet"),
            good.replace("part 1 4 8", "part 1 5 8"),
            good.replace("parts 2", "parts 3"),
            format!("{good}seed 7\n"),
            good.replace("glitch 0", "glitch maybe"),
        ] {
            assert!(
                matches!(DistPlan::parse(&mangle), Err(DistError::Malformed(_))),
                "should reject:\n{mangle}"
            );
        }
        // Reference sanity: the unmangled manifest parses.
        DistPlan::parse(&good).unwrap();
    }

    #[test]
    fn pairs_manifest_round_trips() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(2000, 2000, 13);
        let pairs = vec![(0, 3), (1, 4), (2, 5)];
        let plan = DistPlan::new_pairs(&n, &PowerModel::default(), &cfg, pairs.clone(), 2).unwrap();
        assert_eq!(plan.sink, SinkKind::Pairs);
        let rendered = plan.render();
        assert!(rendered.contains("pair-gates 0:3,1:4,2:5"), "{rendered}");
        let parsed = DistPlan::parse(&rendered).unwrap();
        assert_eq!(plan, parsed);
        assert_eq!(parsed.pair_gates, pairs);
        parsed.verify(&n, &PowerModel::default()).unwrap();
    }

    #[test]
    fn pairs_plans_are_validated() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 100, 1);
        let model = PowerModel::default();
        // `new` refuses the pairs sink outright.
        assert!(matches!(
            DistPlan::new(&n, &model, &cfg, SinkKind::Pairs, 2),
            Err(DistError::Malformed(_))
        ));
        // Empty and out-of-range pair lists are rejected.
        assert!(matches!(
            DistPlan::new_pairs(&n, &model, &cfg, vec![], 2),
            Err(DistError::Malformed(_))
        ));
        assert!(matches!(
            DistPlan::new_pairs(&n, &model, &cfg, vec![(0, 999)], 2),
            Err(DistError::GateList(_))
        ));
        // Self-pairs and duplicate entries are the multivariate input class.
        assert!(matches!(
            DistPlan::new_pairs(&n, &model, &cfg, vec![(3, 3)], 2),
            Err(DistError::GateList(_))
        ));
        assert!(matches!(
            DistPlan::new_pairs(&n, &model, &cfg, vec![(0, 3), (3, 0)], 2),
            Err(DistError::GateList(_))
        ));

        // Manifest-side agreement between sink kind and pair list.
        let good = DistPlan::new_pairs(&n, &model, &cfg, vec![(0, 3)], 2)
            .unwrap()
            .render();
        for mangle in [
            good.replace("pair-gates 0:3\n", ""),
            good.replace("pair-gates 0:3", "pair-gates 0-3"),
            good.replace("pair-gates 0:3", "pair-gates 0:banana"),
            good.replace("sink pairs", "sink welch"),
        ] {
            assert!(
                matches!(DistPlan::parse(&mangle), Err(DistError::Malformed(_))),
                "should reject:\n{mangle}"
            );
        }
        DistPlan::parse(&good).unwrap();

        // A parsed plan whose pairs do not fit the loaded netlist fails
        // verification even when the fingerprint matches — including a
        // hand-edited self-pair, which must land in the gate-list class.
        let mut plan = DistPlan::new_pairs(&n, &model, &cfg, vec![(0, 3)], 2).unwrap();
        plan.pair_gates = vec![(0, 999)];
        assert!(matches!(
            plan.verify(&n, &model),
            Err(DistError::GateList(_))
        ));
        let mut plan = DistPlan::new_pairs(&n, &model, &cfg, vec![(0, 3)], 2).unwrap();
        plan.pair_gates = vec![(3, 3)];
        assert!(matches!(
            plan.verify(&n, &model),
            Err(DistError::GateList(_))
        ));
    }

    #[test]
    fn triples_manifest_round_trips() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(2000, 2000, 13);
        let triples = vec![(0, 3, 5), (1, 4, 6)];
        let plan =
            DistPlan::new_triples(&n, &PowerModel::default(), &cfg, triples.clone(), 2).unwrap();
        assert_eq!(plan.sink, SinkKind::Triples);
        let rendered = plan.render();
        assert!(rendered.contains("triple-gates 0:3:5,1:4:6"), "{rendered}");
        let parsed = DistPlan::parse(&rendered).unwrap();
        assert_eq!(plan, parsed);
        assert_eq!(parsed.triple_gates, triples);
        parsed.verify(&n, &PowerModel::default()).unwrap();
    }

    #[test]
    fn triples_plans_are_validated() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 100, 1);
        let model = PowerModel::default();
        assert!(matches!(
            DistPlan::new(&n, &model, &cfg, SinkKind::Triples, 2),
            Err(DistError::Malformed(_))
        ));
        assert!(matches!(
            DistPlan::new_triples(&n, &model, &cfg, vec![], 2),
            Err(DistError::Malformed(_))
        ));
        for bad_list in [
            vec![(0, 1, 999)],
            vec![(0, 1, 1)],
            vec![(0, 1, 2), (2, 1, 0)],
        ] {
            assert!(matches!(
                DistPlan::new_triples(&n, &model, &cfg, bad_list, 2),
                Err(DistError::GateList(_))
            ));
        }

        // Manifest-side agreement between sink kind and triple list.
        let good = DistPlan::new_triples(&n, &model, &cfg, vec![(0, 3, 5)], 2)
            .unwrap()
            .render();
        for mangle in [
            good.replace("triple-gates 0:3:5\n", ""),
            good.replace("triple-gates 0:3:5", "triple-gates 0:3"),
            good.replace("triple-gates 0:3:5", "triple-gates 0:3:banana"),
            good.replace("sink triples", "sink welch"),
            good.replace("sink triples", "sink pairs"),
        ] {
            assert!(
                matches!(DistPlan::parse(&mangle), Err(DistError::Malformed(_))),
                "should reject:\n{mangle}"
            );
        }
        DistPlan::parse(&good).unwrap();

        // A hand-edited repeated-gate triple fails verification in the
        // gate-list class (the CLI maps it to the multivariate exit code).
        let mut plan = DistPlan::new_triples(&n, &model, &cfg, vec![(0, 3, 5)], 2).unwrap();
        plan.triple_gates = vec![(3, 3, 5)];
        assert!(matches!(
            plan.verify(&n, &model),
            Err(DistError::GateList(_))
        ));
    }

    #[test]
    fn plans_with_explicit_vectors_are_rejected() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 100, 7).with_fixed_vector(vec![true; 5]);
        assert!(matches!(
            DistPlan::new(&n, &PowerModel::default(), &cfg, SinkKind::Welch, 2),
            Err(DistError::Malformed(_))
        ));
    }
}
