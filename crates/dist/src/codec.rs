//! Body encodings of the snapshotable accumulators — one [`ShardState`]
//! impl per [`polaris_sim::MergeableSink`] the campaign and CPA engines
//! fold (Welch moments, dense gate samples, CPA correlation sums).
//!
//! Bodies carry raw accumulator state, with every `f64` transported as its
//! bit pattern: `decode(encode(x))` reproduces `x` exactly, and
//! `encode(decode(encode(x))) == encode(x)` byte for byte (the identity the
//! workspace property suite pins).

use polaris_sim::campaign::MergeableSink;
use polaris_sim::GateSamples;
use polaris_tvla::{
    CorrelationAccumulator, CpaAccumulator, PairAccumulator, PairMoments, StreamingMoments,
    TripleAccumulator, TripleMoments, WelchAccumulator,
};

use crate::wire::{put_f64, put_u32, put_u64, Reader};
use crate::DistError;

/// Tag of the accumulator family a shard-state file carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Per-gate streaming Welch moments ([`WelchAccumulator`]).
    Welch,
    /// Dense per-gate sample buffers ([`GateSamples`]).
    GateSamples,
    /// Per-key-guess correlation sums ([`CpaAccumulator`]).
    Cpa,
    /// Per-gate-pair bivariate co-moments ([`PairAccumulator`]).
    Pairs,
    /// Per-gate-triple trivariate co-moments ([`TripleAccumulator`]).
    Triples,
}

impl SinkKind {
    /// The wire tag (see the format table in the crate docs).
    pub fn tag(self) -> u8 {
        match self {
            SinkKind::Welch => 1,
            SinkKind::GateSamples => 2,
            SinkKind::Cpa => 3,
            SinkKind::Pairs => 4,
            SinkKind::Triples => 5,
        }
    }

    /// Resolves a wire tag; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SinkKind::Welch),
            2 => Some(SinkKind::GateSamples),
            3 => Some(SinkKind::Cpa),
            4 => Some(SinkKind::Pairs),
            5 => Some(SinkKind::Triples),
            _ => None,
        }
    }

    /// Human-readable name (used in plan manifests and error messages).
    pub fn name(self) -> &'static str {
        match self {
            SinkKind::Welch => "welch",
            SinkKind::GateSamples => "samples",
            SinkKind::Cpa => "cpa",
            SinkKind::Pairs => "pairs",
            SinkKind::Triples => "triples",
        }
    }

    /// Resolves a manifest name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "welch" => Some(SinkKind::Welch),
            "samples" => Some(SinkKind::GateSamples),
            "cpa" => Some(SinkKind::Cpa),
            "pairs" => Some(SinkKind::Pairs),
            "triples" => Some(SinkKind::Triples),
            _ => None,
        }
    }
}

/// An accumulator whose state can cross a process boundary: encode to the
/// shard-state body format, decode back, and fold in canonical order.
///
/// `fold` must behave exactly like the in-process merge of the same
/// accumulator (it *is* that merge for every impl here), so a central fold
/// over restored states is bit-identical to the single-process fold.
pub trait ShardState: Sized {
    /// The wire tag this state is framed under.
    const KIND: SinkKind;

    /// Appends the body encoding of `self` to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);

    /// Decodes one body from `r` (untrusted input; must bound allocations
    /// and never panic).
    ///
    /// # Errors
    ///
    /// [`DistError::Truncated`] / [`DistError::Malformed`] on short or
    /// structurally invalid input.
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError>;

    /// Folds `other` (the state of the *following* shard range) into
    /// `self`.
    fn fold(&mut self, other: Self);

    /// The cross-shard dimension this state is committed to (gate count for
    /// the campaign sinks, guess count for CPA), or `None` when the state
    /// is empty and imposes no constraint. [`crate::merge_parts`] refuses
    /// to fold states that disagree — the accumulator merges themselves
    /// only debug-assert the dimension, so without this check a release
    /// build would silently truncate mismatched parts.
    fn dimension(&self) -> Option<usize>;
}

const MOMENTS_WIRE_BYTES: usize = 8 + 4 * 8;

fn put_moments(out: &mut Vec<u8>, m: &StreamingMoments) {
    let (n, mean, m2, m3, m4) = m.raw_parts();
    put_u64(out, n);
    put_f64(out, mean);
    put_f64(out, m2);
    put_f64(out, m3);
    put_f64(out, m4);
}

fn read_moments(r: &mut Reader<'_>, context: &str) -> Result<StreamingMoments, DistError> {
    let n = r.u64(context)?;
    let mean = r.f64(context)?;
    let m2 = r.f64(context)?;
    let m3 = r.f64(context)?;
    let m4 = r.f64(context)?;
    Ok(StreamingMoments::from_raw_parts(n, mean, m2, m3, m4))
}

impl ShardState for WelchAccumulator {
    const KIND: SinkKind = SinkKind::Welch;

    /// `gates (u32)`, then `gates` fixed-class moment records followed by
    /// `gates` random-class records, each `n (u64), mean, M2, M3, M4`.
    fn encode_body(&self, out: &mut Vec<u8>) {
        let (fixed, random) = self.classes();
        put_u32(
            out,
            u32::try_from(fixed.len()).expect("gate count fits u32"),
        );
        for m in fixed.iter().chain(random) {
            put_moments(out, m);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError> {
        let gates = r.u32("welch gate count")? as usize;
        r.expect_elements(gates, 2 * MOMENTS_WIRE_BYTES, "welch moment records")?;
        let mut read_class = |class: &str| -> Result<Vec<StreamingMoments>, DistError> {
            let mut v = Vec::with_capacity(gates);
            for _ in 0..gates {
                v.push(read_moments(r, class)?);
            }
            Ok(v)
        };
        let fixed = read_class("welch fixed-class moments")?;
        let random = read_class("welch random-class moments")?;
        Ok(WelchAccumulator::from_classes(fixed, random))
    }

    fn fold(&mut self, other: Self) {
        MergeableSink::merge(self, other);
    }

    fn dimension(&self) -> Option<usize> {
        let (fixed, _) = self.classes();
        (!fixed.is_empty()).then_some(fixed.len())
    }
}

impl ShardState for GateSamples {
    const KIND: SinkKind = SinkKind::GateSamples;

    /// Per class (fixed, then random): `gates (u32)`, then per gate
    /// `samples (u32), samples × f64`. The classes may disagree on the gate
    /// count — a one-population shard leaves the unseen class empty.
    fn encode_body(&self, out: &mut Vec<u8>) {
        let (fixed, random) = self.classes();
        for class in [fixed, random] {
            put_u32(
                out,
                u32::try_from(class.len()).expect("gate count fits u32"),
            );
            for samples in class {
                put_u32(
                    out,
                    u32::try_from(samples.len()).expect("shard sample count fits u32"),
                );
                for &s in samples {
                    put_f64(out, s);
                }
            }
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError> {
        let mut read_class = |class: &str| -> Result<Vec<Vec<f64>>, DistError> {
            let gates = r.u32(class)? as usize;
            r.expect_elements(gates, 4, class)?;
            let mut v = Vec::with_capacity(gates);
            for _ in 0..gates {
                let count = r.u32(class)? as usize;
                r.expect_elements(count, 8, class)?;
                let mut samples = Vec::with_capacity(count);
                for _ in 0..count {
                    samples.push(r.f64(class)?);
                }
                v.push(samples);
            }
            Ok(v)
        };
        let fixed = read_class("fixed-class gate samples")?;
        let random = read_class("random-class gate samples")?;
        Ok(GateSamples::from_classes(fixed, random))
    }

    fn fold(&mut self, other: Self) {
        MergeableSink::merge(self, other);
    }

    fn dimension(&self) -> Option<usize> {
        // A one-population shard leaves the unseen class empty, so the
        // committed dimension is whichever class has gates.
        let (fixed, random) = self.classes();
        let gates = fixed.len().max(random.len());
        (gates > 0).then_some(gates)
    }
}

impl ShardState for CpaAccumulator {
    const KIND: SinkKind = SinkKind::Cpa;

    /// `guesses (u32)`, then one record per key guess:
    /// `n (u64), mean_x, mean_y, M2x, M2y, Cxy`.
    fn encode_body(&self, out: &mut Vec<u8>) {
        let per_guess = self.guess_accumulators();
        put_u32(
            out,
            u32::try_from(per_guess.len()).expect("guess count fits u32"),
        );
        for acc in per_guess {
            let (n, mean_x, mean_y, m2x, m2y, cxy) = acc.raw_parts();
            put_u64(out, n);
            put_f64(out, mean_x);
            put_f64(out, mean_y);
            put_f64(out, m2x);
            put_f64(out, m2y);
            put_f64(out, cxy);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError> {
        let guesses = r.u32("cpa guess count")? as usize;
        r.expect_elements(guesses, 8 + 5 * 8, "cpa correlation records")?;
        let mut per_guess = Vec::with_capacity(guesses);
        for _ in 0..guesses {
            let n = r.u64("cpa correlation record")?;
            let mean_x = r.f64("cpa correlation record")?;
            let mean_y = r.f64("cpa correlation record")?;
            let m2x = r.f64("cpa correlation record")?;
            let m2y = r.f64("cpa correlation record")?;
            let cxy = r.f64("cpa correlation record")?;
            per_guess.push(CorrelationAccumulator::from_raw_parts(
                n, mean_x, mean_y, m2x, m2y, cxy,
            ));
        }
        Ok(CpaAccumulator::from_guess_accumulators(per_guess))
    }

    fn fold(&mut self, other: Self) {
        self.merge(&other);
    }

    fn dimension(&self) -> Option<usize> {
        let guesses = self.guess_accumulators().len();
        (guesses > 0).then_some(guesses)
    }
}

const PAIR_MOMENTS_WIRE_BYTES: usize = 8 + 8 * 8;

fn put_pair_moments(out: &mut Vec<u8>, m: &PairMoments) {
    let (n, parts) = m.raw_parts();
    put_u64(out, n);
    for v in parts {
        put_f64(out, v);
    }
}

fn read_pair_moments(r: &mut Reader<'_>, context: &str) -> Result<PairMoments, DistError> {
    let n = r.u64(context)?;
    let mut parts = [0.0f64; 8];
    for v in &mut parts {
        *v = r.f64(context)?;
    }
    Ok(PairMoments::from_raw_parts(n, parts))
}

impl ShardState for PairAccumulator {
    const KIND: SinkKind = SinkKind::Pairs;

    /// `pairs (u32)`, then `pairs` gate-index records `a (u32), b (u32)`,
    /// then `pairs` fixed-class co-moment records followed by `pairs`
    /// random-class records, each `n (u64)` + 8 × f64
    /// (`mean_x, mean_y, C20, C02, C11, C21, C12, C22`).
    fn encode_body(&self, out: &mut Vec<u8>) {
        let pairs = self.pairs();
        put_u32(
            out,
            u32::try_from(pairs.len()).expect("pair count fits u32"),
        );
        for &(a, b) in pairs {
            put_u32(out, a);
            put_u32(out, b);
        }
        let (fixed, random) = self.class_moments();
        for m in fixed.iter().chain(random) {
            put_pair_moments(out, m);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError> {
        let count = r.u32("pair count")? as usize;
        r.expect_elements(count, 2 * 4 + 2 * PAIR_MOMENTS_WIRE_BYTES, "pair records")?;
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let a = r.u32("pair gate index")?;
            let b = r.u32("pair gate index")?;
            pairs.push((a, b));
        }
        let mut read_class = |class: &str| -> Result<Vec<PairMoments>, DistError> {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(read_pair_moments(r, class)?);
            }
            Ok(v)
        };
        let fixed = read_class("pair fixed-class co-moments")?;
        let random = read_class("pair random-class co-moments")?;
        Ok(PairAccumulator::from_parts(pairs, fixed, random))
    }

    fn fold(&mut self, other: Self) {
        MergeableSink::merge(self, other);
    }

    fn dimension(&self) -> Option<usize> {
        let pairs = self.pair_count();
        (pairs > 0).then_some(pairs)
    }
}

const TRIPLE_MOMENTS_WIRE_BYTES: usize = 8 + polaris_tvla::trivariate::TRIPLE_MOMENTS_RAW_LEN * 8;

fn put_triple_moments(out: &mut Vec<u8>, m: &TripleMoments) {
    let (n, parts) = m.raw_parts();
    put_u64(out, n);
    for v in parts {
        put_f64(out, v);
    }
}

fn read_triple_moments(r: &mut Reader<'_>, context: &str) -> Result<TripleMoments, DistError> {
    let n = r.u64(context)?;
    let mut parts = [0.0f64; polaris_tvla::trivariate::TRIPLE_MOMENTS_RAW_LEN];
    for v in &mut parts {
        *v = r.f64(context)?;
    }
    Ok(TripleMoments::from_raw_parts(n, parts))
}

impl ShardState for TripleAccumulator {
    const KIND: SinkKind = SinkKind::Triples;

    /// `triples (u32)`, then `triples` gate-index records
    /// `a (u32), b (u32), c (u32)`, then `triples` fixed-class co-moment
    /// records followed by `triples` random-class records, each `n (u64)` +
    /// 26 × f64 (`mean_x, mean_y, mean_z`, then the 23 co-moments in the
    /// canonical [`TripleMoments::raw_parts`] order).
    fn encode_body(&self, out: &mut Vec<u8>) {
        let triples = self.triples();
        put_u32(
            out,
            u32::try_from(triples.len()).expect("triple count fits u32"),
        );
        for &(a, b, c) in triples {
            put_u32(out, a);
            put_u32(out, b);
            put_u32(out, c);
        }
        let (fixed, random) = self.class_moments();
        for m in fixed.iter().chain(random) {
            put_triple_moments(out, m);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, DistError> {
        let count = r.u32("triple count")? as usize;
        r.expect_elements(
            count,
            3 * 4 + 2 * TRIPLE_MOMENTS_WIRE_BYTES,
            "triple records",
        )?;
        let mut triples = Vec::with_capacity(count);
        for _ in 0..count {
            let a = r.u32("triple gate index")?;
            let b = r.u32("triple gate index")?;
            let c = r.u32("triple gate index")?;
            triples.push((a, b, c));
        }
        let mut read_class = |class: &str| -> Result<Vec<TripleMoments>, DistError> {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(read_triple_moments(r, class)?);
            }
            Ok(v)
        };
        let fixed = read_class("triple fixed-class co-moments")?;
        let random = read_class("triple random-class co-moments")?;
        Ok(TripleAccumulator::from_parts(triples, fixed, random))
    }

    fn fold(&mut self, other: Self) {
        MergeableSink::merge(self, other);
    }

    fn dimension(&self) -> Option<usize> {
        let triples = self.triple_count();
        (triples > 0).then_some(triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<S: ShardState>(state: &S) -> S {
        let mut bytes = Vec::new();
        state.encode_body(&mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = S::decode_body(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "body fully consumed");
        let mut re = Vec::new();
        decoded.encode_body(&mut re);
        assert_eq!(bytes, re, "encode∘decode∘encode identity");
        decoded
    }

    #[test]
    fn welch_round_trips_bit_exactly() {
        let mut acc = WelchAccumulator::new();
        use polaris_sim::campaign::{EnergyBatch, Population, TraceSink};
        let e: Vec<f64> = (0..6).map(|i| (i as f64).exp() * 1e-3).collect();
        acc.record_batch(
            Population::Fixed,
            EnergyBatch::new(&e, 3, 2).expect("well-formed"),
        );
        acc.record_batch(
            Population::Random,
            EnergyBatch::new(&e, 3, 2).expect("well-formed"),
        );
        let back = round_trip(&acc);
        let (f0, r0) = acc.classes();
        let (f1, r1) = back.classes();
        assert_eq!(f0, f1);
        assert_eq!(r0, r1);
    }

    #[test]
    fn empty_states_round_trip() {
        round_trip(&WelchAccumulator::new());
        round_trip(&GateSamples::default());
        round_trip(&CpaAccumulator::new(0));
        round_trip(&PairAccumulator::default());
        round_trip(&TripleAccumulator::default());
        round_trip(&TripleAccumulator::for_triples(vec![(0, 1, 2)]));
    }

    #[test]
    fn pairs_round_trip_bit_exactly() {
        use polaris_sim::campaign::{EnergyBatch, Population, TraceSink};
        let mut acc = PairAccumulator::for_pairs(vec![(0, 2), (1, 2)]);
        let e: Vec<f64> = (0..6).map(|i| (i as f64).sin() * 1e-2).collect();
        acc.record_batch(
            Population::Fixed,
            EnergyBatch::new(&e, 3, 2).expect("well-formed"),
        );
        acc.record_batch(
            Population::Random,
            EnergyBatch::new(&e, 3, 2).expect("well-formed"),
        );
        let back = round_trip(&acc);
        assert_eq!(acc, back);
    }

    #[test]
    fn pairs_round_trip_extreme_values() {
        let extreme = PairMoments::from_raw_parts(
            u64::MAX,
            [
                f64::MIN_POSITIVE,
                -0.0,
                1e308,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                -1e-308,
                0.0,
            ],
        );
        let acc = PairAccumulator::from_parts(
            vec![(7, u32::MAX)],
            vec![extreme],
            vec![PairMoments::default()],
        );
        let back = round_trip(&acc);
        let (fixed, _) = back.class_moments();
        let (n, parts) = fixed[0].raw_parts();
        assert_eq!(n, u64::MAX);
        assert_eq!(parts[3], f64::INFINITY);
        assert!(parts[5].is_nan());
        assert_eq!(parts[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn cpa_round_trips_extreme_values() {
        let per_guess = vec![
            CorrelationAccumulator::from_raw_parts(
                u64::MAX,
                f64::MIN_POSITIVE,
                -0.0,
                1e308,
                f64::INFINITY,
                f64::NAN,
            ),
            CorrelationAccumulator::new(),
        ];
        let acc = CpaAccumulator::from_guess_accumulators(per_guess);
        let back = round_trip(&acc);
        assert_eq!(back.guess_accumulators().len(), 2);
        let (n, _, _, _, m2y, cxy) = back.guess_accumulators()[0].raw_parts();
        assert_eq!(n, u64::MAX);
        assert_eq!(m2y, f64::INFINITY);
        assert!(cxy.is_nan());
    }

    #[test]
    fn triples_round_trip_bit_exactly() {
        use polaris_sim::campaign::{EnergyBatch, Population, TraceSink};
        let mut acc = TripleAccumulator::for_triples(vec![(0, 2, 3), (1, 2, 3)]);
        let e: Vec<f64> = (0..8).map(|i| (i as f64).sin() * 1e-2).collect();
        acc.record_batch(
            Population::Fixed,
            EnergyBatch::new(&e, 4, 2).expect("well-formed"),
        );
        acc.record_batch(
            Population::Random,
            EnergyBatch::new(&e, 4, 2).expect("well-formed"),
        );
        let back = round_trip(&acc);
        assert_eq!(acc, back);
    }

    #[test]
    fn triples_round_trip_extreme_values() {
        let mut parts = [0.0f64; polaris_tvla::trivariate::TRIPLE_MOMENTS_RAW_LEN];
        parts[0] = f64::MIN_POSITIVE;
        parts[1] = -0.0;
        parts[3] = f64::INFINITY;
        parts[4] = f64::NEG_INFINITY;
        parts[5] = f64::NAN;
        parts[25] = -1e-308;
        let extreme = TripleMoments::from_raw_parts(u64::MAX, parts);
        let acc = TripleAccumulator::from_parts(
            vec![(7, 9, u32::MAX)],
            vec![extreme],
            vec![TripleMoments::default()],
        );
        let back = round_trip(&acc);
        let (fixed, _) = back.class_moments();
        let (n, got) = fixed[0].raw_parts();
        assert_eq!(n, u64::MAX);
        assert_eq!(got[3], f64::INFINITY);
        assert!(got[5].is_nan());
        assert_eq!(got[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(got[25], -1e-308);
    }

    #[test]
    fn forged_counts_do_not_allocate() {
        // A body claiming 2^31 gates but carrying 4 bytes must fail cleanly.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX);
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            WelchAccumulator::decode_body(&mut r),
            Err(DistError::Truncated { .. })
        ));
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            CpaAccumulator::decode_body(&mut r),
            Err(DistError::Truncated { .. })
        ));
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            PairAccumulator::decode_body(&mut r),
            Err(DistError::Truncated { .. })
        ));
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            TripleAccumulator::decode_body(&mut r),
            Err(DistError::Truncated { .. })
        ));
    }
}
