//! Distributed trace campaigns: shard plans, serializable shard state, and
//! the central bit-identical fold.
//!
//! Realistic TVLA assessments need millions of traces — more than one
//! machine's budget. The sharded campaign engine already makes every shard
//! location-independent (counter-derived RNG streams, ordered pairwise
//! merge); this crate adds the missing piece: a coordinator partitions the
//! shard grid into contiguous **plans** ([`DistPlan`]), independent worker
//! processes execute one plan each ([`execute_part`]) and snapshot their
//! per-shard accumulators into a versioned, checksummed, self-describing
//! binary **shard-state file**, and a central merge ([`merge_parts`]) folds
//! the parts back in canonical shard order — producing a result that is
//! **byte-identical** to a single-process
//! [`polaris_sim::run_campaign_parallel`] run at any partitioning.
//!
//! # Why shard-granular snapshots
//!
//! The Chan-et-al moment merges are floating-point and therefore **not
//! associative**: `(s₀ ⊕ s₁) ⊕ s₂` and `s₀ ⊕ (s₁ ⊕ s₂)` differ in rounding.
//! A part file that pre-folded its whole range would force a different merge
//! tree at every partitioning and break bit-identity. Part files therefore
//! frame one snapshot **per shard** — the engine's merge quantum — so the
//! central fold can replay the exact strictly-ascending one-shard-at-a-time
//! fold of the in-process engine, regardless of how the grid was cut.
//! Per-shard statistical state is tiny (a few dozen floats per gate), so the
//! wire cost is negligible next to the traces it replaces.
//!
//! # Wire format (shard-state files)
//!
//! All integers are little-endian and fixed-width; `f64` values are
//! transported as their IEEE-754 bit patterns (`to_bits`), so snapshots are
//! bit-exact.
//!
//! ```text
//! offset size field
//! 0      8    magic "PLRSHARD" (never changes across versions)
//! 8      2    format version (u16) — readers accept an exact match only
//! 10     1    sink kind: 1 Welch moments, 2 dense gate samples, 3 CPA,
//!             4 bivariate pair co-moments, 5 trivariate triple co-moments
//! 11     1    reserved (0)
//! 12     8    campaign fingerprint (u64; netlist + campaign digest)
//! 20     4    part index (u32)
//! 24     4    part count (u32)
//! 28     4    first grid index of the part's shard range (u32)
//! 32     4    one-past-last grid index (u32)
//! 36     4    total shards in the campaign grid (u32)
//! 40     8    payload length in bytes (u64)
//! 48     …    payload: one frame per shard, ascending grid index
//! end-8  8    FNV-1a-64 checksum over bytes [8, 48 + payload length)
//! ```
//!
//! Each payload frame is `grid index (u32), body length (u32), body`; body
//! encodings are defined by the [`ShardState`] impls in [`codec`].
//!
//! # Version policy
//!
//! * The magic is permanent; the version word after it is the **only**
//!   compatibility gate. Readers reject any version other than
//!   [`FORMAT_VERSION`] with [`DistError::VersionMismatch`] — there is no
//!   silent forward or backward compatibility.
//! * Any change to the header layout, the frame layout, a body encoding, or
//!   the checksum/fingerprint recipe bumps [`FORMAT_VERSION`]. Adding a new
//!   sink kind does **not** (unknown kinds already fail decoding cleanly).
//! * Shard-state files are transport artifacts, not archives: a merge is
//!   expected to run the same build as its workers. The version word exists
//!   to turn a mixed-build deployment into a clear error instead of a
//!   silently wrong fold.
//!
//! # Trust model
//!
//! Shard-state files are untrusted input: every decode path bounds its
//! allocations by the bytes actually present and returns a typed
//! [`DistError`] — never a panic — on truncated, corrupted, or mismatched
//! files. The fingerprint ties a part to one exact `(netlist, campaign)`
//! pair, so parts from a different design, seed, or trace budget cannot be
//! folded together by accident.

pub mod codec;
pub mod part;
pub mod plan;
pub mod proto;
pub mod service;
pub mod wire;

pub use codec::{ShardState, SinkKind};
pub use part::{
    decode_part, encode_part, execute_part, execute_part_traced, execute_part_traced_with,
    execute_part_with, merge_parts, merge_parts_traced, merged_outcome, Merged, PartHeader,
    FORMAT_VERSION, MAGIC,
};
pub use plan::{campaign_fingerprint, DistPlan};
pub use proto::{Message, ProtoError, ResultOrigin, PROTO_VERSION};
pub use service::{
    Coordinator, DesignFormat, JobResult, JobStatus, Submission, SubmitOutcome, TaskSpec,
    TenantStats, DEFAULT_HEARTBEAT_MS,
};

use polaris_netlist::NetlistError;

/// Everything that can go wrong while encoding, decoding, or folding shard
/// state. Each variant is a distinct failure class so front-ends (the CLI)
/// can map them to distinct exit codes.
#[derive(Debug)]
pub enum DistError {
    /// The file ended before the named field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// The first eight bytes are not the shard-state magic.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    VersionMismatch {
        /// The version word found in the file.
        found: u16,
    },
    /// The stored checksum does not match the file's contents.
    ChecksumMismatch {
        /// Checksum recomputed from the bytes.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
    /// The file carries a different sink kind than the decoder expects.
    KindMismatch {
        /// The kind the caller asked to decode.
        expected: SinkKind,
        /// The kind tag found in the file.
        found: u8,
    },
    /// The file's campaign fingerprint does not match the expected one —
    /// it was produced for a different netlist or campaign configuration.
    FingerprintMismatch {
        /// Fingerprint the caller derived from its netlist + campaign.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
    /// The supplied parts do not assemble into one complete plan
    /// (missing/duplicate parts, overlapping or gapped shard ranges,
    /// disagreeing grid sizes).
    PlanMismatch(String),
    /// A plan's gate-pair or gate-triple list is semantically invalid for
    /// the design (out-of-range index, repeated gate, duplicate entry) —
    /// the same input class [`polaris_tvla::MultivariateError`] covers on
    /// the CLI side, kept distinct from [`DistError::PlanMismatch`] so a
    /// hand-edited `3:3` plan fails with the multivariate-input exit code.
    GateList(String),
    /// Structurally invalid content (bad counts, inconsistent lengths,
    /// unknown tags, trailing garbage, unparsable manifest).
    Malformed(String),
    /// Simulator compilation failed while executing a plan.
    Sim(NetlistError),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Truncated { context } => {
                write!(f, "truncated shard-state data while reading {context}")
            }
            DistError::BadMagic => write!(f, "not a shard-state file (bad magic)"),
            DistError::VersionMismatch { found } => write!(
                f,
                "unsupported shard-state format version {found} (this build reads \
                 version {FORMAT_VERSION})"
            ),
            DistError::ChecksumMismatch { computed, stored } => write!(
                f,
                "shard-state checksum mismatch (stored {stored:#018x}, \
                 computed {computed:#018x}) — the file is corrupted"
            ),
            DistError::KindMismatch { expected, found } => write!(
                f,
                "shard-state sink kind mismatch: expected {} (tag {}), file carries tag {found}",
                expected.name(),
                expected.tag()
            ),
            DistError::FingerprintMismatch { expected, found } => write!(
                f,
                "campaign fingerprint mismatch: expected {expected:#018x}, file carries \
                 {found:#018x} — the part belongs to a different netlist or campaign"
            ),
            DistError::PlanMismatch(why) => write!(f, "shard plan mismatch: {why}"),
            DistError::GateList(why) => write!(f, "invalid gate list: {why}"),
            DistError::Malformed(why) => write!(f, "malformed shard-state data: {why}"),
            DistError::Sim(e) => write!(f, "campaign execution failed: {e}"),
        }
    }
}

impl DistError {
    /// The failure class as the documented `dist`/`serve` exit code:
    /// 1 execution, 3 truncated, 4 malformed, 5 version skew, 6 checksum,
    /// 7 plan/fingerprint/kind mismatch, 8 gate list. The CLI maps errors
    /// through this so scripts can react to a class without parsing stderr.
    pub fn exit_class(&self) -> u8 {
        match self {
            DistError::Sim(_) => 1,
            DistError::Truncated { .. } => 3,
            DistError::BadMagic | DistError::Malformed(_) => 4,
            DistError::VersionMismatch { .. } => 5,
            DistError::ChecksumMismatch { .. } => 6,
            DistError::KindMismatch { .. }
            | DistError::FingerprintMismatch { .. }
            | DistError::PlanMismatch(_) => 7,
            DistError::GateList(_) => 8,
        }
    }
}

impl std::error::Error for DistError {}

impl From<NetlistError> for DistError {
    fn from(e: NetlistError) -> Self {
        DistError::Sim(e)
    }
}
