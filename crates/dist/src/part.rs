//! Shard-state part files: encode a worker's per-shard accumulator
//! snapshots, decode them defensively, and fold a complete set of parts in
//! canonical shard order.

use std::ops::Range;
use std::time::Instant;

use polaris_netlist::Netlist;
use polaris_obs::{NullRecorder, Payload, Recorder};
use polaris_sim::campaign::{
    partition_shards, run_shard_states_traced_with, shard_grid, CampaignConfig, CampaignOutcome,
    CampaignStats, MergeableSink, Parallelism,
};
use polaris_sim::PowerModel;

use crate::codec::ShardState;
use crate::plan::campaign_fingerprint;
use crate::wire::{fnv1a64, put_u16, put_u32, put_u64, Reader};
use crate::DistError;

/// File magic of shard-state files. Permanent across format versions.
pub const MAGIC: [u8; 8] = *b"PLRSHARD";

/// Current wire-format version. Readers accept an exact match only; see the
/// crate docs for the version policy.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed-size header fields of a part file (everything between the version
/// word and the payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartHeader {
    /// [`campaign_fingerprint`] of the `(netlist, power model, campaign)`
    /// triple.
    pub fingerprint: u64,
    /// This part's index in the plan.
    pub part_index: u32,
    /// Total parts in the plan.
    pub part_count: u32,
    /// First grid index of the part's shard range.
    pub shard_lo: u32,
    /// One-past-last grid index of the part's shard range.
    pub shard_hi: u32,
    /// Total shards in the campaign grid.
    pub n_shards_total: u32,
}

const HEADER_BYTES: usize = 8 + 2 + 1 + 1 + 8 + 4 * 5 + 8;
const CHECKSUM_BYTES: usize = 8;

/// Encodes one part file: `states[i]` is the snapshot of grid shard
/// `header.shard_lo + i`.
///
/// # Panics
///
/// Panics if `states.len()` disagrees with the header's shard range — that
/// is a caller bug, not untrusted input.
pub fn encode_part<S: ShardState>(header: &PartHeader, states: &[S]) -> Vec<u8> {
    assert_eq!(
        states.len(),
        (header.shard_hi - header.shard_lo) as usize,
        "one snapshot per shard in the range"
    );
    let mut payload = Vec::new();
    let mut body = Vec::new();
    for (i, s) in states.iter().enumerate() {
        body.clear();
        s.encode_body(&mut body);
        put_u32(&mut payload, header.shard_lo + i as u32);
        put_u32(
            &mut payload,
            u32::try_from(body.len()).expect("body fits u32"),
        );
        payload.extend_from_slice(&body);
    }

    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + CHECKSUM_BYTES);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    out.push(S::KIND.tag());
    out.push(0); // reserved
    put_u64(&mut out, header.fingerprint);
    put_u32(&mut out, header.part_index);
    put_u32(&mut out, header.part_count);
    put_u32(&mut out, header.shard_lo);
    put_u32(&mut out, header.shard_hi);
    put_u32(&mut out, header.n_shards_total);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let checksum = fnv1a64(&out[MAGIC.len()..]);
    put_u64(&mut out, checksum);
    out
}

/// Decodes one part file into its header and per-shard states (in ascending
/// grid order). All validation happens here: magic, version, structural
/// completeness, checksum, sink kind, and range consistency.
///
/// # Errors
///
/// A typed [`DistError`] for each failure class — never a panic, however
/// hostile the bytes.
pub fn decode_part<S: ShardState>(bytes: &[u8]) -> Result<(PartHeader, Vec<S>), DistError> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len(), "file magic")? != MAGIC {
        return Err(DistError::BadMagic);
    }
    let version = r.u16("format version")?;
    if version != FORMAT_VERSION {
        return Err(DistError::VersionMismatch { found: version });
    }
    let kind_tag = r.u8("sink kind")?;
    let reserved = r.u8("reserved byte")?;
    let header = PartHeader {
        fingerprint: r.u64("campaign fingerprint")?,
        part_index: r.u32("part index")?,
        part_count: r.u32("part count")?,
        shard_lo: r.u32("shard range start")?,
        shard_hi: r.u32("shard range end")?,
        n_shards_total: r.u32("grid size")?,
    };
    let payload_len = usize::try_from(r.u64("payload length")?)
        .map_err(|_| DistError::Malformed("payload length overflows".into()))?;

    // Structural completeness before anything is interpreted: the file must
    // be exactly header + payload + checksum. Checked arithmetic: the
    // length field is untrusted and must not be able to overflow us.
    let expected_len = HEADER_BYTES
        .checked_add(payload_len)
        .and_then(|v| v.checked_add(CHECKSUM_BYTES))
        .ok_or_else(|| DistError::Malformed("payload length overflows".into()))?;
    if bytes.len() < expected_len {
        return Err(DistError::Truncated {
            context: format!(
                "payload + checksum ({} bytes present, {expected_len} expected)",
                bytes.len()
            ),
        });
    }
    if bytes.len() > expected_len {
        return Err(DistError::Malformed(format!(
            "{} trailing bytes after the checksum",
            bytes.len() - expected_len
        )));
    }
    let computed = fnv1a64(&bytes[MAGIC.len()..HEADER_BYTES + payload_len]);
    let stored = u64::from_le_bytes(
        bytes[HEADER_BYTES + payload_len..]
            .try_into()
            .expect("checksum trailer is 8 bytes"),
    );
    if computed != stored {
        return Err(DistError::ChecksumMismatch { computed, stored });
    }

    if reserved != 0 {
        return Err(DistError::Malformed(format!(
            "reserved header byte is {reserved}, expected 0"
        )));
    }
    if kind_tag != S::KIND.tag() {
        return Err(DistError::KindMismatch {
            expected: S::KIND,
            found: kind_tag,
        });
    }
    if header.shard_lo > header.shard_hi
        || header.shard_hi > header.n_shards_total
        || header.part_index >= header.part_count
    {
        return Err(DistError::Malformed(format!(
            "inconsistent header ranges: part {}/{}, shards {}..{} of {}",
            header.part_index,
            header.part_count,
            header.shard_lo,
            header.shard_hi,
            header.n_shards_total
        )));
    }

    // Frames parse from a reader bounded to the *declared* payload, never
    // the whole file: a frame whose body length reaches past the payload
    // (into the checksum trailer) must be a structural error, not silently
    // adopted data. The file-level completeness check above already proved
    // the payload bytes are all present, so any shortfall in here is
    // malformed framing rather than truncation.
    let overrun = |context: &str, e: DistError| match e {
        DistError::Truncated { .. } => {
            DistError::Malformed(format!("{context} overruns the declared payload"))
        }
        other => other,
    };
    let mut frames = Reader::new(&bytes[HEADER_BYTES..HEADER_BYTES + payload_len]);
    let mut states = Vec::new();
    let mut expected_index = header.shard_lo;
    while frames.remaining() > 0 {
        let index = frames
            .u32("shard frame index")
            .map_err(|e| overrun("shard frame header", e))?;
        if index != expected_index {
            return Err(DistError::Malformed(format!(
                "shard frame {index} out of order (expected {expected_index})"
            )));
        }
        let body_len = frames
            .u32("shard frame length")
            .map_err(|e| overrun("shard frame header", e))? as usize;
        let body = frames
            .take(body_len, "shard frame body")
            .map_err(|e| overrun(&format!("shard frame {index}"), e))?;
        let mut body_reader = Reader::new(body);
        let state = S::decode_body(&mut body_reader)?;
        if body_reader.remaining() != 0 {
            return Err(DistError::Malformed(format!(
                "shard frame {index} carries {} unconsumed bytes",
                body_reader.remaining()
            )));
        }
        states.push(state);
        expected_index += 1;
    }
    if expected_index != header.shard_hi {
        return Err(DistError::Malformed(format!(
            "part covers shards {}..{} but carries frames up to {expected_index}",
            header.shard_lo, header.shard_hi
        )));
    }
    Ok((header, states))
}

/// Executes part `part_index` of a `part_count`-way plan over `config` and
/// returns the encoded shard-state file — the whole body of a
/// `polaris dist work` process.
///
/// # Errors
///
/// [`DistError::PlanMismatch`] for an out-of-range part index;
/// [`DistError::Sim`] if the design cannot be levelized.
pub fn execute_part<S>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    part_index: usize,
    part_count: usize,
) -> Result<Vec<u8>, DistError>
where
    S: ShardState + MergeableSink + Default,
{
    execute_part_with(
        netlist,
        model,
        config,
        parallelism,
        part_index,
        part_count,
        S::default,
    )
}

/// [`execute_part`] for sinks whose shape is configured at construction
/// (e.g. [`polaris_tvla::PairAccumulator`], which must know its gate-pair
/// list): the factory builds each shard's *empty* private sink.
///
/// # Errors
///
/// Same contract as [`execute_part`].
#[allow(clippy::too_many_arguments)]
pub fn execute_part_with<S, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    part_index: usize,
    part_count: usize,
    factory: F,
) -> Result<Vec<u8>, DistError>
where
    S: ShardState + MergeableSink,
    F: Fn() -> S + Sync,
{
    execute_part_traced_with(
        netlist,
        model,
        config,
        parallelism,
        part_index,
        part_count,
        factory,
        &NullRecorder,
    )
}

/// [`execute_part`] reporting structured trace events to `recorder`: one
/// shard span per simulated shard (with the per-phase split) plus a
/// `plan_exec` frame naming the part's slot in the plan. The encoded file is
/// byte-identical to the untraced run.
///
/// # Errors
///
/// Same contract as [`execute_part`].
pub fn execute_part_traced<S>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    part_index: usize,
    part_count: usize,
    recorder: &dyn Recorder,
) -> Result<Vec<u8>, DistError>
where
    S: ShardState + MergeableSink + Default,
{
    execute_part_traced_with(
        netlist,
        model,
        config,
        parallelism,
        part_index,
        part_count,
        S::default,
        recorder,
    )
}

/// [`execute_part_with`] with a trace recorder — the sink-factory variant of
/// [`execute_part_traced`].
///
/// # Errors
///
/// Same contract as [`execute_part`].
#[allow(clippy::too_many_arguments)]
pub fn execute_part_traced_with<S, F>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    part_index: usize,
    part_count: usize,
    factory: F,
    recorder: &dyn Recorder,
) -> Result<Vec<u8>, DistError>
where
    S: ShardState + MergeableSink,
    F: Fn() -> S + Sync,
{
    let n_shards = shard_grid(config).len();
    if part_count == 0 {
        return Err(DistError::PlanMismatch(
            "a plan needs at least one part".into(),
        ));
    }
    let ranges = partition_shards(n_shards, part_count);
    let range: Range<usize> = ranges.get(part_index).cloned().ok_or_else(|| {
        DistError::PlanMismatch(format!(
            "part index {part_index} out of range for a {part_count}-part plan"
        ))
    })?;
    let started = recorder.enabled().then(Instant::now);
    let states: Vec<S> = run_shard_states_traced_with(
        netlist,
        model,
        config,
        parallelism,
        range.clone(),
        factory,
        recorder,
    )?;
    if let Some(t0) = started {
        recorder.record(Payload::PlanExec {
            part: part_index as u64,
            parts: part_count as u64,
            shard_lo: range.start as u64,
            shard_hi: range.end as u64,
            wall_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    let header = PartHeader {
        fingerprint: campaign_fingerprint(netlist, model, config),
        part_index: part_index as u32,
        part_count: part_count as u32,
        shard_lo: range.start as u32,
        shard_hi: range.end as u32,
        n_shards_total: n_shards as u32,
    };
    Ok(encode_part(&header, &states))
}

/// A complete, verified, centrally folded plan.
#[derive(Clone, Debug)]
pub struct Merged<S> {
    /// The accumulator folded over every shard in canonical grid order —
    /// byte-identical to the in-process
    /// [`polaris_sim::run_campaign_parallel`] fold.
    pub state: S,
    /// The fingerprint every part agreed on.
    pub fingerprint: u64,
    /// Shards folded (the full grid).
    pub n_shards: usize,
    /// Parts the plan was split into.
    pub parts: usize,
}

/// Folds a complete set of encoded part files in canonical shard order.
///
/// Every part must decode cleanly, agree on fingerprint / grid size / part
/// count (and match `expected_fingerprint` when given), and the shard
/// ranges must tile the grid exactly — missing, duplicate, or overlapping
/// parts are [`DistError::PlanMismatch`].
///
/// # Errors
///
/// A typed [`DistError`] for each failure class; see the variant docs.
pub fn merge_parts<'a, S>(
    parts: impl IntoIterator<Item = &'a [u8]>,
    expected_fingerprint: Option<u64>,
) -> Result<Merged<S>, DistError>
where
    S: ShardState + Default,
{
    merge_parts_traced(parts, expected_fingerprint, &NullRecorder)
}

/// [`merge_parts`] reporting structured trace events to `recorder`: one
/// `merge_fold` span per part (covering its shards' fold into the running
/// accumulator) and a final `merge_done` frame. The folded state is
/// byte-identical to the untraced merge.
///
/// # Errors
///
/// Same contract as [`merge_parts`].
pub fn merge_parts_traced<'a, S>(
    parts: impl IntoIterator<Item = &'a [u8]>,
    expected_fingerprint: Option<u64>,
    recorder: &dyn Recorder,
) -> Result<Merged<S>, DistError>
where
    S: ShardState + Default,
{
    let mut decoded: Vec<(PartHeader, Vec<S>)> = Vec::new();
    for bytes in parts {
        decoded.push(decode_part(bytes)?);
    }
    let first = decoded
        .first()
        .map(|(h, _)| *h)
        .ok_or_else(|| DistError::PlanMismatch("no parts supplied".into()))?;
    if let Some(expected) = expected_fingerprint {
        if first.fingerprint != expected {
            return Err(DistError::FingerprintMismatch {
                expected,
                found: first.fingerprint,
            });
        }
    }
    for (h, _) in &decoded {
        if h.fingerprint != first.fingerprint {
            return Err(DistError::FingerprintMismatch {
                expected: first.fingerprint,
                found: h.fingerprint,
            });
        }
        if h.part_count != first.part_count || h.n_shards_total != first.n_shards_total {
            return Err(DistError::PlanMismatch(format!(
                "part {} disagrees on the plan shape ({} parts / {} shards vs {} / {})",
                h.part_index,
                h.part_count,
                h.n_shards_total,
                first.part_count,
                first.n_shards_total
            )));
        }
    }
    if decoded.len() != first.part_count as usize {
        return Err(DistError::PlanMismatch(format!(
            "plan has {} parts, {} supplied",
            first.part_count,
            decoded.len()
        )));
    }
    decoded.sort_by_key(|(h, _)| (h.shard_lo, h.part_index));
    let mut next_shard = 0u32;
    for (expected_index, (h, _)) in decoded.iter().enumerate() {
        if h.part_index as usize != expected_index {
            return Err(DistError::PlanMismatch(format!(
                "duplicate or missing part index {} in the supplied set",
                h.part_index
            )));
        }
        if h.shard_lo != next_shard {
            return Err(DistError::PlanMismatch(format!(
                "part {} covers shards {}..{}, expected the range to start at {next_shard}",
                h.part_index, h.shard_lo, h.shard_hi
            )));
        }
        next_shard = h.shard_hi;
    }
    if next_shard != first.n_shards_total {
        return Err(DistError::PlanMismatch(format!(
            "parts cover {next_shard} shards, grid has {}",
            first.n_shards_total
        )));
    }

    // Shards must agree on the accumulator dimension (gate / guess count)
    // before anything folds: mismatched dimensions mean the parts came from
    // different designs, and the accumulator merges themselves only
    // debug-assert it (a release build would silently truncate).
    let mut dimension: Option<usize> = None;
    for (h, states) in &decoded {
        for s in states {
            let Some(d) = s.dimension() else { continue };
            match dimension {
                None => dimension = Some(d),
                Some(existing) if existing != d => {
                    return Err(DistError::PlanMismatch(format!(
                        "part {} carries shard states of dimension {d}, \
                         other parts have {existing}",
                        h.part_index
                    )))
                }
                Some(_) => {}
            }
        }
    }

    // Canonical fold: strictly ascending grid order, one shard at a time —
    // exactly the merge sequence of the in-process engine.
    let tracing = recorder.enabled();
    let merge_start = tracing.then(Instant::now);
    let mut acc: Option<S> = None;
    let parts_n = decoded.len();
    for (h, states) in decoded {
        let part_start = tracing.then(Instant::now);
        let shards = states.len() as u64;
        for s in states {
            match &mut acc {
                None => acc = Some(s),
                Some(a) => a.fold(s),
            }
        }
        if let Some(t0) = part_start {
            recorder.record(Payload::MergeFold {
                part: h.part_index as u64,
                shards,
                wall_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }
    if let Some(t0) = merge_start {
        recorder.record(Payload::MergeDone {
            parts: parts_n as u64,
            shards: first.n_shards_total as u64,
            wall_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    Ok(Merged {
        state: acc.unwrap_or_default(),
        fingerprint: first.fingerprint,
        n_shards: first.n_shards_total as usize,
        parts: parts_n,
    })
}

/// Wraps a merged full-grid fold into the [`CampaignOutcome`] the
/// downstream flows (the masking flow's pre-folded baseline path) consume,
/// after re-verifying that the merge belongs to `(netlist, model, config)`.
///
/// # Errors
///
/// [`DistError::FingerprintMismatch`] / [`DistError::PlanMismatch`] if the
/// merge was produced for a different campaign.
pub fn merged_outcome<S>(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    merged: Merged<S>,
) -> Result<CampaignOutcome<S>, DistError> {
    let expected = campaign_fingerprint(netlist, model, config);
    if merged.fingerprint != expected {
        return Err(DistError::FingerprintMismatch {
            expected,
            found: merged.fingerprint,
        });
    }
    let n_shards = shard_grid(config).len();
    if merged.n_shards != n_shards {
        return Err(DistError::PlanMismatch(format!(
            "merge folded {} shards, campaign grid has {n_shards}",
            merged.n_shards
        )));
    }
    Ok(CampaignOutcome {
        sink: merged.state,
        // A merged plan is by construction a full-grid run: the single
        // "round" mirrors run_campaign_parallel's never-stopping schedule.
        stats: CampaignStats {
            fixed_traces: config.n_fixed,
            random_traces: config.n_random,
            rounds: 1,
            planned_rounds: 1,
            stopped_early: false,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;
    use polaris_tvla::WelchAccumulator;

    fn c17_parts(parts: usize) -> (Netlist, CampaignConfig, Vec<Vec<u8>>) {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(600, 600, 5);
        let files: Vec<Vec<u8>> = (0..parts)
            .map(|i| {
                execute_part::<WelchAccumulator>(
                    &n,
                    &PowerModel::default(),
                    &cfg,
                    Parallelism::sequential(),
                    i,
                    parts,
                )
                .unwrap()
            })
            .collect();
        (n, cfg, files)
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, _, files) = c17_parts(2);
        for (i, f) in files.iter().enumerate() {
            let (h, states) = decode_part::<WelchAccumulator>(f).unwrap();
            assert_eq!(h.part_index as usize, i);
            assert_eq!(h.part_count, 2);
            assert_eq!(states.len(), (h.shard_hi - h.shard_lo) as usize);
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_a_typed_error() {
        let (_, _, files) = c17_parts(1);
        let full = &files[0];
        for cut in [0, 4, 9, 11, 20, 47, full.len() - 9, full.len() - 1] {
            let err = decode_part::<WelchAccumulator>(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, DistError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_a_checksum_error() {
        let (_, _, files) = c17_parts(1);
        let mut bytes = files[0].clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_part::<WelchAccumulator>(&bytes),
            Err(DistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn version_bump_is_a_version_error() {
        let (_, _, files) = c17_parts(1);
        let mut bytes = files[0].clone();
        bytes[8] = 0x7F; // version word, little-endian low byte
        assert!(matches!(
            decode_part::<WelchAccumulator>(&bytes),
            Err(DistError::VersionMismatch { found: 0x7F })
        ));
    }

    #[test]
    fn wrong_magic_and_wrong_kind_are_typed_errors() {
        let (_, _, files) = c17_parts(1);
        let mut bytes = files[0].clone();
        bytes[0] = b'X';
        assert!(matches!(
            decode_part::<WelchAccumulator>(&bytes),
            Err(DistError::BadMagic)
        ));
        assert!(matches!(
            decode_part::<polaris_sim::GateSamples>(&files[0]),
            Err(DistError::KindMismatch { found: 1, .. })
        ));
    }

    #[test]
    fn merge_rejects_incomplete_or_mixed_sets() {
        let (n, cfg, files) = c17_parts(2);
        fn slices(fs: &[Vec<u8>]) -> Vec<&[u8]> {
            fs.iter().map(Vec::as_slice).collect()
        }

        // Missing part.
        let err =
            merge_parts::<WelchAccumulator>(slices(&files[..1]).iter().copied(), None).unwrap_err();
        assert!(matches!(err, DistError::PlanMismatch(_)), "{err:?}");

        // Duplicate part.
        let dup = vec![files[0].clone(), files[0].clone()];
        let err = merge_parts::<WelchAccumulator>(slices(&dup).iter().copied(), None).unwrap_err();
        assert!(matches!(err, DistError::PlanMismatch(_)), "{err:?}");

        // Part from a different campaign.
        let other_cfg = CampaignConfig::new(600, 600, 6);
        let foreign = execute_part::<WelchAccumulator>(
            &n,
            &PowerModel::default(),
            &other_cfg,
            Parallelism::sequential(),
            1,
            2,
        )
        .unwrap();
        let mixed = vec![files[0].clone(), foreign];
        let err =
            merge_parts::<WelchAccumulator>(slices(&mixed).iter().copied(), None).unwrap_err();
        assert!(
            matches!(err, DistError::FingerprintMismatch { .. }),
            "{err:?}"
        );

        // Expected-fingerprint cross-check.
        let err = merge_parts::<WelchAccumulator>(slices(&files).iter().copied(), Some(0xDEAD))
            .unwrap_err();
        assert!(
            matches!(err, DistError::FingerprintMismatch { .. }),
            "{err:?}"
        );

        // The untouched set merges fine and matches the campaign.
        let merged = merge_parts::<WelchAccumulator>(slices(&files).iter().copied(), None).unwrap();
        merged_outcome(&n, &PowerModel::default(), &cfg, merged).unwrap();
    }

    #[test]
    fn mismatched_state_dimensions_are_rejected_before_folding() {
        // Two structurally valid parts that claim the same fingerprint but
        // carry different gate counts (i.e. forged or mis-assembled input)
        // must be refused by the merge, not silently truncated by the
        // accumulator fold.
        use polaris_tvla::StreamingMoments;
        let part = |index: u32, gates: usize| {
            let states = vec![WelchAccumulator::from_classes(
                vec![StreamingMoments::new(); gates],
                vec![StreamingMoments::new(); gates],
            )];
            encode_part(
                &PartHeader {
                    fingerprint: 0xF00D,
                    part_index: index,
                    part_count: 2,
                    shard_lo: index,
                    shard_hi: index + 1,
                    n_shards_total: 2,
                },
                &states,
            )
        };
        let files = [part(0, 3), part(1, 5)];
        let err =
            merge_parts::<WelchAccumulator>(files.iter().map(Vec::as_slice), None).unwrap_err();
        assert!(matches!(err, DistError::PlanMismatch(_)), "{err:?}");
        // Same dimensions fold fine.
        let files = [part(0, 3), part(1, 3)];
        merge_parts::<WelchAccumulator>(files.iter().map(Vec::as_slice), None).unwrap();
    }

    #[test]
    fn forged_payload_length_is_a_typed_error() {
        // A payload-length field of u64::MAX must not overflow the length
        // arithmetic (no panic, even in debug builds).
        let (_, _, files) = c17_parts(1);
        let mut bytes = files[0].clone();
        bytes[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_part::<WelchAccumulator>(&bytes).unwrap_err();
        assert!(matches!(err, DistError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn out_of_range_part_is_a_plan_error() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 100, 1);
        assert!(matches!(
            execute_part::<WelchAccumulator>(
                &n,
                &PowerModel::default(),
                &cfg,
                Parallelism::sequential(),
                5,
                2
            ),
            Err(DistError::PlanMismatch(_))
        ));
        // A zero-part plan is rejected up front rather than producing a
        // file whose header its own decoder would refuse.
        assert!(matches!(
            execute_part::<WelchAccumulator>(
                &n,
                &PowerModel::default(),
                &cfg,
                Parallelism::sequential(),
                0,
                0
            ),
            Err(DistError::PlanMismatch(_))
        ));
    }

    #[test]
    fn frame_reaching_into_the_checksum_trailer_is_malformed() {
        // A frame body length that extends past the declared payload (into
        // the checksum trailer) must be rejected as malformed — even when
        // the checksum is recomputed to match — never adopted as data.
        let header = PartHeader {
            fingerprint: 0xF00D,
            part_index: 0,
            part_count: 1,
            shard_lo: 0,
            shard_hi: 1,
            n_shards_total: 1,
        };
        let mut bytes = encode_part(&header, &[WelchAccumulator::new()]);
        // Layout: 48-byte header, 12-byte payload (index + len + 4-byte
        // empty-accumulator body), 8-byte checksum.
        assert_eq!(bytes.len(), 48 + 12 + 8);
        bytes[52..56].copy_from_slice(&12u32.to_le_bytes()); // body_len 4 → 12
        let checksum = fnv1a64(&bytes[8..60]);
        let end = bytes.len();
        bytes[end - 8..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode_part::<WelchAccumulator>(&bytes).unwrap_err();
        assert!(
            matches!(&err, DistError::Malformed(m) if m.contains("overruns")),
            "{err:?}"
        );
    }
}
