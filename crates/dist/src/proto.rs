//! Line-oriented message protocol of the live assessment service.
//!
//! Every message is one ASCII header line terminated by `\n`; messages that
//! carry a payload (submission manifests, task manifests, shard-state part
//! bytes, result artifacts) append the payload as a length-prefixed binary
//! blob immediately after the line:
//!
//! ```text
//! SUBMIT 1 1234\n<1234 manifest bytes>
//! TASK 7 5678\n<5678 task-manifest bytes>
//! DONE 7 90123\n<90123 PLRSHARD part bytes>
//! ```
//!
//! The framing is transport-agnostic (`BufRead`/`Write`), so the daemon,
//! workers, and clients all reuse one codec and the unit tests drive it
//! over in-memory buffers. As with the shard-state file format, everything
//! read is untrusted: header lines are length-capped, blob lengths are
//! bounded before allocation, and every malformed input maps to a typed
//! [`ProtoError`] — never a panic.
//!
//! ## Conversations
//!
//! A worker connection: `Hello` → `Welcome`, then a pull loop of `Next` →
//! (`Task` | `Idle` | `Shutdown`), with `Done`/`Fail` completing leases and
//! `Ping` keeping the heartbeat alive while a task executes. A client
//! connection: `Submit` → (`Result` | `Error`), or a bare `Shutdown` to
//! drain the daemon. Each `Next`/`Ping` doubles as a heartbeat: the daemon
//! reads worker sockets with a timeout, and a worker that stays silent past
//! it is declared lost and its leases re-issued.

use std::io::{BufRead, Read, Write};

/// Protocol version spoken by [`Message::Hello`] and [`Message::Submit`].
/// Exact-match policy, like the shard-state format: a daemon never guesses
/// at framing written by a different build.
pub const PROTO_VERSION: u16 = 1;

/// Longest accepted header line (bytes, excluding the newline).
pub const MAX_LINE_BYTES: usize = 1024;

/// Largest accepted payload blob. Bounds allocation on hostile input; real
/// submissions (netlist sources) and parts (shard-state bytes) sit far
/// below it.
pub const MAX_BLOB_BYTES: usize = 64 << 20;

/// A protocol failure, classified so CLI front-ends can map each class to
/// the documented `dist` exit codes.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (socket reset, timeout, broken pipe).
    Io(std::io::Error),
    /// The stream ended inside a message (mid-line or mid-blob).
    Truncated(&'static str),
    /// A header line that does not parse as any message.
    Malformed(String),
    /// A line or blob longer than the protocol allows.
    Oversized {
        /// What overflowed ("header line" or "payload blob").
        what: &'static str,
        /// Declared or observed length.
        len: usize,
        /// The protocol bound it broke.
        max: usize,
    },
    /// The peer speaks a different protocol version.
    Version {
        /// The version the peer announced.
        found: u16,
    },
}

impl ProtoError {
    /// The failure class as a `dist`-style exit code: 3 truncated,
    /// 4 malformed/oversized, 5 version skew, 1 transport.
    pub fn class(&self) -> u8 {
        match self {
            ProtoError::Io(_) => 1,
            ProtoError::Truncated(_) => 3,
            ProtoError::Malformed(_) | ProtoError::Oversized { .. } => 4,
            ProtoError::Version { .. } => 5,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport: {e}"),
            ProtoError::Truncated(what) => write!(f, "stream ended inside {what}"),
            ProtoError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            ProtoError::Oversized { what, len, max } => {
                write!(f, "{what} of {len} bytes exceeds the {max}-byte bound")
            }
            ProtoError::Version { found } => {
                write!(
                    f,
                    "peer speaks protocol v{found}, this build speaks v{PROTO_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated("a message payload")
        } else {
            ProtoError::Io(e)
        }
    }
}

/// Where a served result came from, reported in [`Message::Result`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultOrigin {
    /// Simulated for this submission.
    Computed,
    /// Served from the content-addressed fingerprint cache — no shard was
    /// simulated.
    Cached,
    /// Attached to an identical submission already in flight and served
    /// from its (single) simulation.
    Coalesced,
}

impl ResultOrigin {
    /// Wire token of the origin.
    pub fn name(self) -> &'static str {
        match self {
            ResultOrigin::Computed => "computed",
            ResultOrigin::Cached => "cached",
            ResultOrigin::Coalesced => "coalesced",
        }
    }

    /// Parses a wire token.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "computed" => Some(ResultOrigin::Computed),
            "cached" => Some(ResultOrigin::Cached),
            "coalesced" => Some(ResultOrigin::Coalesced),
            _ => None,
        }
    }
}

/// One protocol message, either direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Worker → daemon: register under `name` speaking `version`.
    Hello {
        /// Protocol version of the worker build.
        version: u16,
        /// Worker display name (token: letters, digits, `._-`).
        name: String,
    },
    /// Daemon → worker: registration accepted.
    Welcome {
        /// The daemon's id for this worker.
        worker: u64,
        /// Heartbeat budget: the worker must send a message at least this
        /// often or be declared lost.
        heartbeat_ms: u64,
    },
    /// Worker → daemon: request a task (also a heartbeat).
    Next,
    /// Worker → daemon: still alive while executing (heartbeat only).
    Ping,
    /// Daemon → worker: a leased task; blob is a task manifest.
    Task {
        /// Lease id, echoed back in `Done`/`Fail`.
        task: u64,
        /// Rendered task manifest.
        blob: Vec<u8>,
    },
    /// Daemon → worker: nothing to do right now; ask again shortly.
    Idle,
    /// Worker → daemon: the lease's shard-state part bytes.
    Done {
        /// Lease id from the `Task`.
        task: u64,
        /// Encoded `PLRSHARD` part covering the leased shard range.
        blob: Vec<u8>,
    },
    /// Worker → daemon: the lease failed; re-issue it elsewhere.
    Fail {
        /// Lease id from the `Task`.
        task: u64,
        /// Human-readable reason (rest of line).
        reason: String,
    },
    /// Client → daemon: a design submission; blob is a submission manifest.
    Submit {
        /// Protocol version of the client build.
        version: u16,
        /// Rendered submission manifest.
        blob: Vec<u8>,
    },
    /// Daemon → client: the merged assessment; blob is the result artifact
    /// (the per-gate leakage CSV).
    Result {
        /// Where the result came from.
        origin: ResultOrigin,
        /// Fixed-class traces the campaign consumed.
        fixed: u64,
        /// Random-class traces the campaign consumed.
        random: u64,
        /// Rounds executed.
        rounds: u64,
        /// Whether the adaptive rule stopped before the grid was exhausted.
        stopped_early: bool,
        /// Result artifact bytes.
        blob: Vec<u8>,
    },
    /// Daemon → client: the submission failed; `code` is the failure class
    /// (the `dist` exit-code table) for the client to exit with.
    Error {
        /// Failure-class exit code.
        code: u8,
        /// Human-readable reason (rest of line, newlines folded).
        message: String,
    },
    /// Client → daemon: stop accepting work and exit once sent. Daemon →
    /// worker: the service is draining; disconnect.
    Shutdown,
}

impl Message {
    /// Writes the message (header line plus any payload blob) and flushes,
    /// so a peer blocked in `read` always sees complete messages.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            Message::Hello { version, name } => {
                writeln!(w, "HELLO {version} {}", token(name))?;
            }
            Message::Welcome {
                worker,
                heartbeat_ms,
            } => writeln!(w, "WELCOME {worker} {heartbeat_ms}")?,
            Message::Next => writeln!(w, "NEXT")?,
            Message::Ping => writeln!(w, "PING")?,
            Message::Task { task, blob } => {
                writeln!(w, "TASK {task} {}", blob.len())?;
                w.write_all(blob)?;
            }
            Message::Idle => writeln!(w, "IDLE")?,
            Message::Done { task, blob } => {
                writeln!(w, "DONE {task} {}", blob.len())?;
                w.write_all(blob)?;
            }
            Message::Fail { task, reason } => {
                writeln!(w, "FAIL {task} {}", oneline(reason))?;
            }
            Message::Submit { version, blob } => {
                writeln!(w, "SUBMIT {version} {}", blob.len())?;
                w.write_all(blob)?;
            }
            Message::Result {
                origin,
                fixed,
                random,
                rounds,
                stopped_early,
                blob,
            } => {
                writeln!(
                    w,
                    "RESULT {} {fixed} {random} {rounds} {} {}",
                    origin.name(),
                    u8::from(*stopped_early),
                    blob.len()
                )?;
                w.write_all(blob)?;
            }
            Message::Error { code, message } => {
                writeln!(w, "ERROR {code} {}", oneline(message))?;
            }
            Message::Shutdown => writeln!(w, "SHUTDOWN")?,
        }
        w.flush()
    }

    /// Reads one message. `Ok(None)` is a clean end of stream at a message
    /// boundary; everything else that is not a complete well-formed message
    /// is a typed [`ProtoError`].
    ///
    /// # Errors
    ///
    /// [`ProtoError`] per failure class — transport, truncation, malformed
    /// header, oversized line/blob.
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Message>, ProtoError> {
        let Some(line) = read_line(r)? else {
            return Ok(None);
        };
        let mut parts = line.splitn(4, ' ');
        let word = parts.next().unwrap_or("");
        let msg = match word {
            "HELLO" => Message::Hello {
                version: field(parts.next(), "HELLO version")?,
                name: parts.next().unwrap_or("").to_string(),
            },
            "WELCOME" => Message::Welcome {
                worker: field(parts.next(), "WELCOME worker id")?,
                heartbeat_ms: field(parts.next(), "WELCOME heartbeat")?,
            },
            "NEXT" => Message::Next,
            "PING" => Message::Ping,
            "TASK" => Message::Task {
                task: field(parts.next(), "TASK id")?,
                blob: read_blob(r, field(parts.next(), "TASK blob length")?)?,
            },
            "IDLE" => Message::Idle,
            "DONE" => Message::Done {
                task: field(parts.next(), "DONE id")?,
                blob: read_blob(r, field(parts.next(), "DONE blob length")?)?,
            },
            "FAIL" => Message::Fail {
                task: field(parts.next(), "FAIL id")?,
                reason: rest(parts),
            },
            "SUBMIT" => Message::Submit {
                version: field(parts.next(), "SUBMIT version")?,
                blob: read_blob(r, field(parts.next(), "SUBMIT blob length")?)?,
            },
            "RESULT" => {
                // RESULT has six fields; re-split without the 4-token cap.
                let mut p = line.split(' ').skip(1);
                let origin = p
                    .next()
                    .and_then(ResultOrigin::from_name)
                    .ok_or_else(|| ProtoError::Malformed("bad RESULT origin".to_string()))?;
                let fixed = field(p.next(), "RESULT fixed")?;
                let random = field(p.next(), "RESULT random")?;
                let rounds = field(p.next(), "RESULT rounds")?;
                let stopped: u8 = field(p.next(), "RESULT stopped flag")?;
                let len: usize = field(p.next(), "RESULT blob length")?;
                Message::Result {
                    origin,
                    fixed,
                    random,
                    rounds,
                    stopped_early: stopped != 0,
                    blob: read_blob(r, len)?,
                }
            }
            "ERROR" => Message::Error {
                code: field(parts.next(), "ERROR code")?,
                message: rest(parts),
            },
            "SHUTDOWN" => Message::Shutdown,
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown message `{}`",
                    other.chars().take(32).collect::<String>()
                )))
            }
        };
        Ok(Some(msg))
    }
}

/// Joins the remaining `splitn` fields back into the rest-of-line text.
fn rest<'a>(parts: impl Iterator<Item = &'a str>) -> String {
    parts.collect::<Vec<_>>().join(" ")
}

/// Folds newlines out of free-text fields so they cannot break framing.
fn oneline(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Restricts a name to the token alphabet so it cannot break framing.
fn token(s: &str) -> String {
    let t: String = s
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        .take(64)
        .collect();
    if t.is_empty() {
        "anon".to_string()
    } else {
        t
    }
}

/// Parses one header field, naming it in the error.
fn field<T: std::str::FromStr>(part: Option<&str>, what: &str) -> Result<T, ProtoError> {
    part.and_then(|p| p.parse().ok())
        .ok_or_else(|| ProtoError::Malformed(format!("missing or malformed {what}")))
}

/// Reads one `\n`-terminated header line, bounded by [`MAX_LINE_BYTES`].
/// `Ok(None)` when the stream is cleanly at its end.
fn read_line(r: &mut impl BufRead) -> Result<Option<String>, ProtoError> {
    let mut buf = Vec::new();
    let n = (&mut *r)
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(ProtoError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if buf.len() > MAX_LINE_BYTES {
            ProtoError::Oversized {
                what: "header line",
                len: buf.len(),
                max: MAX_LINE_BYTES,
            }
        } else {
            ProtoError::Truncated("a header line")
        });
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ProtoError::Malformed("non-UTF-8 header line".to_string()))
}

/// Reads a length-prefixed payload blob, bounding allocation first.
fn read_blob(r: &mut impl BufRead, len: usize) -> Result<Vec<u8>, ProtoError> {
    if len > MAX_BLOB_BYTES {
        return Err(ProtoError::Oversized {
            what: "payload blob",
            len,
            max: MAX_BLOB_BYTES,
        });
    }
    let mut blob = vec![0u8; len];
    r.read_exact(&mut blob).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ProtoError::Truncated("a payload blob"),
        _ => ProtoError::Io(e),
    })?;
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) -> Message {
        let mut bytes = Vec::new();
        msg.write_to(&mut bytes).expect("write to vec");
        let mut r = std::io::Cursor::new(bytes);
        let back = Message::read_from(&mut r)
            .expect("read back")
            .expect("one message");
        assert_eq!(
            Message::read_from(&mut r).expect("clean end"),
            None,
            "no trailing bytes"
        );
        back
    }

    #[test]
    fn every_message_roundtrips() {
        let msgs = [
            Message::Hello {
                version: PROTO_VERSION,
                name: "w1".to_string(),
            },
            Message::Welcome {
                worker: 7,
                heartbeat_ms: 5000,
            },
            Message::Next,
            Message::Ping,
            Message::Task {
                task: 3,
                blob: b"task manifest".to_vec(),
            },
            Message::Idle,
            Message::Done {
                task: 3,
                blob: vec![0, 1, 2, 255],
            },
            Message::Fail {
                task: 3,
                reason: "fingerprint mismatch on shard 4".to_string(),
            },
            Message::Submit {
                version: PROTO_VERSION,
                blob: b"submission".to_vec(),
            },
            Message::Result {
                origin: ResultOrigin::Cached,
                fixed: 1500,
                random: 1500,
                rounds: 3,
                stopped_early: true,
                blob: b"gate,name,kind,t,leaky\n".to_vec(),
            },
            Message::Error {
                code: 4,
                message: "malformed submission".to_string(),
            },
            Message::Shutdown,
        ];
        for msg in &msgs {
            assert_eq!(&roundtrip(msg), msg, "roundtrip of {msg:?}");
        }
    }

    #[test]
    fn newlines_in_free_text_cannot_break_framing() {
        let msg = Message::Error {
            code: 1,
            message: "line one\nline two".to_string(),
        };
        let back = roundtrip(&msg);
        match back {
            Message::Error { code, message } => {
                assert_eq!(code, 1);
                assert_eq!(message, "line one line two");
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_a_clean_end() {
        let mut r = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(Message::read_from(&mut r).expect("clean"), None);
    }

    #[test]
    fn truncated_blob_is_typed() {
        let mut bytes = Vec::new();
        Message::Done {
            task: 1,
            blob: vec![9; 100],
        }
        .write_to(&mut bytes)
        .expect("write");
        bytes.truncate(bytes.len() - 40);
        let mut r = std::io::Cursor::new(bytes);
        let err = Message::read_from(&mut r).expect_err("truncated");
        assert!(matches!(err, ProtoError::Truncated(_)), "{err:?}");
        assert_eq!(err.class(), 3);
    }

    #[test]
    fn unterminated_header_line_is_truncated() {
        let mut r = std::io::Cursor::new(b"NEXT".to_vec());
        let err = Message::read_from(&mut r).expect_err("no newline");
        assert!(matches!(err, ProtoError::Truncated(_)), "{err:?}");
    }

    #[test]
    fn oversized_line_and_blob_are_rejected_before_allocation() {
        let long = format!("FAIL 1 {}\n", "x".repeat(2 * MAX_LINE_BYTES));
        let mut r = std::io::Cursor::new(long.into_bytes());
        let err = Message::read_from(&mut r).expect_err("line too long");
        assert!(matches!(err, ProtoError::Oversized { .. }), "{err:?}");
        assert_eq!(err.class(), 4);

        let lying = format!("DONE 1 {}\n", MAX_BLOB_BYTES + 1);
        let mut r = std::io::Cursor::new(lying.into_bytes());
        let err = Message::read_from(&mut r).expect_err("blob too large");
        assert!(matches!(err, ProtoError::Oversized { .. }), "{err:?}");
    }

    #[test]
    fn unknown_message_word_is_malformed() {
        let mut r = std::io::Cursor::new(b"FROBNICATE 1 2\n".to_vec());
        let err = Message::read_from(&mut r).expect_err("unknown word");
        assert!(matches!(err, ProtoError::Malformed(_)), "{err:?}");
        assert_eq!(err.class(), 4);
    }

    #[test]
    fn worker_names_are_token_sanitized() {
        let msg = Message::Hello {
            version: 1,
            name: "bad name\nwith breaks".to_string(),
        };
        match roundtrip(&msg) {
            Message::Hello { name, .. } => assert_eq!(name, "badnamewithbreaks"),
            other => panic!("wrong message {other:?}"),
        }
    }
}
