//! Byte-level primitives of the shard-state wire format: little-endian
//! fixed-width integers, bit-exact `f64` transport, and the FNV-1a-64
//! checksum. Everything here treats its input as untrusted — reads are
//! bounds-checked and report [`DistError::Truncated`] instead of panicking.

use crate::DistError;

/// FNV-1a-64 over a byte slice — the file checksum. FNV is not
/// cryptographic; it guards against truncation and bit rot, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (lossless for every value,
/// including subnormals, infinities, and NaN payloads).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Bounds-checked cursor over untrusted shard-state bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes `n` bytes, failing with [`DistError::Truncated`] (naming
    /// `context`) if fewer are left.
    pub fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], DistError> {
        if self.remaining() < n {
            return Err(DistError::Truncated {
                context: context.to_string(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &str) -> Result<u16, DistError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, context: &str) -> Result<u8, DistError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &str) -> Result<u32, DistError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &str) -> Result<u64, DistError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` transported as its bit pattern.
    pub fn f64(&mut self, context: &str) -> Result<f64, DistError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Guards a length-prefixed allocation: `count` elements of `elem_size`
    /// bytes must still be present in the input. Called before any
    /// `Vec::with_capacity` driven by untrusted counts, so a forged length
    /// cannot trigger an absurd allocation.
    pub fn expect_elements(
        &self,
        count: usize,
        elem_size: usize,
        context: &str,
    ) -> Result<(), DistError> {
        let needed = count.checked_mul(elem_size).ok_or_else(|| {
            DistError::Malformed(format!("{context}: element count {count} overflows"))
        })?;
        if self.remaining() < needed {
            return Err(DistError::Truncated {
                context: context.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn integers_round_trip() {
        let mut out = Vec::new();
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, 0x0123_4567_89AB_CDEF);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::NAN);
        let mut r = Reader::new(&out);
        assert_eq!(r.u16("a").unwrap(), 0xBEEF);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("e").unwrap().is_nan());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn short_reads_are_truncated_errors() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u32("field"),
            Err(DistError::Truncated { context }) if context == "field"
        ));
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn element_guard_blocks_forged_counts() {
        let r = Reader::new(&[0u8; 16]);
        assert!(r.expect_elements(2, 8, "ok").is_ok());
        assert!(matches!(
            r.expect_elements(3, 8, "big"),
            Err(DistError::Truncated { .. })
        ));
        assert!(matches!(
            r.expect_elements(usize::MAX, 8, "overflow"),
            Err(DistError::Malformed(_))
        ));
    }
}
