//! The live-worker assessment service: submissions, task leases, and the
//! crash-safe coordinator fold.
//!
//! This module is the socket-agnostic core of `polaris-cli serve`. A
//! [`Submission`] (a design source plus campaign parameters, shipped as a
//! line-oriented manifest) becomes a *job*; the [`Coordinator`] leases
//! contiguous shard ranges of the job's grid to registered live workers as
//! [`TaskSpec`]s, ingests the `PLRSHARD` part each lease returns, and folds
//! the per-shard states **strictly in ascending grid order** — the same
//! canonical left fold as [`polaris_sim::run_campaign_parallel`] and the
//! offline [`crate::merge_parts`]. Adaptive submissions additionally replay
//! the round-checkpoint schedule of the in-process engine: after each
//! `shards_per_round`-shard prefix folds, the cells-scoped
//! [`SequentialStopping`] rule is consulted exactly as
//! [`polaris_tvla::campaign_outcome_adaptive`] would, so the stop round, the
//! consumed trace counts, and every t-statistic are **byte-identical** to a
//! single-process run — regardless of which worker ran which shards, in what
//! order the parts arrived, or how often a lease was re-issued after a
//! worker crash.
//!
//! # Crash safety and replay idempotence
//!
//! Worker loss is handled by re-leasing: the daemon detects a silent worker
//! (heartbeat timeout or EOF) and calls [`Coordinator::worker_lost`], which
//! returns the worker's outstanding shard ranges to the queue. Because a
//! part is validated (fingerprint, grid size, exact lease range, checksum)
//! before any state is adopted, and because ingestion drops shard indices
//! that are already folded or already pending, a *replayed* part — the
//! original worker finishing late, or two workers racing the same re-issued
//! range — changes nothing: shard states are pure functions of
//! `(netlist, model, config, grid index)`, so the first and second copy are
//! bit-identical and only one is ever folded.
//!
//! # Result cache and coalescing
//!
//! Completed jobs land in a content-addressed cache keyed by
//! `(campaign fingerprint, assessment mode)`: resubmitting an identical
//! design + campaign is served without simulating a single shard, and an
//! identical submission arriving *while* the first is still running attaches
//! to the in-flight job instead of spawning a second one. The mode component
//! keeps adaptive and fixed-budget assessments of the same campaign distinct
//! (their outputs differ even though the fingerprint agrees).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use polaris_netlist::{parse_bench, parse_netlist, Netlist};
use polaris_obs::{Payload, SharedRecorder};
use polaris_sim::campaign::{
    run_shard_states, shard_grid, splitmix64, CampaignConfig, CampaignStats, Checkpoint,
    MergeableSink, Parallelism, Population, ShardSpec, StoppingRule,
};
use polaris_sim::PowerModel;
use polaris_tvla::{SequentialConfig, SequentialStopping, WelchAccumulator};

use crate::part::{decode_part, encode_part, PartHeader};
use crate::plan::campaign_fingerprint;
use crate::DistError;

/// Heartbeat budget the daemon grants workers at registration: a worker that
/// stays silent (no `Next`/`Ping`) for longer is declared lost and its
/// leases are re-issued.
pub const DEFAULT_HEARTBEAT_MS: u64 = 5_000;

/// Largest submission source the service accepts (bytes).
pub const MAX_SOURCE_BYTES: usize = 8 << 20;

/// Largest per-class trace budget the service accepts.
pub const MAX_TRACES_PER_CLASS: usize = 2_000_000;

/// Largest cycles-per-trace the service accepts.
pub const MAX_CYCLES: usize = 1024;

/// Shard-range cap per lease: bounds how much work one slow or dying worker
/// can strand, and how much speculation past an adaptive stop boundary is
/// in flight.
const MAX_LEASE_SHARDS: usize = 64;

/// Lease failures (worker `Fail` or invalid parts) a job survives before it
/// is settled as failed — re-issuing a deterministically failing task
/// forever would wedge the service.
const MAX_JOB_FAILURES: u32 = 3;

const SUBMISSION_HEADER: &str = "polaris-serve-submission v1";
const TASK_HEADER: &str = "polaris-serve-task v1";

/// Netlist source dialect of a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesignFormat {
    /// ISCAS `.bench` format.
    Bench,
    /// The structural-Verilog subset.
    Verilog,
}

impl DesignFormat {
    /// Wire token of the format.
    pub fn name(self) -> &'static str {
        match self {
            DesignFormat::Bench => "bench",
            DesignFormat::Verilog => "verilog",
        }
    }

    /// Parses a wire token.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "bench" => Some(DesignFormat::Bench),
            "verilog" => Some(DesignFormat::Verilog),
            _ => None,
        }
    }

    /// Parses a design source in this format.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] when the source does not parse.
    pub fn parse(self, source: &str) -> Result<Netlist, DistError> {
        match self {
            DesignFormat::Bench => parse_bench(source),
            DesignFormat::Verilog => parse_netlist(source),
        }
        .map_err(|e| DistError::Malformed(format!("design source: {e}")))
    }
}

/// A client's design submission: the netlist source plus everything needed
/// to reconstruct the campaign. Ships as a line-oriented manifest
/// ([`Submission::render`] / [`Submission::parse`]) in the blob of a
/// `SUBMIT` message.
///
/// The service assesses with the default [`PowerModel`] (like the CLI);
/// the power model is part of the campaign fingerprint, so daemon and
/// workers agreeing on the build means agreeing on the model.
#[derive(Clone, Debug, PartialEq)]
pub struct Submission {
    /// Accounting principal (token: letters, digits, `._-`).
    pub tenant: String,
    /// Display name of the design (token).
    pub name: String,
    /// Source dialect of `source`.
    pub format: DesignFormat,
    /// Traces per TVLA class (budget, for adaptive submissions).
    pub traces: usize,
    /// Campaign master seed.
    pub seed: u64,
    /// Clock cycles per trace.
    pub cycles: usize,
    /// Unit-delay (glitch) timing model.
    pub glitch: bool,
    /// Run the sequential-stopping engine instead of the fixed budget.
    pub adaptive: bool,
    /// Adaptive clean-verdict confidence, in `(0, 1)`.
    pub confidence: f64,
    /// The netlist source text.
    pub source: String,
}

impl Submission {
    /// The campaign configuration the submission describes.
    pub fn campaign(&self) -> CampaignConfig {
        let mut c =
            CampaignConfig::new(self.traces, self.traces, self.seed).with_cycles(self.cycles);
        if self.glitch {
            c = c.with_glitches();
        }
        c
    }

    /// Bounds-checks every field — the daemon-side guard that a hostile
    /// manifest cannot request an absurd simulation or carry tokens that
    /// would break downstream framing.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] naming the offending field.
    pub fn validate(&self) -> Result<(), DistError> {
        let bad = |why: String| DistError::Malformed(format!("submission: {why}"));
        if !is_token(&self.tenant) {
            return Err(bad(format!("tenant `{}` is not a token", self.tenant)));
        }
        if !is_token(&self.name) {
            return Err(bad(format!("name `{}` is not a token", self.name)));
        }
        if self.traces == 0 || self.traces > MAX_TRACES_PER_CLASS {
            return Err(bad(format!(
                "traces {} outside 1..={MAX_TRACES_PER_CLASS}",
                self.traces
            )));
        }
        if self.cycles == 0 || self.cycles > MAX_CYCLES {
            return Err(bad(format!(
                "cycles {} outside 1..={MAX_CYCLES}",
                self.cycles
            )));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(bad(format!(
                "confidence {} outside (0, 1)",
                self.confidence
            )));
        }
        if self.source.is_empty() {
            return Err(bad("empty design source".into()));
        }
        if self.source.len() > MAX_SOURCE_BYTES {
            return Err(bad(format!(
                "design source of {} bytes exceeds the {MAX_SOURCE_BYTES}-byte bound",
                self.source.len()
            )));
        }
        Ok(())
    }

    /// Renders the submission manifest (manifest lines, then the raw source
    /// as a length-prefixed tail).
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(SUBMISSION_HEADER);
        out.push('\n');
        out.push_str(&format!("tenant {}\n", self.tenant));
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("format {}\n", self.format.name()));
        out.push_str(&format!("traces {}\n", self.traces));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("cycles {}\n", self.cycles));
        out.push_str(&format!("glitch {}\n", u8::from(self.glitch)));
        out.push_str(&format!("adaptive {}\n", u8::from(self.adaptive)));
        out.push_str(&format!("confidence {}\n", self.confidence));
        out.push_str(&format!("source {}\n", self.source.len()));
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(self.source.as_bytes());
        bytes
    }

    /// Parses a manifest produced by [`Submission::render`] and validates
    /// its fields.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] on any structural or bounds problem.
    pub fn parse(blob: &[u8]) -> Result<Self, DistError> {
        let mut m = Manifest::open(blob, "submission", SUBMISSION_HEADER)?;
        let mut tenant = None;
        let mut name = None;
        let mut format = None;
        let mut traces = None;
        let mut seed = None;
        let mut cycles = None;
        let mut glitch = None;
        let mut adaptive = None;
        let mut confidence = None;
        let source = loop {
            let (key, value) = m.field()?;
            match key {
                "tenant" => m.set(&mut tenant, key, value.to_string())?,
                "name" => m.set(&mut name, key, value.to_string())?,
                "format" => {
                    let f = DesignFormat::from_name(value)
                        .ok_or_else(|| m.bad(format!("unknown format `{value}`")))?;
                    m.set(&mut format, key, f)?;
                }
                "traces" => {
                    let v = m.int(key, value)?;
                    m.set(&mut traces, key, v)?;
                }
                "seed" => {
                    let v = m.u64(key, value)?;
                    m.set(&mut seed, key, v)?;
                }
                "cycles" => {
                    let v = m.int(key, value)?;
                    m.set(&mut cycles, key, v)?;
                }
                "glitch" => {
                    let v = m.flag(key, value)?;
                    m.set(&mut glitch, key, v)?;
                }
                "adaptive" => {
                    let v = m.flag(key, value)?;
                    m.set(&mut adaptive, key, v)?;
                }
                "confidence" => {
                    let v: f64 = value
                        .parse()
                        .map_err(|_| m.bad(format!("bad confidence `{value}`")))?;
                    m.set(&mut confidence, key, v)?;
                }
                "source" => break m.source_tail(value)?,
                other => return Err(m.bad(format!("unknown key `{other}`"))),
            }
        };
        let sub = Submission {
            tenant: m.require(tenant, "tenant")?,
            name: m.require(name, "name")?,
            format: m.require(format, "format")?,
            traces: m.require(traces, "traces")?,
            seed: m.require(seed, "seed")?,
            cycles: m.require(cycles, "cycles")?,
            glitch: m.require(glitch, "glitch")?,
            adaptive: m.require(adaptive, "adaptive")?,
            confidence: m.require(confidence, "confidence")?,
            source: source.to_string(),
        };
        sub.validate()?;
        Ok(sub)
    }
}

/// One leased unit of work: the campaign parameters (so the worker can
/// rebuild the exact engine), the shard range to execute, and the design
/// source itself — workers are stateless and need no local files. Ships in
/// the blob of a `TASK` message.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpec {
    /// Source dialect of `source`.
    pub format: DesignFormat,
    /// Traces per TVLA class of the full campaign.
    pub traces: usize,
    /// Campaign master seed.
    pub seed: u64,
    /// Clock cycles per trace.
    pub cycles: usize,
    /// Unit-delay (glitch) timing model.
    pub glitch: bool,
    /// [`campaign_fingerprint`] the worker must reproduce before simulating.
    pub fingerprint: u64,
    /// Total shards in the campaign grid.
    pub n_shards: usize,
    /// First grid index of the leased range.
    pub shard_lo: usize,
    /// One-past-last grid index of the leased range.
    pub shard_hi: usize,
    /// The netlist source text.
    pub source: String,
}

impl TaskSpec {
    /// The campaign configuration the task describes.
    pub fn campaign(&self) -> CampaignConfig {
        let mut c =
            CampaignConfig::new(self.traces, self.traces, self.seed).with_cycles(self.cycles);
        if self.glitch {
            c = c.with_glitches();
        }
        c
    }

    /// Renders the task manifest.
    pub fn render(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(TASK_HEADER);
        out.push('\n');
        out.push_str(&format!("format {}\n", self.format.name()));
        out.push_str(&format!("traces {}\n", self.traces));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("cycles {}\n", self.cycles));
        out.push_str(&format!("glitch {}\n", u8::from(self.glitch)));
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!(
            "shards {} {} {}\n",
            self.n_shards, self.shard_lo, self.shard_hi
        ));
        out.push_str(&format!("source {}\n", self.source.len()));
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(self.source.as_bytes());
        bytes
    }

    /// Parses a manifest produced by [`TaskSpec::render`].
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] on any structural problem.
    pub fn parse(blob: &[u8]) -> Result<Self, DistError> {
        let mut m = Manifest::open(blob, "task", TASK_HEADER)?;
        let mut format = None;
        let mut traces = None;
        let mut seed = None;
        let mut cycles = None;
        let mut glitch = None;
        let mut fingerprint = None;
        let mut shards = None;
        let source = loop {
            let (key, value) = m.field()?;
            match key {
                "format" => {
                    let f = DesignFormat::from_name(value)
                        .ok_or_else(|| m.bad(format!("unknown format `{value}`")))?;
                    m.set(&mut format, key, f)?;
                }
                "traces" => {
                    let v = m.int(key, value)?;
                    m.set(&mut traces, key, v)?;
                }
                "seed" => {
                    let v = m.u64(key, value)?;
                    m.set(&mut seed, key, v)?;
                }
                "cycles" => {
                    let v = m.int(key, value)?;
                    m.set(&mut cycles, key, v)?;
                }
                "glitch" => {
                    let v = m.flag(key, value)?;
                    m.set(&mut glitch, key, v)?;
                }
                "fingerprint" => {
                    let v = u64::from_str_radix(value, 16)
                        .map_err(|_| m.bad(format!("bad fingerprint `{value}`")))?;
                    m.set(&mut fingerprint, key, v)?;
                }
                "shards" => {
                    let fields: Vec<&str> = value.split(' ').collect();
                    if fields.len() != 3 {
                        return Err(m.bad(format!("`shards` takes total lo hi, got `{value}`")));
                    }
                    let total = m.int("shards total", fields[0])?;
                    let lo = m.int("shards lo", fields[1])?;
                    let hi = m.int("shards hi", fields[2])?;
                    if lo > hi || hi > total {
                        return Err(m.bad(format!("shard range {lo}..{hi} of {total} grid")));
                    }
                    m.set(&mut shards, key, (total, lo, hi))?;
                }
                "source" => break m.source_tail(value)?,
                other => return Err(m.bad(format!("unknown key `{other}`"))),
            }
        };
        let (n_shards, shard_lo, shard_hi) = m.require(shards, "shards")?;
        Ok(TaskSpec {
            format: m.require(format, "format")?,
            traces: m.require(traces, "traces")?,
            seed: m.require(seed, "seed")?,
            cycles: m.require(cycles, "cycles")?,
            glitch: m.require(glitch, "glitch")?,
            fingerprint: m.require(fingerprint, "fingerprint")?,
            n_shards,
            shard_lo,
            shard_hi,
            source: source.to_string(),
        })
    }

    /// Executes the leased shard range — the whole body of a serve worker:
    /// parse the design, rebuild the campaign, verify the fingerprint and
    /// grid against the coordinator's, simulate the range, and encode the
    /// snapshots as a single-part `PLRSHARD` file.
    ///
    /// # Errors
    ///
    /// [`DistError::FingerprintMismatch`] when this build derives a
    /// different campaign than the coordinator planned;
    /// [`DistError::PlanMismatch`] for a range outside the grid;
    /// [`DistError::Malformed`] / [`DistError::Sim`] for unparsable or
    /// unlevelizable designs.
    pub fn execute(&self, parallelism: Parallelism) -> Result<Vec<u8>, DistError> {
        let netlist = self.format.parse(&self.source)?;
        let model = PowerModel::default();
        let config = self.campaign();
        let found = campaign_fingerprint(&netlist, &model, &config);
        if found != self.fingerprint {
            return Err(DistError::FingerprintMismatch {
                expected: self.fingerprint,
                found,
            });
        }
        let grid_len = shard_grid(&config).len();
        if grid_len != self.n_shards || self.shard_lo > self.shard_hi || self.shard_hi > grid_len {
            return Err(DistError::PlanMismatch(format!(
                "task leases shards {}..{} of a {}-shard grid, campaign produces {grid_len}",
                self.shard_lo, self.shard_hi, self.n_shards
            )));
        }
        let states: Vec<WelchAccumulator> = run_shard_states(
            &netlist,
            &model,
            &config,
            parallelism,
            self.shard_lo..self.shard_hi,
        )?;
        Ok(encode_part(
            &PartHeader {
                fingerprint: self.fingerprint,
                part_index: 0,
                part_count: 1,
                shard_lo: self.shard_lo as u32,
                shard_hi: self.shard_hi as u32,
                n_shards_total: grid_len as u32,
            },
            &states,
        ))
    }
}

/// A completed assessment: the canonical fold plus everything the daemon
/// needs to render result artifacts (the netlist for gate names, the stats
/// for the consumption report).
#[derive(Clone, Debug)]
pub struct JobResult {
    /// [`campaign_fingerprint`] of the assessed campaign.
    pub fingerprint: u64,
    /// The submitted design, parsed.
    pub netlist: Netlist,
    /// Trace/round consumption (fixed budget: one full round; adaptive: the
    /// engine's stop boundary).
    pub stats: CampaignStats,
    /// The accumulator folded over every consumed shard in grid order —
    /// byte-identical to the single-process run.
    pub sink: WelchAccumulator,
}

/// What [`Coordinator::submit`] decided about a submission.
#[derive(Clone, Debug)]
pub enum SubmitOutcome {
    /// Served from the fingerprint cache — no shard was simulated.
    Cached(Arc<JobResult>),
    /// Queued for the worker fleet.
    Queued {
        /// Job id to poll via [`Coordinator::job_status`].
        job: u64,
        /// True when the submission attached to an identical job already in
        /// flight instead of creating a new one.
        coalesced: bool,
    },
}

/// Lifecycle state of a job id.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// No such job.
    Unknown,
    /// Still leasing/folding.
    Running,
    /// Folded to completion.
    Done(Arc<JobResult>),
    /// Settled as failed after repeated lease failures.
    Failed {
        /// Failure-class exit code (the `dist` table).
        code: u8,
        /// Human-readable reason.
        message: String,
    },
}

/// Per-tenant accounting the daemon reports at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions received (including cached and coalesced ones).
    pub submissions: u64,
    /// Submissions served from the fingerprint cache.
    pub cache_hits: u64,
    /// Submissions attached to an in-flight identical job.
    pub coalesced: u64,
    /// Shards simulated on this tenant's behalf (attributed to the tenant
    /// whose submission created the job).
    pub shards: u64,
    /// Traces simulated on this tenant's behalf.
    pub traces: u64,
    /// Jobs that settled as failed.
    pub failed: u64,
}

struct WorkerEntry {
    name: String,
    lost: bool,
    completed: u64,
}

struct Lease {
    job: u64,
    range: Range<usize>,
    worker: u64,
    issued: Instant,
}

struct Job {
    key: (u64, u64),
    tenants: Vec<String>,
    netlist: Netlist,
    config: CampaignConfig,
    fingerprint: u64,
    format: DesignFormat,
    source: String,
    grid: Vec<ShardSpec>,
    rule: Option<SequentialStopping>,
    shards_per_round: usize,
    planned_rounds: usize,
    /// Next never-leased grid index.
    cursor: usize,
    /// Ranges returned by lost/failed leases, re-issued before `cursor`
    /// advances (they block the fold).
    requeue: VecDeque<Range<usize>>,
    /// The canonical left fold over `0..next_fold`.
    acc: Option<WelchAccumulator>,
    /// Decoded shard states waiting for their turn in the ascending fold.
    pending: BTreeMap<usize, WelchAccumulator>,
    next_fold: usize,
    round_start: usize,
    stats: CampaignStats,
    /// One-past-last grid index the job will fold: the grid length, shrunk
    /// to the stop boundary when the adaptive rule fires.
    stop_bound: usize,
    failures: u32,
    leases_done: u64,
    started: Instant,
}

impl Job {
    fn finished(&self) -> bool {
        self.next_fold >= self.stop_bound
    }
}

/// The daemon-side job/worker state machine. Deliberately free of any I/O:
/// the `serve` front-end wires it to sockets and threads; the unit tests
/// drive it directly, playing both sides.
pub struct Coordinator {
    recorder: SharedRecorder,
    workers: HashMap<u64, WorkerEntry>,
    jobs: BTreeMap<u64, Job>,
    leases: HashMap<u64, Lease>,
    /// Content-addressed results: `(fingerprint, mode) → result`.
    cache: HashMap<(u64, u64), Arc<JobResult>>,
    /// Running jobs by cache key, for coalescing.
    in_flight: HashMap<(u64, u64), u64>,
    /// Terminal states of finished job ids (kept for waiters; a serve
    /// session's job count is small).
    settled: HashMap<u64, JobStatus>,
    tenants: BTreeMap<String, TenantStats>,
    next_worker: u64,
    next_job: u64,
    next_lease: u64,
}

impl Default for Coordinator {
    fn default() -> Self {
        Coordinator::new(polaris_obs::shared_null())
    }
}

impl Coordinator {
    /// A coordinator reporting scheduling/merge events to `recorder`.
    pub fn new(recorder: SharedRecorder) -> Self {
        Coordinator {
            recorder,
            workers: HashMap::new(),
            jobs: BTreeMap::new(),
            leases: HashMap::new(),
            cache: HashMap::new(),
            in_flight: HashMap::new(),
            settled: HashMap::new(),
            tenants: BTreeMap::new(),
            next_worker: 1,
            next_job: 1,
            next_lease: 1,
        }
    }

    /// Registers a live worker and returns its id. A worker that reconnects
    /// after being declared lost registers again under a fresh id.
    pub fn register_worker(&mut self, name: &str) -> u64 {
        let id = self.next_worker;
        self.next_worker += 1;
        self.workers.insert(
            id,
            WorkerEntry {
                name: name.to_string(),
                lost: false,
                completed: 0,
            },
        );
        id
    }

    /// Declares a worker lost (heartbeat timeout or EOF on the daemon side)
    /// and returns its outstanding leases to the queue for re-issue.
    pub fn worker_lost(&mut self, worker: u64) {
        if let Some(w) = self.workers.get_mut(&worker) {
            w.lost = true;
        }
        let stale: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.worker == worker)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            let lease = self.leases.remove(&id).expect("lease id just listed");
            if let Some(job) = self.jobs.get_mut(&lease.job) {
                requeue_range(job, lease.range);
            }
        }
    }

    /// Accepts a submission: served from the cache, coalesced onto an
    /// identical in-flight job, or queued as a new job.
    ///
    /// # Errors
    ///
    /// [`DistError::Malformed`] for out-of-bounds fields or an unparsable
    /// design source.
    pub fn submit(&mut self, sub: &Submission) -> Result<SubmitOutcome, DistError> {
        sub.validate()?;
        let netlist = sub.format.parse(&sub.source)?;
        let config = sub.campaign();
        let fingerprint = campaign_fingerprint(&netlist, &PowerModel::default(), &config);
        let key = (fingerprint, mode_digest(sub));
        let tenant = self.tenants.entry(sub.tenant.clone()).or_default();
        tenant.submissions += 1;
        if let Some(result) = self.cache.get(&key) {
            tenant.cache_hits += 1;
            return Ok(SubmitOutcome::Cached(Arc::clone(result)));
        }
        if let Some(&job_id) = self.in_flight.get(&key) {
            tenant.coalesced += 1;
            let job = self.jobs.get_mut(&job_id).expect("in-flight job is active");
            if !job.tenants.contains(&sub.tenant) {
                job.tenants.push(sub.tenant.clone());
            }
            return Ok(SubmitOutcome::Queued {
                job: job_id,
                coalesced: true,
            });
        }

        let grid = shard_grid(&config);
        // The adaptive service replays the exact engine schedule: the
        // cells-scoped sequential rule at its configured checkpoint
        // granularity; fixed submissions are one never-stopping round, like
        // `run_campaign_parallel`.
        let (rule, shards_per_round) = if sub.adaptive {
            let seq = SequentialConfig::with_confidence(sub.confidence);
            (
                Some(SequentialStopping::scoped(seq, netlist.cell_ids())),
                seq.shards_per_round.max(1),
            )
        } else {
            (None, usize::MAX)
        };
        let planned_rounds = grid.len().div_ceil(shards_per_round).max(1);
        let job_id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            job_id,
            Job {
                key,
                tenants: vec![sub.tenant.clone()],
                netlist,
                config,
                fingerprint,
                format: sub.format,
                source: sub.source.clone(),
                stop_bound: grid.len(),
                grid,
                rule,
                shards_per_round,
                planned_rounds,
                cursor: 0,
                requeue: VecDeque::new(),
                acc: None,
                pending: BTreeMap::new(),
                next_fold: 0,
                round_start: 0,
                stats: CampaignStats {
                    planned_rounds,
                    ..CampaignStats::default()
                },
                failures: 0,
                leases_done: 0,
                started: Instant::now(),
            },
        );
        self.in_flight.insert(key, job_id);
        Ok(SubmitOutcome::Queued {
            job: job_id,
            coalesced: false,
        })
    }

    /// Leases the next shard range to `worker`, or `None` when no job has
    /// work available. Lease sizes adapt to the observed queue depth and
    /// worker count (deeper queues and fewer workers mean longer leases, up
    /// to the re-issue-cost cap); adaptive jobs additionally cap leases at
    /// one checkpoint round so speculation past a stop boundary stays
    /// bounded.
    pub fn next_task(&mut self, worker: u64) -> Option<(u64, TaskSpec)> {
        if self.workers.get(&worker).is_none_or(|w| w.lost) {
            return None;
        }
        let live_workers = self.workers.values().filter(|w| !w.lost).count().max(1);
        let job_ids: Vec<u64> = self.jobs.keys().copied().collect();
        let mut issued: Option<(u64, TaskSpec)> = None;
        for id in job_ids {
            let job = self.jobs.get_mut(&id).expect("job id just listed");
            if job.finished() {
                continue;
            }
            let range = if let Some(r) = job.requeue.pop_front() {
                if r.len() > MAX_LEASE_SHARDS {
                    job.requeue.push_front(r.start + MAX_LEASE_SHARDS..r.end);
                    r.start..r.start + MAX_LEASE_SHARDS
                } else {
                    r
                }
            } else if job.cursor < job.stop_bound {
                let available = job.stop_bound - job.cursor;
                let cap = if job.rule.is_some() {
                    MAX_LEASE_SHARDS.min(job.shards_per_round)
                } else {
                    MAX_LEASE_SHARDS
                };
                let len = (available / live_workers).clamp(1, cap).min(available);
                let r = job.cursor..job.cursor + len;
                job.cursor = r.end;
                r
            } else {
                continue;
            };
            let lease_id = self.next_lease;
            self.next_lease += 1;
            let spec = TaskSpec {
                format: job.format,
                traces: job.config.n_fixed,
                seed: job.config.seed,
                cycles: job.config.cycles,
                glitch: job.config.delay_model == polaris_sim::campaign::DelayModel::UnitDelay,
                fingerprint: job.fingerprint,
                n_shards: job.grid.len(),
                shard_lo: range.start,
                shard_hi: range.end,
                source: job.source.clone(),
            };
            self.leases.insert(
                lease_id,
                Lease {
                    job: id,
                    range,
                    worker,
                    issued: Instant::now(),
                },
            );
            issued = Some((lease_id, spec));
            break;
        }
        if self.recorder.enabled() {
            self.recorder.record(Payload::QueueDepth {
                depth: self.unleased_shards() as u64,
                jobs_remaining: self.jobs.values().filter(|j| !j.finished()).count() as u64,
            });
        }
        issued
    }

    /// Ingests the part a lease returned: validate, dedup, fold ascending,
    /// fire round checkpoints, and settle the job when its fold completes.
    /// Unknown lease ids (a lost worker finishing late, a duplicate replay)
    /// are ignored — the fold is idempotent.
    ///
    /// # Errors
    ///
    /// The part's [`DistError`] when it fails validation; the lease range is
    /// returned to the queue, so the job still converges (until the job's
    /// failure budget runs out and it settles as failed).
    pub fn complete_task(&mut self, lease: u64, part: &[u8]) -> Result<(), DistError> {
        let Some(lease_info) = self.leases.remove(&lease) else {
            return Ok(());
        };
        if let Some(w) = self.workers.get_mut(&lease_info.worker) {
            w.completed += 1;
        }
        let Some(job) = self.jobs.get_mut(&lease_info.job) else {
            return Ok(());
        };
        let validated = decode_part::<WelchAccumulator>(part).and_then(|(header, states)| {
            if header.fingerprint != job.fingerprint {
                return Err(DistError::FingerprintMismatch {
                    expected: job.fingerprint,
                    found: header.fingerprint,
                });
            }
            if header.n_shards_total as usize != job.grid.len()
                || (header.shard_lo as usize, header.shard_hi as usize)
                    != (lease_info.range.start, lease_info.range.end)
            {
                return Err(DistError::PlanMismatch(format!(
                    "part covers shards {}..{} of {}, lease was {}..{} of {}",
                    header.shard_lo,
                    header.shard_hi,
                    header.n_shards_total,
                    lease_info.range.start,
                    lease_info.range.end,
                    job.grid.len()
                )));
            }
            Ok(states)
        });
        let states = match validated {
            Ok(states) => states,
            Err(e) => {
                requeue_range(job, lease_info.range);
                job.failures += 1;
                if job.failures >= MAX_JOB_FAILURES {
                    let message = format!("job failed after {MAX_JOB_FAILURES} bad parts: {e}");
                    self.settle_failed(lease_info.job, e.exit_class(), message);
                }
                return Err(e);
            }
        };

        // Replay-safe ingest: indices already folded or already pending are
        // dropped — shard states are pure functions of the campaign, so a
        // second copy is bit-identical and folding it twice would be the
        // only way to diverge.
        for (offset, state) in states.into_iter().enumerate() {
            let index = lease_info.range.start + offset;
            if index >= job.next_fold {
                job.pending.entry(index).or_insert(state);
            }
        }
        let fold_start = Instant::now();
        let folded = advance_fold(job);
        job.leases_done += 1;
        let job_finished = job.finished();
        if self.recorder.enabled() {
            self.recorder.record(Payload::PlanExec {
                part: lease,
                parts: job.leases_done,
                shard_lo: lease_info.range.start as u64,
                shard_hi: lease_info.range.end as u64,
                wall_ns: lease_info.issued.elapsed().as_nanos() as u64,
            });
            if folded > 0 {
                self.recorder.record(Payload::MergeFold {
                    part: lease,
                    shards: folded as u64,
                    wall_ns: fold_start.elapsed().as_nanos() as u64,
                });
            }
        }
        if job_finished {
            self.settle_done(lease_info.job);
        }
        Ok(())
    }

    /// Handles a worker's `Fail` for a lease: the range is re-queued, and
    /// the job settles as failed once its failure budget is exhausted.
    pub fn fail_task(&mut self, lease: u64, reason: &str) {
        let Some(lease_info) = self.leases.remove(&lease) else {
            return;
        };
        let exhausted = match self.jobs.get_mut(&lease_info.job) {
            Some(job) => {
                requeue_range(job, lease_info.range);
                job.failures += 1;
                job.failures >= MAX_JOB_FAILURES
            }
            None => false,
        };
        if exhausted {
            let message = format!("job failed after {MAX_JOB_FAILURES} lease failures: {reason}");
            self.settle_failed(lease_info.job, 1, message);
        }
    }

    /// Lifecycle state of a job id.
    pub fn job_status(&self, job: u64) -> JobStatus {
        if self.jobs.contains_key(&job) {
            return JobStatus::Running;
        }
        self.settled
            .get(&job)
            .cloned()
            .unwrap_or(JobStatus::Unknown)
    }

    /// Whether any job still needs lease or fold work.
    pub fn has_active_jobs(&self) -> bool {
        !self.jobs.is_empty()
    }

    /// Per-tenant accounting, sorted by tenant name.
    pub fn tenant_summary(&self) -> Vec<(String, TenantStats)> {
        self.tenants
            .iter()
            .map(|(name, stats)| (name.clone(), *stats))
            .collect()
    }

    /// Per-worker `(name, completed leases, lost)` rows, in registration
    /// order.
    pub fn worker_summary(&self) -> Vec<(String, u64, bool)> {
        let mut ids: Vec<&u64> = self.workers.keys().collect();
        ids.sort();
        ids.iter()
            .map(|id| {
                let w = &self.workers[id];
                (w.name.clone(), w.completed, w.lost)
            })
            .collect()
    }

    /// Shards queued but not currently leased, across all jobs.
    fn unleased_shards(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| !j.finished())
            .map(|j| {
                (j.stop_bound - j.cursor.min(j.stop_bound))
                    + j.requeue.iter().map(ExactSizeIterator::len).sum::<usize>()
            })
            .sum()
    }

    fn settle_done(&mut self, job_id: u64) {
        let mut job = self.jobs.remove(&job_id).expect("finished job is active");
        let shards = job.next_fold as u64;
        let traces = job.stats.traces_used() as u64;
        if let Some(first) = job.tenants.first() {
            let tenant = self.tenants.entry(first.clone()).or_default();
            tenant.shards += shards;
            tenant.traces += traces;
        }
        let result = Arc::new(JobResult {
            fingerprint: job.fingerprint,
            netlist: job.netlist,
            stats: job.stats,
            sink: job.acc.take().unwrap_or_default(),
        });
        self.cache.insert(job.key, Arc::clone(&result));
        self.in_flight.remove(&job.key);
        self.settled.insert(job_id, JobStatus::Done(result));
        if self.recorder.enabled() {
            self.recorder.record(Payload::MergeDone {
                parts: job.leases_done,
                shards,
                wall_ns: job.started.elapsed().as_nanos() as u64,
            });
        }
    }

    fn settle_failed(&mut self, job_id: u64, code: u8, message: String) {
        let Some(job) = self.jobs.remove(&job_id) else {
            return;
        };
        self.in_flight.remove(&job.key);
        for t in &job.tenants {
            self.tenants.entry(t.clone()).or_default().failed += 1;
        }
        self.settled
            .insert(job_id, JobStatus::Failed { code, message });
    }
}

/// The cache-key mode component: fixed-budget and adaptive assessments of
/// the same campaign produce different outputs (the adaptive one depends on
/// the confidence level too), so they must never share a cache slot.
fn mode_digest(sub: &Submission) -> u64 {
    if sub.adaptive {
        splitmix64(sub.confidence.to_bits()) | 1
    } else {
        0
    }
}

/// Returns a lease's shard range to its job's queue, clipped to the part of
/// the grid that still matters: the already-folded prefix never needs to
/// re-run, and nothing past the stop boundary will be folded.
fn requeue_range(job: &mut Job, range: Range<usize>) {
    let lo = range.start.max(job.next_fold);
    let hi = range.end.min(job.stop_bound);
    if lo < hi {
        job.requeue.push_back(lo..hi);
    }
}

/// Advances a job's canonical fold as far as the pending states allow,
/// firing round checkpoints exactly as the in-process engine does. Returns
/// the number of shards folded.
fn advance_fold(job: &mut Job) -> usize {
    let mut folded = 0usize;
    while !job.finished() {
        let Some(state) = job.pending.remove(&job.next_fold) else {
            break;
        };
        match &mut job.acc {
            None => job.acc = Some(state),
            Some(acc) => acc.merge(state),
        }
        job.next_fold += 1;
        folded += 1;
        let boundary = job
            .round_start
            .saturating_add(job.shards_per_round)
            .min(job.grid.len());
        if job.next_fold != boundary {
            continue;
        }
        // A round just completed: account its traces, then consult the rule
        // under exactly the engine's guard (never after the last round).
        for shard in &job.grid[job.round_start..boundary] {
            match shard.population() {
                Population::Fixed => job.stats.fixed_traces += shard.count(),
                Population::Random => job.stats.random_traces += shard.count(),
            }
        }
        job.round_start = boundary;
        job.stats.rounds += 1;
        if job.stats.rounds < job.planned_rounds {
            let checkpoint = Checkpoint {
                sink: job.acc.as_ref().expect("non-empty round folds a sink"),
                round: job.stats.rounds,
                planned_rounds: job.planned_rounds,
                fixed_traces: job.stats.fixed_traces,
                random_traces: job.stats.random_traces,
                planned_fixed: job.config.n_fixed,
                planned_random: job.config.n_random,
            };
            let stop = match &mut job.rule {
                Some(rule) => rule.should_stop(&checkpoint),
                None => false,
            };
            if stop {
                job.stats.stopped_early = true;
                job.stop_bound = job.next_fold;
                job.cursor = job.cursor.max(job.stop_bound);
                job.pending.clear();
                job.requeue.clear();
            }
        }
    }
    folded
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Shared line-walking parser of the two service manifests. Tracks its byte
/// position so the length-prefixed source tail can be taken verbatim.
struct Manifest<'a> {
    what: &'static str,
    text: &'a str,
    pos: usize,
}

impl<'a> Manifest<'a> {
    fn open(blob: &'a [u8], what: &'static str, header: &str) -> Result<Self, DistError> {
        let text = std::str::from_utf8(blob)
            .map_err(|_| DistError::Malformed(format!("{what} manifest: not UTF-8")))?;
        let mut m = Manifest { what, text, pos: 0 };
        match m.line() {
            Some(l) if l == header => Ok(m),
            other => Err(m.bad(format!("expected header `{header}`, found {other:?}"))),
        }
    }

    fn bad(&self, why: String) -> DistError {
        DistError::Malformed(format!("{} manifest: {why}", self.what))
    }

    fn line(&mut self) -> Option<&'a str> {
        if self.pos >= self.text.len() {
            return None;
        }
        let rest = &self.text[self.pos..];
        match rest.find('\n') {
            Some(i) => {
                self.pos += i + 1;
                Some(&rest[..i])
            }
            None => {
                self.pos = self.text.len();
                Some(rest)
            }
        }
    }

    /// The next `key value` line.
    fn field(&mut self) -> Result<(&'a str, &'a str), DistError> {
        let Some(line) = self.line() else {
            return Err(self.bad("missing `source` line".into()));
        };
        match line.split_once(' ') {
            Some((key, value)) if !key.is_empty() && !value.is_empty() => Ok((key, value)),
            _ => Err(self.bad(format!("bad line `{line}`"))),
        }
    }

    /// Consumes the length-prefixed source tail; it must be exactly the
    /// declared number of bytes.
    fn source_tail(&mut self, len_field: &str) -> Result<&'a str, DistError> {
        let declared: usize = len_field
            .parse()
            .map_err(|_| self.bad(format!("bad source length `{len_field}`")))?;
        let tail = &self.text[self.pos..];
        if tail.len() != declared {
            return Err(self.bad(format!(
                "source declares {declared} bytes, {} present",
                tail.len()
            )));
        }
        Ok(tail)
    }

    fn set<T>(&self, slot: &mut Option<T>, key: &str, value: T) -> Result<(), DistError> {
        if slot.is_some() {
            return Err(self.bad(format!("duplicate key `{key}`")));
        }
        *slot = Some(value);
        Ok(())
    }

    fn require<T>(&self, slot: Option<T>, key: &str) -> Result<T, DistError> {
        slot.ok_or_else(|| self.bad(format!("missing key `{key}`")))
    }

    fn int(&self, key: &str, value: &str) -> Result<usize, DistError> {
        value
            .parse()
            .map_err(|_| self.bad(format!("bad {key} `{value}`")))
    }

    fn u64(&self, key: &str, value: &str) -> Result<u64, DistError> {
        value
            .parse()
            .map_err(|_| self.bad(format!("bad {key} `{value}`")))
    }

    fn flag(&self, key: &str, value: &str) -> Result<bool, DistError> {
        match value {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(self.bad(format!("bad {key} flag `{value}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ShardState;
    use polaris_netlist::{generators, write_bench};
    use polaris_sim::run_campaign_parallel;
    use polaris_tvla::campaign_outcome_adaptive;

    fn c17_submission(tenant: &str, adaptive: bool) -> Submission {
        Submission {
            tenant: tenant.to_string(),
            name: "c17".to_string(),
            format: DesignFormat::Bench,
            traces: if adaptive { 6000 } else { 600 },
            seed: if adaptive { 11 } else { 5 },
            cycles: 1,
            glitch: false,
            adaptive,
            confidence: 0.95,
            source: write_bench(&generators::iscas_c17()),
        }
    }

    fn sink_bytes(sink: &WelchAccumulator) -> Vec<u8> {
        let mut bytes = Vec::new();
        sink.encode_body(&mut bytes);
        bytes
    }

    /// Plays a full worker fleet against the coordinator: pulls and executes
    /// leases for each worker id in round-robin until every job settles.
    fn drain(coordinator: &mut Coordinator, workers: &[u64]) {
        while coordinator.has_active_jobs() {
            let mut progressed = false;
            for &w in workers {
                if let Some((lease, spec)) = coordinator.next_task(w) {
                    let part = spec.execute(Parallelism::sequential()).expect("executes");
                    coordinator.complete_task(lease, &part).expect("ingests");
                    progressed = true;
                }
            }
            assert!(progressed, "live workers but no leases for active jobs");
        }
    }

    #[test]
    fn submission_manifest_round_trips() {
        let sub = c17_submission("alice", true);
        let parsed = Submission::parse(&sub.render()).unwrap();
        assert_eq!(parsed, sub);
    }

    #[test]
    fn task_manifest_round_trips() {
        let spec = TaskSpec {
            format: DesignFormat::Bench,
            traces: 600,
            seed: 5,
            cycles: 1,
            glitch: true,
            fingerprint: 0xDEAD_BEEF,
            n_shards: 6,
            shard_lo: 2,
            shard_hi: 5,
            source: write_bench(&generators::iscas_c17()),
        };
        let parsed = TaskSpec::parse(&spec.render()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        let good = String::from_utf8(c17_submission("alice", false).render()).unwrap();
        for mangle in [
            good.replace("polaris-serve-submission v1", "polaris-serve-submission v9"),
            good.replace("traces 600", "traces 0"),
            good.replace("traces 600", "traces banana"),
            good.replace("cycles 1", "cycles 4096"),
            good.replace("confidence 0.95", "confidence 1.5"),
            good.replace("glitch 0", "glitch maybe"),
            good.replace("seed 5\n", ""),
            good.replace("seed 5", "seed 5\nseed 6"),
            good.replace("format bench", "format parquet"),
            good.replace("tenant alice", "tenant ../../etc"),
            good.replacen("source ", "source 1", 1),
        ] {
            let err = Submission::parse(mangle.as_bytes()).unwrap_err();
            assert!(
                matches!(err, DistError::Malformed(_)),
                "should reject ({err:?}):\n{mangle}"
            );
        }
        assert!(matches!(
            Submission::parse(&[0xFF, 0xFE, 0x00]),
            Err(DistError::Malformed(_))
        ));
        // Reference sanity: the unmangled manifest parses.
        Submission::parse(good.as_bytes()).unwrap();
    }

    #[test]
    fn task_execution_verifies_the_fingerprint() {
        let mut coordinator = Coordinator::default();
        let w = coordinator.register_worker("w1");
        coordinator.submit(&c17_submission("alice", false)).unwrap();
        let (_, mut spec) = coordinator.next_task(w).expect("a lease");
        spec.seed += 1; // a worker handed a diverging campaign must refuse
        assert!(matches!(
            spec.execute(Parallelism::sequential()),
            Err(DistError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn fixed_distributed_run_is_byte_identical_to_single_process() {
        let sub = c17_submission("alice", false);
        let netlist = sub.format.parse(&sub.source).unwrap();
        let config = sub.campaign();
        let reference: WelchAccumulator = run_campaign_parallel(
            &netlist,
            &PowerModel::default(),
            &config,
            Parallelism::sequential(),
        )
        .unwrap();

        let mut coordinator = Coordinator::default();
        let workers = [
            coordinator.register_worker("w1"),
            coordinator.register_worker("w2"),
        ];
        let job = match coordinator.submit(&sub).unwrap() {
            SubmitOutcome::Queued { job, coalesced } => {
                assert!(!coalesced);
                job
            }
            other => panic!("expected a queued job, got {other:?}"),
        };

        // Pull every lease up front, then complete them in *reverse* order
        // — the fold must wait for the ascending prefix, not adopt states
        // in arrival order.
        let mut leases = Vec::new();
        loop {
            let mut pulled = false;
            for &w in &workers {
                if let Some((lease, spec)) = coordinator.next_task(w) {
                    leases.push((lease, spec.execute(Parallelism::sequential()).unwrap()));
                    pulled = true;
                }
            }
            if !pulled {
                break;
            }
        }
        assert!(leases.len() >= 2, "c17 at 600/class splits across leases");
        for (lease, part) in leases.iter().rev() {
            coordinator.complete_task(*lease, part).unwrap();
        }
        // Replaying an already-folded part changes nothing (unknown lease).
        let (lease0, part0) = &leases[0];
        coordinator.complete_task(*lease0, part0).unwrap();

        let result = match coordinator.job_status(job) {
            JobStatus::Done(result) => result,
            other => panic!("expected a settled job, got {other:?}"),
        };
        assert_eq!(sink_bytes(&result.sink), sink_bytes(&reference));
        assert_eq!(
            result.stats,
            CampaignStats {
                fixed_traces: 600,
                random_traces: 600,
                rounds: 1,
                planned_rounds: 1,
                stopped_early: false,
            }
        );
    }

    #[test]
    fn adaptive_run_with_worker_loss_matches_the_engine() {
        let sub = c17_submission("alice", true);
        let netlist = sub.format.parse(&sub.source).unwrap();
        let config = sub.campaign();
        let seq = SequentialConfig::with_confidence(sub.confidence);
        let reference = campaign_outcome_adaptive(
            &netlist,
            &PowerModel::default(),
            &config,
            Parallelism::sequential(),
            &seq,
        )
        .unwrap();
        assert!(reference.stats.stopped_early, "{:?}", reference.stats);

        let mut coordinator = Coordinator::default();
        let doomed = coordinator.register_worker("doomed");
        let survivor = coordinator.register_worker("survivor");
        let job = match coordinator.submit(&sub).unwrap() {
            SubmitOutcome::Queued { job, .. } => job,
            other => panic!("expected a queued job, got {other:?}"),
        };

        // The first worker takes a lease and dies mid-plan without ever
        // completing it; its range must be re-issued and the outcome must
        // not change.
        let (_lost_lease, lost_spec) = coordinator.next_task(doomed).expect("a lease");
        assert_eq!(lost_spec.shard_lo, 0, "first lease starts the grid");
        coordinator.worker_lost(doomed);
        drain(&mut coordinator, &[survivor]);

        let result = match coordinator.job_status(job) {
            JobStatus::Done(result) => result,
            other => panic!("expected a settled job, got {other:?}"),
        };
        assert_eq!(result.stats, reference.stats);
        assert_eq!(sink_bytes(&result.sink), sink_bytes(&reference.sink));
        let (a, b) = (result.sink.leakage(), reference.sink.leakage());
        for id in netlist.ids() {
            assert_eq!(a.result(id).t.to_bits(), b.result(id).t.to_bits());
        }
    }

    #[test]
    fn identical_submissions_coalesce_then_hit_the_cache() {
        let sub = c17_submission("alice", false);
        let mut coordinator = Coordinator::default();
        let w = coordinator.register_worker("w1");
        let first = match coordinator.submit(&sub).unwrap() {
            SubmitOutcome::Queued { job, coalesced } => {
                assert!(!coalesced);
                job
            }
            other => panic!("expected a queued job, got {other:?}"),
        };
        // Identical submission while in flight: same job, no second
        // simulation.
        let twin = Submission {
            tenant: "bob".to_string(),
            ..sub.clone()
        };
        match coordinator.submit(&twin).unwrap() {
            SubmitOutcome::Queued { job, coalesced } => {
                assert_eq!(job, first);
                assert!(coalesced);
            }
            other => panic!("expected coalescing, got {other:?}"),
        }
        drain(&mut coordinator, &[w]);

        // Resubmission after completion: served from the cache.
        let cached = match coordinator.submit(&sub).unwrap() {
            SubmitOutcome::Cached(result) => result,
            other => panic!("expected a cache hit, got {other:?}"),
        };
        match coordinator.job_status(first) {
            JobStatus::Done(result) => {
                assert_eq!(sink_bytes(&result.sink), sink_bytes(&cached.sink));
            }
            other => panic!("expected a settled job, got {other:?}"),
        }
        // The adaptive flavour of the same campaign is a different cache
        // key: it must queue, not hit.
        let adaptive = Submission {
            adaptive: true,
            ..sub.clone()
        };
        assert!(matches!(
            coordinator.submit(&adaptive).unwrap(),
            SubmitOutcome::Queued {
                coalesced: false,
                ..
            }
        ));

        let tenants = coordinator.tenant_summary();
        let alice = &tenants.iter().find(|(n, _)| n == "alice").unwrap().1;
        assert_eq!(alice.submissions, 3);
        assert_eq!(alice.cache_hits, 1);
        assert!(alice.shards > 0 && alice.traces == 1200);
        let bob = &tenants.iter().find(|(n, _)| n == "bob").unwrap().1;
        assert_eq!(bob.coalesced, 1);
        assert_eq!(bob.shards, 0, "coalesced tenants ride along for free");
    }

    #[test]
    fn corrupt_parts_are_requeued_and_bounded() {
        let sub = c17_submission("alice", false);
        let mut coordinator = Coordinator::default();
        let w = coordinator.register_worker("w1");
        coordinator.submit(&sub).unwrap();

        // A corrupted part is a typed error and the range is re-issued; the
        // job still converges.
        let (lease, spec) = coordinator.next_task(w).expect("a lease");
        let mut part = spec.execute(Parallelism::sequential()).unwrap();
        let mid = part.len() / 2;
        part[mid] ^= 0x40;
        assert!(matches!(
            coordinator.complete_task(lease, &part),
            Err(DistError::ChecksumMismatch { .. })
        ));
        drain(&mut coordinator, &[w]);

        // A job whose leases keep failing settles as failed instead of
        // looping forever.
        let doomed = Submission {
            seed: 999,
            ..sub.clone()
        };
        let job = match coordinator.submit(&doomed).unwrap() {
            SubmitOutcome::Queued { job, .. } => job,
            other => panic!("expected a queued job, got {other:?}"),
        };
        for _ in 0..MAX_JOB_FAILURES {
            let (lease, _) = coordinator.next_task(w).expect("a re-issued lease");
            coordinator.fail_task(lease, "worker exploded");
        }
        match coordinator.job_status(job) {
            JobStatus::Failed { code, message } => {
                assert_eq!(code, 1);
                assert!(message.contains("worker exploded"), "{message}");
            }
            other => panic!("expected a failed job, got {other:?}"),
        }
        assert!(!coordinator.has_active_jobs());
    }
}
