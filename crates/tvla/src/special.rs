//! Special functions needed for exact t-test p-values and sequential
//! boundaries: log-gamma, the regularized incomplete beta function, the
//! complementary error function with the normal CDF/quantile built on it,
//! and the O'Brien–Fleming alpha-spending boundaries used by the adaptive
//! campaign engine's repeated-look correction.
//!
//! Implemented from the classic Lanczos / continued-fraction formulations so
//! the crate has no numeric dependencies.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    // Lanczos coefficients (g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction, with the symmetry transform for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "betai x must lie in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical-Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `dof` degrees of freedom:
/// `p = I_{ν/(ν+t²)}(ν/2, 1/2)`.
///
/// # Panics
///
/// Panics if `dof <= 0`.
pub fn student_t_two_sided_p(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = dof / (dof + t * t);
    betai(dof / 2.0, 0.5, x)
}

// --- Normal distribution ----------------------------------------------------

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (converges fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by Lentz continued fraction
/// (converges fast for `x >= a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Complementary error function `erfc(x)` to near machine precision via the
/// regularized incomplete gamma identities `erf(x) = P(1/2, x²)`,
/// `erfc(x) = Q(1/2, x²)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x == 0.0 {
        return 1.0;
    }
    let x2 = x * x;
    if x2 < 1.5 {
        1.0 - gamma_p_series(0.5, x2)
    } else {
        gamma_q_cf(0.5, x2)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal upper tail `1 − Φ(x)`, computed without cancellation.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)`: Acklam's rational approximation
/// refined by one Halley step against the exact [`normal_cdf`], giving
/// near machine precision over `(0, 1)`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile domain is (0, 1)");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.38357751867269e2,
        -3.066479806614716e1,
        2.506628277459239,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e1,
        1.615858368580409e2,
        -1.556989798598866e2,
        6.680131188771972e1,
        -1.328068155288572e1,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838,
        -2.549732539343734,
        4.374664141464968,
        2.938163982698783,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-3,
        3.224671290700398e-1,
        2.445134137142996,
        3.754408661907416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the exact CDF. Skipped in the far
    // tails where exp(x²/2) would overflow — Acklam alone is ~1e-9 there.
    if x.abs() > 8.0 {
        return x;
    }
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

// --- Sequential (group-sequential) boundaries -------------------------------

/// O'Brien–Fleming-style alpha-spending function: the cumulative two-sided
/// false-positive probability `α(t)` a sequential test may have spent by
/// information fraction `t ∈ [0, 1]`,
/// `α(t) = 2·(1 − Φ(Φ⁻¹(1 − α/2) / √t))`.
///
/// Spends almost nothing at early looks and the full `α` at `t = 1`, which
/// is what makes early checkpoints conservative.
pub fn alpha_spent_obf(alpha: f64, t: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
    // Below f64 epsilon `1 − α/2` is exactly 1: nothing can ever be spent.
    if t <= 0.0 || alpha < 1e-15 {
        return 0.0;
    }
    if t >= 1.0 {
        return alpha;
    }
    let q = normal_quantile(1.0 - alpha / 2.0);
    2.0 * normal_sf(q / t.sqrt())
}

/// Two-sided z boundary for the look covering information fractions
/// `(t_prev, t_now]`: the increment `α(t_now) − α(t_prev)` of the
/// O'Brien–Fleming spending function is allotted to this look, and the
/// boundary is `Φ⁻¹(1 − spend/2)`.
///
/// Returns `f64::INFINITY` when the increment underflows (very early looks
/// with tight `alpha`) — no confidence-based decision is possible there.
pub fn sequential_boundary(alpha: f64, t_prev: f64, t_now: f64) -> f64 {
    let spend = (alpha_spent_obf(alpha, t_now) - alpha_spent_obf(alpha, t_prev)).max(0.0);
    // Below f64 epsilon `1 − spend/2` rounds to exactly 1: the boundary is
    // unreachable at this look.
    if spend < 1e-15 {
        return f64::INFINITY;
    }
    normal_quantile(1.0 - spend / 2.0)
}

/// Per-look z boundaries of a `looks`-checkpoint sequential test at equal
/// information fractions `k / looks`, with O'Brien–Fleming alpha-spending.
///
/// # Panics
///
/// Panics if `looks == 0`.
pub fn sequential_boundaries(alpha: f64, looks: usize) -> Vec<f64> {
    assert!(looks >= 1, "at least one look");
    (1..=looks)
        .map(|k| {
            sequential_boundary(
                alpha,
                (k - 1) as f64 / looks as f64,
                k as f64 / looks as f64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, f) in facts.iter().enumerate() {
            let got = ln_gamma((i + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-10, "Γ({}) wrong", i + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = betai(a, b, x);
            let rhs = 1.0 - betai(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_pvalue_matches_normal_at_high_dof() {
        // For ν → ∞ the t distribution approaches the normal;
        // 2·(1 − Φ(4.5)) ≈ 6.795e-6 — the paper's 99.999 % confidence claim.
        let p = student_t_two_sided_p(4.5, 100_000.0);
        assert!(p < 1e-5, "p = {p}");
        assert!(p > 1e-6, "p = {p}");
    }

    #[test]
    fn t_pvalue_textbook_values() {
        // t = 2.0, ν = 10: two-sided p ≈ 0.0734.
        let p = student_t_two_sided_p(2.0, 10.0);
        assert!((p - 0.0734).abs() < 0.001, "p = {p}");
        // t = 0: p = 1.
        assert!((student_t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_pvalue_monotone_in_t() {
        let mut last = 1.0;
        for t in [0.5, 1.0, 2.0, 3.0, 4.5, 6.0] {
            let p = student_t_two_sided_p(t, 50.0);
            assert!(p < last, "p should fall as |t| grows");
            last = p;
        }
    }

    #[test]
    fn erfc_matches_reference_values() {
        // Reference: IEEE-754 doubles from an independent erfc (C99 libm).
        assert!((erfc(0.5) - 0.4795001221869535).abs() < 1e-14);
        assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-14);
        assert!((erfc(2.5) - 0.0004069520174449589).abs() < 1e-16);
        assert!((erfc(0.0) - 1.0).abs() < 1e-15);
        assert!((erfc(-1.0) - (2.0 - 0.15729920705028513)).abs() < 1e-14);
    }

    #[test]
    fn normal_cdf_and_quantile_invert_each_other() {
        assert!((normal_cdf(1.23) - 0.890651447574308).abs() < 1e-13);
        assert!((normal_quantile(0.9) - 1.2815515655446004).abs() < 1e-11);
        assert!((normal_quantile(0.975) - 1.9599639845400532).abs() < 1e-11);
        assert!((normal_quantile(0.995) - 2.575829303548897).abs() < 1e-11);
        for p in [1e-6, 0.01, 0.3, 0.5, 0.77, 0.999, 1.0 - 1e-9] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-12, "p = {p}");
        }
        assert!((normal_sf(4.5) - (1.0 - normal_cdf(4.5))).abs() < 1e-16);
    }

    #[test]
    fn obf_spending_endpoints_and_monotonicity() {
        let alpha = 0.05;
        assert_eq!(alpha_spent_obf(alpha, 0.0), 0.0);
        assert!((alpha_spent_obf(alpha, 1.0) - alpha).abs() < 1e-15);
        // Hand-computed interior values (Φ via erfc, q = Φ⁻¹(0.975)):
        // α(0.25) = erfc(1.9599639845400532/√(2·0.25)) = 8.857543832140478e-5
        // α(0.5)  = erfc(1.9599639845400532/√(2·0.5))  = 0.005574596680784436
        assert!((alpha_spent_obf(alpha, 0.25) - 8.857543832140478e-5).abs() < 1e-16);
        assert!((alpha_spent_obf(alpha, 0.5) - 0.005574596680784436).abs() < 1e-14);
        // α(0.01, 0.5) = 0.0002697169566314889
        assert!((alpha_spent_obf(0.01, 0.5) - 0.0002697169566314889).abs() < 1e-15);
        let mut last = 0.0;
        for k in 1..=10 {
            let s = alpha_spent_obf(alpha, k as f64 / 10.0);
            assert!(s >= last, "spending must be non-decreasing");
            last = s;
        }
    }

    /// Golden boundaries, independently computed (two-sided O'Brien–Fleming
    /// spending, increment per look, boundary z = Φ⁻¹(1 − spend/2)):
    ///
    /// ```text
    /// α = 0.05, K = 2: [2.771807648699343, 2.0100546668740655]
    /// α = 0.05, K = 3: [3.3947572022284254, 2.416099551149819,
    ///                   2.124536185738445]
    /// α = 0.05, K = 4: [3.9199279690800806, 2.777017575309407,
    ///                   2.3645800769988954, 2.2206470164356924]
    /// α = 0.01, K = 4: [5.151658607077083, 3.643019167862315,
    ///                   3.0037491133593504, 2.6938340813279193]
    /// ```
    #[test]
    fn sequential_boundaries_golden_values() {
        let cases: [(f64, &[f64]); 4] = [
            (0.05, &[2.771807648699343, 2.0100546668740655]),
            (
                0.05,
                &[3.3947572022284254, 2.416099551149819, 2.124536185738445],
            ),
            (
                0.05,
                &[
                    3.9199279690800806,
                    2.777017575309407,
                    2.3645800769988954,
                    2.2206470164356924,
                ],
            ),
            (
                0.01,
                &[
                    5.151658607077083,
                    3.643019167862315,
                    3.0037491133593504,
                    2.6938340813279193,
                ],
            ),
        ];
        for (alpha, want) in cases {
            let got = sequential_boundaries(alpha, want.len());
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() < 1e-9, "alpha={alpha}: got {g}, want {w}");
            }
        }
    }

    #[test]
    fn sequential_boundaries_decrease_across_looks() {
        // OBF boundaries are strict early and relax toward Φ⁻¹(1 − α/2).
        for alpha in [0.05, 0.01, 0.001] {
            let zs = sequential_boundaries(alpha, 6);
            for w in zs.windows(2) {
                assert!(w[0] > w[1], "alpha={alpha}: {zs:?}");
            }
            assert!(*zs.last().unwrap() > normal_quantile(1.0 - alpha / 2.0));
        }
    }

    #[test]
    fn sequential_boundary_underflow_is_infinite() {
        // A first look at 1 % information with α = 1e-9 spends less than
        // f64 can represent — the boundary must be unreachable, not NaN.
        let z = sequential_boundary(1e-9, 0.0, 0.01);
        assert!(z.is_infinite() && z > 0.0);
    }
}
