//! Special functions needed for exact t-test p-values: log-gamma and the
//! regularized incomplete beta function.
//!
//! Implemented from the classic Lanczos / continued-fraction formulations so
//! the crate has no numeric dependencies.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    // Lanczos coefficients (g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction, with the symmetry transform for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "betai x must lie in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical-Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a Student-t statistic with `dof` degrees of freedom:
/// `p = I_{ν/(ν+t²)}(ν/2, 1/2)`.
///
/// # Panics
///
/// Panics if `dof <= 0`.
pub fn student_t_two_sided_p(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if !t.is_finite() {
        return 0.0;
    }
    let x = dof / (dof + t * t);
    betai(dof / 2.0, 0.5, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, f) in facts.iter().enumerate() {
            let got = ln_gamma((i + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-10, "Γ({}) wrong", i + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betai_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = betai(a, b, x);
            let rhs = 1.0 - betai(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_pvalue_matches_normal_at_high_dof() {
        // For ν → ∞ the t distribution approaches the normal;
        // 2·(1 − Φ(4.5)) ≈ 6.795e-6 — the paper's 99.999 % confidence claim.
        let p = student_t_two_sided_p(4.5, 100_000.0);
        assert!(p < 1e-5, "p = {p}");
        assert!(p > 1e-6, "p = {p}");
    }

    #[test]
    fn t_pvalue_textbook_values() {
        // t = 2.0, ν = 10: two-sided p ≈ 0.0734.
        let p = student_t_two_sided_p(2.0, 10.0);
        assert!((p - 0.0734).abs() < 0.001, "p = {p}");
        // t = 0: p = 1.
        assert!((student_t_two_sided_p(0.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_pvalue_monotone_in_t() {
        let mut last = 1.0;
        for t in [0.5, 1.0, 2.0, 3.0, 4.5, 6.0] {
            let p = student_t_two_sided_p(t, 50.0);
            assert!(p < last, "p should fall as |t| grows");
            last = p;
        }
    }
}
