//! Trivariate (true third-order) TVLA — streaming co-moment engine.
//!
//! A 3-share masked implementation (ISW order 2, DOM) forces the adversary
//! to combine *three* probe points. The third-order test therefore
//! preprocesses each trace into the product of three class-centered
//! samples, `y = (e₁ − μ₁)(e₂ − μ₂)(e₃ − μ₃)`, followed by Welch's t-test
//! between the fixed and random classes (Schneider–Moradi, higher-order
//! univariate/multivariate ladder).
//!
//! # Streaming, mergeable trivariate co-moments
//!
//! [`TripleMoments`] is the three-variable sibling of
//! [`crate::bivariate::PairMoments`]: it maintains the central co-moments
//! `C_pqr = Σ (x − μx)^p (y − μy)^q (z − μz)^r` for every multi-index with
//! `p, q, r ≤ 2` and total degree ≥ 2 (23 sums), about the *running* means.
//! Where `PairMoments` spells out six hand-derived recurrences, the 23
//! trivariate ones come from one exact recentering identity: central
//! co-moments about a shifted mean are a binomial convolution of the
//! co-moments about the old mean,
//!
//! ```text
//! C'_α(side) = Σ_{β ≤ α} Π_i C(α_i, β_i) · (μ_side,i − μ'_i)^{α_i − β_i} · C_β(side)
//! ```
//!
//! with the virtual entries `C_000 = n` and `C_β = 0` for `|β| = 1` (central
//! first moments vanish). Merging two accumulators recenters both sides
//! about the combined mean and adds; pushing one sample is merging with a
//! singleton. The combination loop runs in one fixed order, so the result
//! is deterministic in floating point — any fixed sequence of pushes and
//! merges produces the same bits on every thread count and lane width,
//! which is what the campaign engine's shard-ordered fold relies on.
//!
//! `C₁₁₁` and `C₂₂₂` are exactly the sums the centered-triple-product t
//! needs (`mean = C₁₁₁/n`, `Σ (p − p̄)² = C₂₂₂ − C₁₁₁²/n`); the other 21
//! co-moments are carried because the recentering convolution consumes them
//! — dropping any would make the accumulator non-mergeable. A whole
//! third-order sweep thus runs single-pass in `O(gate-triples)` memory,
//! sharded and merged bit-identically like every other [`MergeableSink`]
//! (see [`TripleAccumulator`]).

use polaris_netlist::{GateId, Netlist};
use polaris_sim::campaign::{
    run_campaign_parallel_with, CampaignConfig, EnergyBatch, MergeableSink, Parallelism,
    Population, TraceSink,
};
use polaris_sim::power::PowerModel;

use crate::bivariate::MultivariateError;
use crate::welch::WelchResult;

/// The 23 tracked multi-indices `(p, q, r)` with `p, q, r ≤ 2` and total
/// degree ≥ 2, in lexicographic order — the canonical iteration *and* wire
/// order of the accumulator.
const MOMENT_TRIPLES: [(usize, usize, usize); 23] = [
    (0, 0, 2),
    (0, 1, 1),
    (0, 1, 2),
    (0, 2, 0),
    (0, 2, 1),
    (0, 2, 2),
    (1, 0, 1),
    (1, 0, 2),
    (1, 1, 0),
    (1, 1, 1),
    (1, 1, 2),
    (1, 2, 0),
    (1, 2, 1),
    (1, 2, 2),
    (2, 0, 0),
    (2, 0, 1),
    (2, 0, 2),
    (2, 1, 0),
    (2, 1, 1),
    (2, 1, 2),
    (2, 2, 0),
    (2, 2, 1),
    (2, 2, 2),
];

/// Binomial coefficients `C(n, k)` for `n, k ≤ 2`.
const BINOM: [[f64; 3]; 3] = [[1.0, 0.0, 0.0], [1.0, 1.0, 0.0], [1.0, 2.0, 1.0]];

/// Flat index of multi-index `(p, q, r)` into a 27-entry co-moment table.
#[inline]
const fn idx(p: usize, q: usize, r: usize) -> usize {
    p * 9 + q * 3 + r
}

/// Number of `f64` words in [`TripleMoments::raw_parts`]: 3 means + 23
/// co-moments.
pub const TRIPLE_MOMENTS_RAW_LEN: usize = 26;

/// Streaming accumulator for trivariate central co-moments through degree
/// `(2, 2, 2)` — see the module docs for the recentering algebra. The
/// `c` table is indexed by [`idx`]; entries of total degree < 2 are
/// structurally zero (the mean lives in `mean`, degree-1 central moments
/// vanish identically).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TripleMoments {
    n: u64,
    mean: [f64; 3],
    c: [f64; 27],
}

/// Recentered combination of two sides' co-moment tables. `ca`/`cb` are the
/// 27-entry tables with the virtual count in slot 0 (`C_000 = n_side`);
/// `ga`/`gb` hold per-coordinate powers of each side's offset from the
/// combined mean, `g[coord][k] = (μ_side,coord − μ_comb,coord)^k`. One
/// fixed iteration order, so the fold is deterministic in floating point.
#[inline]
fn combine(ca: &[f64; 27], cb: &[f64; 27], ga: &[[f64; 3]; 3], gb: &[[f64; 3]; 3]) -> [f64; 27] {
    let mut out = [0.0f64; 27];
    for &(p, q, r) in &MOMENT_TRIPLES {
        let mut acc = 0.0;
        for bp in 0..=p {
            for bq in 0..=q {
                for br in 0..=r {
                    // Degree-1 central moments are structurally zero on
                    // both sides; the skip is data-independent, so every
                    // execution shape takes the same fp path.
                    if bp + bq + br == 1 {
                        continue;
                    }
                    let coeff = BINOM[p][bp] * BINOM[q][bq] * BINOM[r][br];
                    let wa = ga[0][p - bp] * ga[1][q - bq] * ga[2][r - br];
                    let wb = gb[0][p - bp] * gb[1][q - bq] * gb[2][r - br];
                    let k = idx(bp, bq, br);
                    acc += coeff * (wa * ca[k] + wb * cb[k]);
                }
            }
        }
        out[idx(p, q, r)] = acc;
    }
    out
}

impl TripleMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TripleMoments::default()
    }

    /// Adds one joint sample `(x, y, z)` — an exact merge with the
    /// singleton accumulator `{(x, y, z)}`, whose only non-zero co-moment
    /// is the virtual `C_000 = 1`.
    pub fn push(&mut self, x: f64, y: f64, z: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let sample = [x, y, z];
        let mut ga = [[0.0f64; 3]; 3];
        let mut gb = [[0.0f64; 3]; 3];
        for i in 0..3 {
            let delta = sample[i] - self.mean[i];
            let shift = delta / n;
            let a = -shift; // old mean − new mean
            let b = delta - shift; // sample − new mean
            ga[i] = [1.0, a, a * a];
            gb[i] = [1.0, b, b * b];
            self.mean[i] += shift;
        }
        let mut ca = self.c;
        ca[0] = n1;
        let mut cb = [0.0f64; 27];
        cb[0] = 1.0;
        self.c = combine(&ca, &cb, &ga, &gb);
    }

    /// Batch update: applies the exact [`TripleMoments::push`] recurrence to
    /// every `(xs[i], ys[i], zs[i])` sample in order on a local copy of the
    /// accumulator, written back once — the SoA entry point of
    /// [`TripleAccumulator::record_batch`]. Bit-for-bit identical to
    /// sequential `push` at any batch cut, so the lane width never affects
    /// results.
    ///
    /// # Panics
    ///
    /// Debug-asserts the three slices align; in release builds the shortest
    /// slice bounds the update.
    pub fn extend_batch(&mut self, xs: &[f64], ys: &[f64], zs: &[f64]) {
        debug_assert!(
            xs.len() == ys.len() && ys.len() == zs.len(),
            "joint sample slices must align"
        );
        let mut acc = *self;
        for ((&x, &y), &z) in xs.iter().zip(ys).zip(zs) {
            acc.push(x, y, z);
        }
        *self = acc;
    }

    /// Merges another accumulator into this one (parallel combination à la
    /// Chan/Pébay, generalized to three variables). Empty sides are
    /// identities: merging an empty `other` is a no-op, and merging into an
    /// empty `self` adopts `other` bit for bit — exactly the behavior the
    /// shard-ordered campaign fold requires when a shard only saw one
    /// population.
    pub fn merge(&mut self, other: &TripleMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let mut ga = [[0.0f64; 3]; 3];
        let mut gb = [[0.0f64; 3]; 3];
        for i in 0..3 {
            let delta = other.mean[i] - self.mean[i];
            let shift = delta * nb / n; // combined mean − self mean
            let a = -shift;
            let b = delta - shift; // other mean − combined mean
            ga[i] = [1.0, a, a * a];
            gb[i] = [1.0, b, b * b];
            self.mean[i] += shift;
        }
        let mut ca = self.c;
        ca[0] = na;
        let mut cb = other.c;
        cb[0] = nb;
        self.c = combine(&ca, &cb, &ga, &gb);
        self.n += other.n;
    }

    /// Number of joint samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The three coordinate means `(μx, μy, μz)`.
    pub fn means(&self) -> [f64; 3] {
        self.mean
    }

    /// Mean of the centered triple products, `C₁₁₁ / n` — the third-order
    /// analogue of a covariance.
    pub fn centered_product_mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.c[idx(1, 1, 1)] / self.n as f64
        }
    }

    /// Population variance of the centered triple products,
    /// `(C₂₂₂ − C₁₁₁²/n) / n` — the second ingredient of
    /// [`triple_welch_t`].
    pub fn centered_product_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            let nf = self.n as f64;
            let m = self.c[idx(1, 1, 1)] / nf;
            self.c[idx(2, 2, 2)] / nf - m * m
        }
    }

    /// The raw accumulator state `(n, [μx, μy, μz, C_pqr...])` with the 23
    /// co-moments in [`MOMENT_TRIPLES`] order — the snapshot side of the
    /// distributed shard-state format. Together with
    /// [`TripleMoments::from_raw_parts`] this round-trips the accumulator
    /// exactly (floats transported bit for bit), so a restored accumulator
    /// merges and reports identically to the original.
    pub fn raw_parts(&self) -> (u64, [f64; TRIPLE_MOMENTS_RAW_LEN]) {
        let mut m = [0.0f64; TRIPLE_MOMENTS_RAW_LEN];
        m[..3].copy_from_slice(&self.mean);
        for (slot, &(p, q, r)) in MOMENT_TRIPLES.iter().enumerate() {
            m[3 + slot] = self.c[idx(p, q, r)];
        }
        (self.n, m)
    }

    /// Restores an accumulator from [`TripleMoments::raw_parts`] state.
    pub fn from_raw_parts(n: u64, m: [f64; TRIPLE_MOMENTS_RAW_LEN]) -> Self {
        let mut c = [0.0f64; 27];
        for (slot, &(p, q, r)) in MOMENT_TRIPLES.iter().enumerate() {
            c[idx(p, q, r)] = m[3 + slot];
        }
        TripleMoments {
            n,
            mean: [m[0], m[1], m[2]],
            c,
        }
    }
}

/// Centered-triple-product Welch t-test from two folded [`TripleMoments`]
/// (fixed class vs random class): the streaming equivalent of running
/// [`crate::welch::welch_t`] over the per-trace products
/// `(e₁ − μ₁)(e₂ − μ₂)(e₃ − μ₃)`.
///
/// Degenerate inputs (fewer than 2 joint samples on a side, or a
/// non-positive standard error) yield `t = 0, dof = 0`, matching
/// [`pair_welch_t`](crate::bivariate::pair_welch_t).
pub fn triple_welch_t(q0: &TripleMoments, q1: &TripleMoments) -> WelchResult {
    if q0.count() < 2 || q1.count() < 2 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let n0 = q0.count() as f64;
    let n1 = q1.count() as f64;
    // Unbiased sample variance of the centered triple products.
    let v0 = q0.centered_product_variance() * n0 / (n0 - 1.0);
    let v1 = q1.centered_product_variance() * n1 / (n1 - 1.0);
    let se2 = v0 / n0 + v1 / n1;
    if se2 <= 0.0 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let t = (q0.centered_product_mean() - q1.centered_product_mean()) / se2.sqrt();
    let denom = (v0 / n0).powi(2) / (n0 - 1.0) + (v1 / n1).powi(2) / (n1 - 1.0);
    let dof = if denom > 0.0 { se2 * se2 / denom } else { 0.0 };
    WelchResult { t, dof }
}

/// Streaming trivariate sink: one [`TripleMoments`] per (gate-triple,
/// class), `O(gate-triples)` memory regardless of trace count.
///
/// The accumulator is a [`MergeableSink`], so it rides every execution
/// strategy of the campaign engine unchanged —
/// [`run_campaign_parallel_with`] threads, fleet jobs via a sink factory,
/// and distributed shard states — with the usual guarantee: bit-identical
/// results at any thread count, lane width, or shard partitioning.
///
/// A default-constructed accumulator tracks no triples (the identity the
/// shard fold needs); [`TripleAccumulator::merge`] adopts the other side's
/// triple list when `self` is empty, mirroring the other sinks' lazy-shape
/// convention.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TripleAccumulator {
    /// Tracked gate triples as `(a, b, c)` gate indices.
    triples: Vec<(u32, u32, u32)>,
    fixed: Vec<TripleMoments>,
    random: Vec<TripleMoments>,
}

impl TripleAccumulator {
    /// An accumulator tracking the given gate triples (indices into the
    /// design's gate list).
    pub fn for_triples(triples: Vec<(u32, u32, u32)>) -> Self {
        let fixed = vec![TripleMoments::new(); triples.len()];
        let random = vec![TripleMoments::new(); triples.len()];
        TripleAccumulator {
            triples,
            fixed,
            random,
        }
    }

    /// Reassembles an accumulator from its parts (the restore side of the
    /// distributed shard-state format).
    ///
    /// # Panics
    ///
    /// Panics if the class vectors do not match the triple list's length.
    pub fn from_parts(
        triples: Vec<(u32, u32, u32)>,
        fixed: Vec<TripleMoments>,
        random: Vec<TripleMoments>,
    ) -> Self {
        assert_eq!(triples.len(), fixed.len(), "fixed moments shape mismatch");
        assert_eq!(triples.len(), random.len(), "random moments shape mismatch");
        TripleAccumulator {
            triples,
            fixed,
            random,
        }
    }

    /// The tracked gate triples, in recording order.
    pub fn triples(&self) -> &[(u32, u32, u32)] {
        &self.triples
    }

    /// Number of tracked triples.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// The per-triple class accumulators, `(fixed, random)` — the snapshot
    /// side of the distributed shard-state format.
    pub fn class_moments(&self) -> (&[TripleMoments], &[TripleMoments]) {
        (&self.fixed, &self.random)
    }

    /// Centered-triple-product Welch t per tracked triple, in recording
    /// order.
    pub fn results(&self) -> Vec<(GateId, GateId, GateId, WelchResult)> {
        self.triples
            .iter()
            .zip(self.fixed.iter().zip(&self.random))
            .map(|(&(a, b, c), (f, r))| {
                (
                    GateId::new(a as usize),
                    GateId::new(b as usize),
                    GateId::new(c as usize),
                    triple_welch_t(f, r),
                )
            })
            .collect()
    }

    /// [`TripleAccumulator::results`] sorted by descending `|t|` (NaN last,
    /// via the total order on `f64`).
    pub fn sweep(&self) -> Vec<(GateId, GateId, GateId, WelchResult)> {
        let mut out = self.results();
        out.sort_by(|a, b| b.3.t.abs().total_cmp(&a.3.t.abs()));
        out
    }
}

impl TraceSink for TripleAccumulator {
    /// Folds one SoA energy batch: for every tracked triple the three
    /// gates' lane rows stream through [`TripleMoments::extend_batch`], so
    /// the hot path is three contiguous reads per triple with the
    /// accumulator state resident in a local.
    ///
    /// # Panics
    ///
    /// Panics if a tracked triple references a gate outside the batch —
    /// callers validate triple indices against the design before running a
    /// campaign (see [`assess_triples`]).
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
        let store = match pop {
            Population::Fixed => &mut self.fixed,
            Population::Random => &mut self.random,
        };
        for (m, &(a, b, c)) in store.iter_mut().zip(&self.triples) {
            m.extend_batch(
                batch.gate_lanes(a as usize),
                batch.gate_lanes(b as usize),
                batch.gate_lanes(c as usize),
            );
        }
    }
}

impl MergeableSink for TripleAccumulator {
    /// Pairwise co-moment combination per (triple, class); an empty side is
    /// the identity (a default-constructed accumulator adopts `other`).
    fn merge(&mut self, other: Self) {
        if other.triples.is_empty() {
            return;
        }
        if self.triples.is_empty() {
            *self = other;
            return;
        }
        debug_assert_eq!(self.triples, other.triples, "triple list mismatch in merge");
        for (d, s) in self.fixed.iter_mut().zip(&other.fixed) {
            d.merge(s);
        }
        for (d, s) in self.random.iter_mut().zip(&other.random) {
            d.merge(s);
        }
    }
}

/// Validates a triple list against a design's gate count and rejects
/// degenerate entries: any gate repeated within one triple, and duplicates
/// of an earlier triple in any order. Both the CLI and the distributed plan
/// verifier route through this one function, so coordinator and worker
/// agree on what a well-formed triple list is.
///
/// # Errors
///
/// Returns [`MultivariateError::GateOutOfRange`] for the first
/// out-of-design index, [`MultivariateError::RepeatedGate`] for the first
/// within-entry repeat, and [`MultivariateError::DuplicateEntry`] for the
/// first repeat of an earlier entry.
pub fn validate_triples(
    triples: &[(u32, u32, u32)],
    gates: usize,
) -> Result<(), MultivariateError> {
    let mut seen = std::collections::HashSet::with_capacity(triples.len());
    for (index, &(a, b, c)) in triples.iter().enumerate() {
        for g in [a as usize, b as usize, c as usize] {
            if g >= gates {
                return Err(MultivariateError::GateOutOfRange { gate: g, gates });
            }
        }
        if a == b || a == c {
            return Err(MultivariateError::RepeatedGate { gate: a as usize });
        }
        if b == c {
            return Err(MultivariateError::RepeatedGate { gate: b as usize });
        }
        let mut key = [a, b, c];
        key.sort_unstable();
        if !seen.insert(key) {
            return Err(MultivariateError::DuplicateEntry { index });
        }
    }
    Ok(())
}

/// All `i < j < k` triples among `gates`, as gate-index triples — the
/// triple list of an exhaustive third-order sweep over a gate subset.
/// Grows as `O(n³)`; sweep a shortlist (e.g. the leakiest cells), not a
/// whole ISCAS design.
pub fn all_triples(gates: &[GateId]) -> Vec<(u32, u32, u32)> {
    let n = gates.len();
    let mut triples = Vec::with_capacity(n * n.saturating_sub(1) * n.saturating_sub(2) / 6);
    for (i, &g1) in gates.iter().enumerate() {
        for (j, &g2) in gates.iter().enumerate().skip(i + 1) {
            for &g3 in &gates[j + 1..] {
                triples.push((g1.index() as u32, g2.index() as u32, g3.index() as u32));
            }
        }
    }
    triples
}

/// Runs a streaming trivariate sweep over `triples` as one parallel
/// campaign: single pass over the traces, `O(gate-triples)` memory, sorted
/// by descending `|t|`. Results are bit-identical at any thread count and
/// lane width.
///
/// # Errors
///
/// Any [`MultivariateError`] from [`validate_triples`];
/// [`MultivariateError::Sim`] if the design cannot be levelized.
pub fn assess_triples(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    triples: &[(u32, u32, u32)],
) -> Result<Vec<(GateId, GateId, GateId, WelchResult)>, MultivariateError> {
    validate_triples(triples, netlist.gate_count())?;
    let acc: TripleAccumulator =
        run_campaign_parallel_with(netlist, model, config, parallelism, || {
            TripleAccumulator::for_triples(triples.to_vec())
        })?;
    Ok(acc.sweep())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::StreamingMoments;
    use polaris_sim::campaign::TRACES_PER_SHARD;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
            })
            .collect()
    }

    /// Reference two-pass co-moments about the final means, in
    /// [`MOMENT_TRIPLES`] order.
    fn naive(xs: &[f64], ys: &[f64], zs: &[f64]) -> ([f64; 3], [f64; 23]) {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mz = zs.iter().sum::<f64>() / n;
        let mut c = [0.0f64; 23];
        for (slot, &(p, q, r)) in MOMENT_TRIPLES.iter().enumerate() {
            c[slot] = xs
                .iter()
                .zip(ys)
                .zip(zs)
                .map(|((&x, &y), &z)| {
                    (x - mx).powi(p as i32) * (y - my).powi(q as i32) * (z - mz).powi(r as i32)
                })
                .sum::<f64>();
        }
        ([mx, my, mz], c)
    }

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        let scale = 1.0_f64.max(a.abs()).max(b.abs());
        assert!((a - b).abs() <= tol * scale, "{what}: {a} vs {b}");
    }

    #[test]
    fn closed_form_small_vector() {
        // xs = ys = zs = [1,2,3,4]: every co-moment collapses to the
        // univariate power sum Σ(x − 2.5)^|α|, so e.g. C₁₁₁ = Σ(x−2.5)³ = 0
        // (symmetric), C₂₂₀ = Σ(x−2.5)⁴ = 10.25, and
        // C₂₂₂ = Σ(x−2.5)⁶ = 2·(1.5⁶ + 0.5⁶) = 22.8125.
        let v = [1.0, 2.0, 3.0, 4.0];
        let mut m = TripleMoments::new();
        m.extend_batch(&v, &v, &v);
        assert_eq!(m.count(), 4);
        let (_, c) = m.raw_parts();
        for mean in m.means() {
            assert!((mean - 2.5).abs() < 1e-15);
        }
        let powers: Vec<f64> = (0..=6)
            .map(|k| v.iter().map(|x| (x - 2.5_f64).powi(k)).sum())
            .collect();
        for (slot, &(p, q, r)) in MOMENT_TRIPLES.iter().enumerate() {
            let want = powers[p + q + r];
            assert!(
                (c[3 + slot] - want).abs() < 1e-11,
                "C{p}{q}{r} = {} want {want}",
                c[3 + slot]
            );
        }
    }

    #[test]
    fn diagonal_matches_univariate_moments() {
        // On x = y = z the co-moments collapse onto univariate central
        // moments: every |α| = 2 entry is M2, |α| = 3 is M3, |α| = 4 is M4.
        let xs = pseudo_random(2000, 3);
        let mut tm = TripleMoments::new();
        let mut sm = StreamingMoments::new();
        for &x in &xs {
            tm.push(x, x, x);
            sm.push(x);
        }
        let (_, m1, m2, m3, m4) = sm.raw_parts();
        let (_, c) = tm.raw_parts();
        for mean in tm.means() {
            assert_close(mean, m1, 1e-12, "mean");
        }
        for (slot, &(p, q, r)) in MOMENT_TRIPLES.iter().enumerate() {
            let want = match p + q + r {
                2 => m2,
                3 => m3,
                4 => m4,
                _ => continue,
            };
            assert_close(c[3 + slot], want, 1e-8, "diagonal co-moment");
        }
    }

    #[test]
    fn streaming_matches_two_pass() {
        let xs = pseudo_random(5000, 42);
        let ys: Vec<f64> = pseudo_random(5000, 43)
            .iter()
            .zip(&xs)
            .map(|(a, b)| a + 0.3 * b)
            .collect();
        let zs: Vec<f64> = pseudo_random(5000, 44)
            .iter()
            .zip(&ys)
            .map(|(a, b)| a - 0.2 * b)
            .collect();
        let mut m = TripleMoments::new();
        m.extend_batch(&xs, &ys, &zs);
        let (means, c) = naive(&xs, &ys, &zs);
        let (_, got) = m.raw_parts();
        for (i, want) in means.iter().enumerate() {
            assert_close(got[i], *want, 1e-12, "mean");
        }
        for (i, want) in c.iter().enumerate() {
            assert_close(got[3 + i], *want, 1e-6, "co-moment");
        }
    }

    #[test]
    fn merge_matches_two_pass_at_any_split() {
        let xs = pseudo_random(3000, 7);
        let ys = pseudo_random(3000, 11);
        let zs = pseudo_random(3000, 13);
        let (_, c_all) = naive(&xs, &ys, &zs);
        for split in [1usize, 17, 256, 1500, 2999] {
            let mut a = TripleMoments::new();
            a.extend_batch(&xs[..split], &ys[..split], &zs[..split]);
            let mut b = TripleMoments::new();
            b.extend_batch(&xs[split..], &ys[split..], &zs[split..]);
            a.merge(&b);
            assert_eq!(a.count(), 3000);
            let (_, got) = a.raw_parts();
            for (i, want) in c_all.iter().enumerate() {
                assert_close(got[3 + i], *want, 1e-6, "merged co-moment");
            }
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = TripleMoments::new();
        m.extend_batch(
            &pseudo_random(100, 3),
            &pseudo_random(100, 4),
            &pseudo_random(100, 5),
        );
        let snapshot = m;
        m.merge(&TripleMoments::new());
        assert_eq!(m, snapshot);
        let mut empty = TripleMoments::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn extend_batch_is_bit_identical_to_sequential_push() {
        // Golden guarantee of the SoA entry point: the batch update must
        // reproduce sequential push exactly (all raw fields, to the bit) at
        // every split — including resuming on top of existing state.
        let xs = pseudo_random(4096, 99);
        let ys = pseudo_random(4096, 100);
        let zs = pseudo_random(4096, 101);
        let mut scalar = TripleMoments::new();
        for ((&x, &y), &z) in xs.iter().zip(&ys).zip(&zs) {
            scalar.push(x, y, z);
        }
        let (n_a, c_a) = scalar.raw_parts();
        for split in [0usize, 1, 63, 64, 65, 1000, 4096] {
            let mut blocked = TripleMoments::new();
            for ((&x, &y), &z) in xs[..split].iter().zip(&ys[..split]).zip(&zs[..split]) {
                blocked.push(x, y, z);
            }
            blocked.extend_batch(&xs[split..], &ys[split..], &zs[split..]);
            let (n_b, c_b) = blocked.raw_parts();
            assert_eq!(n_a, n_b, "split {split}");
            for (i, (a, b)) in c_a.iter().zip(&c_b).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "split {split} field {i}");
            }
        }
    }

    #[test]
    fn raw_parts_round_trip_exactly() {
        let mut m = TripleMoments::new();
        m.extend_batch(
            &pseudo_random(500, 1),
            &pseudo_random(500, 2),
            &pseudo_random(500, 3),
        );
        let (n, c) = m.raw_parts();
        let restored = TripleMoments::from_raw_parts(n, c);
        assert_eq!(m, restored);
    }

    #[test]
    fn triple_welch_t_matches_naive_centered_products() {
        // The co-moment t must agree (to fp tolerance) with literally
        // centering on the class means and running Welch over the triple
        // products.
        let f = [
            pseudo_random(800, 21),
            pseudo_random(800, 22),
            pseudo_random(800, 25),
        ];
        let r = [
            pseudo_random(900, 23)
                .iter()
                .map(|x| x + 0.2)
                .collect::<Vec<f64>>(),
            pseudo_random(900, 24),
            pseudo_random(900, 26),
        ];
        let center = |e: &[Vec<f64>]| -> Vec<f64> {
            let n = e[0].len() as f64;
            let m: Vec<f64> = e.iter().map(|v| v.iter().sum::<f64>() / n).collect();
            (0..e[0].len())
                .map(|i| (e[0][i] - m[0]) * (e[1][i] - m[1]) * (e[2][i] - m[2]))
                .collect()
        };
        let want = crate::welch::welch_t_slices(&center(&f), &center(&r));
        let mut qf = TripleMoments::new();
        qf.extend_batch(&f[0], &f[1], &f[2]);
        let mut qr = TripleMoments::new();
        qr.extend_batch(&r[0], &r[1], &r[2]);
        let got = triple_welch_t(&qf, &qr);
        assert_close(got.t, want.t, 1e-9, "t");
        assert_close(got.dof, want.dof, 1e-9, "dof");
    }

    #[test]
    fn triple_welch_t_degenerate_inputs() {
        let mut one = TripleMoments::new();
        one.push(1.0, 2.0, 3.0);
        let mut many = TripleMoments::new();
        many.extend_batch(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0], &[2.0, 1.0, 3.0]);
        assert_eq!(
            triple_welch_t(&one, &many),
            WelchResult { t: 0.0, dof: 0.0 }
        );
        // Constant products on both sides: se² = 0.
        let mut ca = TripleMoments::new();
        ca.extend_batch(&[2.0, 2.0, 2.0], &[5.0, 5.0, 5.0], &[1.0, 1.0, 1.0]);
        let mut cb = TripleMoments::new();
        cb.extend_batch(&[1.0, 1.0], &[4.0, 4.0], &[2.0, 2.0]);
        assert_eq!(triple_welch_t(&ca, &cb), WelchResult { t: 0.0, dof: 0.0 });
    }

    #[test]
    fn validation_rejects_degenerate_lists() {
        assert!(validate_triples(&[(0, 1, 2)], 3).is_ok());
        assert_eq!(
            validate_triples(&[(0, 1, 9)], 3).unwrap_err(),
            MultivariateError::GateOutOfRange { gate: 9, gates: 3 }
        );
        assert_eq!(
            validate_triples(&[(1, 1, 2)], 3).unwrap_err(),
            MultivariateError::RepeatedGate { gate: 1 }
        );
        assert_eq!(
            validate_triples(&[(0, 2, 2)], 3).unwrap_err(),
            MultivariateError::RepeatedGate { gate: 2 }
        );
        // Duplicates are order-insensitive.
        assert_eq!(
            validate_triples(&[(0, 1, 2), (2, 0, 1)], 3).unwrap_err(),
            MultivariateError::DuplicateEntry { index: 1 }
        );
        // Errors render.
        assert!(validate_triples(&[(1, 1, 2)], 3)
            .unwrap_err()
            .to_string()
            .contains("repeats"));
        assert!(validate_triples(&[(0, 1, 2), (2, 1, 0)], 3)
            .unwrap_err()
            .to_string()
            .contains("duplicates"));
    }

    #[test]
    fn all_triples_enumerates_ordered_combinations() {
        let gates: Vec<GateId> = (0..5).map(GateId::new).collect();
        let triples = all_triples(&gates);
        assert_eq!(triples.len(), 10); // C(5, 3)
        assert!(validate_triples(&triples, 5).is_ok());
        assert_eq!(triples[0], (0, 1, 2));
        assert_eq!(triples[9], (2, 3, 4));
        assert!(all_triples(&gates[..2]).is_empty());
    }

    #[test]
    fn sink_reproduces_direct_accumulation() {
        // A TripleAccumulator fed EnergyBatches must hold exactly the
        // moments of extending the triple rows directly.
        let gates = 4;
        let lanes = 4;
        let energies: Vec<f64> = pseudo_random(gates * lanes, 55);
        let batch = EnergyBatch::new(&energies, gates, lanes).unwrap();
        let track = [(0u32, 1u32, 2u32), (1, 2, 3)];
        let mut sink = TripleAccumulator::for_triples(track.to_vec());
        sink.record_batch(Population::Fixed, batch);
        sink.record_batch(Population::Random, batch);
        for (k, &(a, b, c)) in track.iter().enumerate() {
            let mut want = TripleMoments::new();
            want.extend_batch(
                batch.gate_lanes(a as usize),
                batch.gate_lanes(b as usize),
                batch.gate_lanes(c as usize),
            );
            let (fixed, random) = sink.class_moments();
            assert_eq!(fixed[k], want);
            assert_eq!(random[k], want);
        }
    }

    #[test]
    fn sink_merge_has_empty_identity() {
        let mut a = TripleAccumulator::for_triples(vec![(0, 1, 2)]);
        let e = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        a.record_batch(Population::Fixed, EnergyBatch::new(&e, 3, 2).unwrap());
        let snapshot = a.clone();
        a.merge(TripleAccumulator::default());
        assert_eq!(a, snapshot);
        let mut empty = TripleAccumulator::default();
        empty.merge(snapshot.clone());
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn streaming_sweep_matches_dense_chunked_fold() {
        // assess_triples must equal folding densely collected samples
        // through the same computation DAG (shard-sized chunks, merged left
        // to right) bit for bit — the same contract the pair engine pins.
        let src = "
module m (a, y0, y1, y2);
  input a;
  mask_input m0, m1;
  output y0, y1, y2;
  xor g0 (t0, a, m0);
  xor g1 (y0, t0, m1);
  buf g2 (y1, m0);
  buf g3 (y2, m1);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(700, 700, 9).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let triples = all_triples(&n.cell_ids());
        let streaming = assess_triples(&n, &model, &cfg, Parallelism::new(4), &triples).unwrap();
        let samples = polaris_sim::campaign::collect_gate_samples(&n, &model, &cfg).unwrap();
        let fold = |xs: &[f64], ys: &[f64], zs: &[f64]| -> TripleMoments {
            let mut acc = TripleMoments::new();
            for ((cx, cy), cz) in xs
                .chunks(TRACES_PER_SHARD)
                .zip(ys.chunks(TRACES_PER_SHARD))
                .zip(zs.chunks(TRACES_PER_SHARD))
            {
                let mut m = TripleMoments::new();
                m.extend_batch(cx, cy, cz);
                acc.merge(&m);
            }
            acc
        };
        for &(a, b, c) in &triples {
            let (ga, gb, gc) = (
                GateId::new(a as usize),
                GateId::new(b as usize),
                GateId::new(c as usize),
            );
            let fixed = fold(samples.fixed(ga), samples.fixed(gb), samples.fixed(gc));
            let random = fold(samples.random(ga), samples.random(gb), samples.random(gc));
            let want = triple_welch_t(&fixed, &random);
            let (_, _, _, got) = streaming
                .iter()
                .find(|(x, y, z, _)| (*x, *y, *z) == (ga, gb, gc))
                .unwrap();
            assert_eq!(got.t.to_bits(), want.t.to_bits());
            assert_eq!(got.dof.to_bits(), want.dof.to_bits());
        }
    }

    #[test]
    fn three_share_design_leaks_only_at_third_order() {
        // The minimal 3-share sharing: y0 = a ⊕ m0 ⊕ m1, y1 = m0, y2 = m1.
        // Each share is uniform and any *two* are jointly independent of
        // `a`, so orders 1 and 2 pass on the share gates; only the triple
        // recombines the secret. This is the repo's first positive
        // higher-order detection.
        let src = "
module m (a, y0, y1, y2);
  input a;
  mask_input m0, m1;
  output y0, y1, y2;
  xor g0 (t0, a, m0);
  xor g1 (y0, t0, m1);
  buf g2 (y1, m0);
  buf g3 (y2, m1);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(3000, 3000, 7).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let cells = n.cell_ids();
        // The share gates: y0 (g1), y1 (g2), y2 (g3) — gate t0 is the
        // classic first-order-masked intermediate and is excluded, exactly
        // like a masked core's entry gates in the workspace tests.
        let shares = [cells[1], cells[2], cells[3]];
        let first = crate::assess(&n, &model, &cfg).unwrap();
        for &g in &shares {
            assert!(
                first.abs_t(g) < crate::TVLA_THRESHOLD,
                "share gate must be first-order clean: {:.2}",
                first.abs_t(g)
            );
        }
        let pairs = crate::all_pairs(&shares);
        for (a, b, r) in crate::assess_pairs(&n, &model, &cfg, Parallelism::new(2), &pairs).unwrap()
        {
            assert!(
                r.t.abs() < crate::TVLA_THRESHOLD,
                "share pair ({a:?}, {b:?}) must be second-order clean: |t| = {:.2}",
                r.t.abs()
            );
        }
        let sweep =
            assess_triples(&n, &model, &cfg, Parallelism::new(2), &all_triples(&shares)).unwrap();
        let (_, _, _, r) = &sweep[0];
        assert!(
            r.t.abs() > crate::TVLA_THRESHOLD,
            "share triple must fail trivariate TVLA: |t| = {:.2}",
            r.t.abs()
        );
    }
}
