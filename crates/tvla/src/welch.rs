//! Welch's unequal-variance t-test (paper Eq. 1).

use crate::moments::StreamingMoments;
use crate::special::student_t_two_sided_p;

/// Result of a Welch t-test between two sample populations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WelchResult {
    /// The t-statistic `((μ0 − μ1) / √(s0²/n0 + s1²/n1))`.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub dof: f64,
}

impl WelchResult {
    /// Two-sided p-value under the Student-t null distribution.
    ///
    /// Returns 1.0 when the degrees of freedom are degenerate (too few
    /// samples to test).
    pub fn p_value(&self) -> f64 {
        if self.dof <= 0.0 || !self.t.is_finite() {
            return 1.0;
        }
        student_t_two_sided_p(self.t, self.dof)
    }

    /// True if `|t|` exceeds the given threshold (TVLA uses 4.5).
    pub fn is_leaky(&self, threshold: f64) -> bool {
        self.t.abs() > threshold
    }

    /// Sequential-analysis resolution of this gate's verdict at a checkpoint
    /// with confidence margin `margin` (a z boundary from
    /// [`crate::special::sequential_boundary`]):
    ///
    /// * `Some(true)` — `|t|` exceeds `threshold`: the gate fails TVLA at
    ///   the current trace count (a crossing at any look is a valid leak
    ///   verdict, so no margin is required on this side);
    /// * `Some(false)` — the margin-wide confidence interval around `|t|`
    ///   lies entirely below `threshold` (`|t| + margin ≤ threshold`): the
    ///   gate is confidently clean at this look;
    /// * `None` — undecided; more traces are needed.
    pub fn resolution(&self, threshold: f64, margin: f64) -> Option<bool> {
        let abs_t = self.t.abs();
        if abs_t > threshold {
            Some(true)
        } else if abs_t + margin <= threshold {
            Some(false)
        } else {
            None
        }
    }
}

/// Computes Welch's t-statistic and degrees of freedom from two accumulated
/// populations (paper Eq. 1).
///
/// Degenerate inputs (fewer than 2 samples on a side, or both variances
/// zero) yield `t = 0, dof = 0` — "no evidence of leakage" rather than an
/// error, matching how leakage assessments treat dead gates.
pub fn welch_t(q0: &StreamingMoments, q1: &StreamingMoments) -> WelchResult {
    let n0 = q0.count() as f64;
    let n1 = q1.count() as f64;
    if q0.count() < 2 || q1.count() < 2 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let v0 = q0.sample_variance();
    let v1 = q1.sample_variance();
    let se2 = v0 / n0 + v1 / n1;
    if se2 <= 0.0 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let t = (q0.mean() - q1.mean()) / se2.sqrt();
    let denom = (v0 / n0).powi(2) / (n0 - 1.0) + (v1 / n1).powi(2) / (n1 - 1.0);
    let dof = if denom > 0.0 { se2 * se2 / denom } else { 0.0 };
    WelchResult { t, dof }
}

/// Welch's t-test directly over sample slices (convenience for tests and
/// small analyses; the streaming path is [`welch_t`]).
pub fn welch_t_slices(q0: &[f64], q1: &[f64]) -> WelchResult {
    let mut m0 = StreamingMoments::new();
    m0.extend_from_slice(q0);
    let mut m1 = StreamingMoments::new();
    m1.extend_from_slice(q1);
    welch_t(&m0, &m1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_welch_example() {
        // Classic example (NIST-style): two small samples.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.3,
            23.8,
        ];
        let r = welch_t_slices(&a, &b);
        // Independently computed (two-pass formulas):
        // t = -2.821665, dof = 27.81897, two-sided p = 0.0087177.
        assert!((r.t - (-2.8216651667585237)).abs() < 1e-9, "t = {}", r.t);
        assert!((r.dof - 27.818966038567552).abs() < 1e-6, "dof = {}", r.dof);
        let p = r.p_value();
        assert!((p - 0.008717728775).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn hand_computed_small_vectors() {
        // a = [1..5]: mean 3, s² = 2.5, n = 5  →  s²/n = 1/2
        // b = [2,4,6]: mean 4, s² = 4,  n = 3  →  s²/n = 4/3
        // se² = 1/2 + 4/3 = 11/6
        // t   = (3 − 4) / √(11/6)                       = −0.738548945875996
        // dof = (11/6)² / ((1/2)²/4 + (4/3)²/2)         =  3.532846715328467
        let r = welch_t_slices(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 4.0, 6.0]);
        assert!((r.t - (-0.738548945875996)).abs() < 1e-12, "t = {}", r.t);
        assert!((r.dof - 3.532846715328467).abs() < 1e-12, "dof = {}", r.dof);
        assert!(!r.is_leaky(4.5));
    }

    #[test]
    fn hand_computed_equal_variance_case() {
        // a = [0,2], b = [10,12]: both s² = 2, n = 2 → se² = 2, t = −10/√2.
        // dof = 4 / (1 + 1) = 2 (Welch reduces to the pooled dof here).
        let r = welch_t_slices(&[0.0, 2.0], &[10.0, 12.0]);
        assert!(
            (r.t - (-10.0 / 2.0_f64.sqrt())).abs() < 1e-12,
            "t = {}",
            r.t
        );
        assert!((r.dof - 2.0).abs() < 1e-12, "dof = {}", r.dof);
        assert!(r.is_leaky(4.5));
    }

    #[test]
    fn identical_populations_give_zero_t() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let r = welch_t_slices(&xs, &xs);
        assert!(r.t.abs() < 1e-12);
        assert!(!r.is_leaky(4.5));
    }

    #[test]
    fn shifted_population_detected() {
        let a: Vec<f64> = (0..2000).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        let r = welch_t_slices(&a, &b);
        assert!(r.is_leaky(4.5), "t = {}", r.t);
        assert!(r.t < 0.0, "a < b means negative t");
        assert!(r.p_value() < 1e-5);
    }

    #[test]
    fn degenerate_inputs_do_not_blow_up() {
        assert_eq!(welch_t_slices(&[], &[1.0, 2.0]).t, 0.0);
        assert_eq!(welch_t_slices(&[1.0], &[1.0, 2.0]).t, 0.0);
        let constant = welch_t_slices(&[2.0, 2.0, 2.0], &[2.0, 2.0, 2.0]);
        assert_eq!(constant.t, 0.0);
        assert_eq!(constant.p_value(), 1.0);
    }

    #[test]
    fn dof_between_min_and_sum() {
        // Welch dof lies in [min(n0,n1)-1, n0+n1-2].
        let a: Vec<f64> = (0..30).map(|i| (i as f64).sin() * 3.0).collect();
        let b: Vec<f64> = (0..50).map(|i| (i as f64).cos() * 0.5 + 2.0).collect();
        let r = welch_t_slices(&a, &b);
        assert!(r.dof >= 29.0_f64.min(49.0) - 1.0);
        assert!(r.dof <= (30 + 50 - 2) as f64);
    }

    #[test]
    fn resolution_partitions_the_t_axis() {
        let mk = |t: f64| WelchResult { t, dof: 100.0 };
        // Above threshold: leaky regardless of margin.
        assert_eq!(mk(5.0).resolution(4.5, 2.0), Some(true));
        assert_eq!(mk(-6.0).resolution(4.5, f64::INFINITY), Some(true));
        // Confidently clean: |t| + margin within the threshold.
        assert_eq!(mk(1.0).resolution(4.5, 2.0), Some(false));
        assert_eq!(mk(-2.5).resolution(4.5, 2.0), Some(false));
        // Undecided band.
        assert_eq!(mk(3.0).resolution(4.5, 2.0), None);
        assert_eq!(mk(4.4).resolution(4.5, 0.5), None);
        // Infinite margin (underflowed spending) never resolves clean.
        assert_eq!(mk(0.0).resolution(4.5, f64::INFINITY), None);
    }

    #[test]
    fn symmetry_in_sign() {
        let a: Vec<f64> = (0..500).map(|i| (i % 13) as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| (i % 13) as f64 + 0.5).collect();
        let r1 = welch_t_slices(&a, &b);
        let r2 = welch_t_slices(&b, &a);
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.dof - r2.dof).abs() < 1e-9);
    }
}
