//! Bivariate (true second-order) TVLA.
//!
//! A d-th-order masked implementation forces the adversary to *combine*
//! d + 1 probe points. The standard second-order test therefore combines
//! two sample points per trace: the preprocessed statistic is the product
//! of the two points' class-centered samples,
//! `y = (e₁ − μ₁)(e₂ − μ₂)`, followed by Welch's t-test between the fixed
//! and random classes (Schneider–Moradi §4.2).
//!
//! Against the crate's gate-level samples this combines two *gates'*
//! energies. A first-order (2-share) Trichina composite has gate pairs
//! whose joint toggle statistics are data-dependent — e.g. the remasked
//! product `(a·b) ⊕ z` together with any gate carrying `z` — while a
//! second-order (3-share) ISW composite requires three-way combinations and
//! passes every bivariate test (see the workspace integration tests).

use polaris_netlist::GateId;
use polaris_sim::campaign::GateSamples;

use crate::moments::StreamingMoments;
use crate::welch::WelchResult;

/// Second-order statistic between two gates for one class: the per-trace
/// centered product.
fn centered_products(e1: &[f64], e2: &[f64]) -> Vec<f64> {
    debug_assert_eq!(e1.len(), e2.len());
    let n = e1.len() as f64;
    let m1 = e1.iter().sum::<f64>() / n;
    let m2 = e2.iter().sum::<f64>() / n;
    e1.iter()
        .zip(e2)
        .map(|(&a, &b)| (a - m1) * (b - m2))
        .collect()
}

/// Bivariate second-order Welch t-test between the fixed and random classes
/// for the gate pair `(g1, g2)`.
///
/// # Panics
///
/// Panics if the samples do not cover both gates.
pub fn bivariate_t(samples: &GateSamples, g1: GateId, g2: GateId) -> WelchResult {
    let fixed = centered_products(samples.fixed(g1), samples.fixed(g2));
    let random = centered_products(samples.random(g1), samples.random(g2));
    let mut mf = StreamingMoments::new();
    mf.extend_from_slice(&fixed);
    let mut mr = StreamingMoments::new();
    mr.extend_from_slice(&random);
    crate::welch::welch_t(&mf, &mr)
}

/// Scans every pair among `gates` and returns `(g1, g2, result)` sorted by
/// descending `|t|` — the exhaustive bivariate sweep an evaluator runs on a
/// masked core.
pub fn bivariate_sweep(
    samples: &GateSamples,
    gates: &[GateId],
) -> Vec<(GateId, GateId, WelchResult)> {
    let mut out = Vec::with_capacity(gates.len() * gates.len() / 2);
    for (i, &g1) in gates.iter().enumerate() {
        for &g2 in &gates[i + 1..] {
            out.push((g1, g2, bivariate_t(samples, g1, g2)));
        }
    }
    out.sort_by(|a, b| {
        b.2.t
            .abs()
            .partial_cmp(&a.2.t.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_sim::{campaign::collect_gate_samples, CampaignConfig, PowerModel};

    #[test]
    fn independent_gates_show_no_bivariate_leakage() {
        // Two xors of independent fresh masks: no pair carries joint
        // data-dependence.
        let src = "
module m (a, b, m0, m1, y0, y1);
  input a, b;
  mask_input m0, m1;
  output y0, y1;
  xor g0 (y0, a, m0);
  xor g1 (y1, b, m1);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(3000, 3000, 5);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let cells = n.cell_ids();
        let r = bivariate_t(&samples, cells[0], cells[1]);
        assert!(
            r.t.abs() < crate::TVLA_THRESHOLD,
            "independent masked gates must pass: |t| = {:.2}",
            r.t.abs()
        );
    }

    #[test]
    fn shared_mask_pair_leaks_bivariately() {
        // The classic 2nd-order situation: y0 = a ⊕ m, y1 = m. Neither gate
        // leaks first-order, but their joint statistics reveal `a`.
        let src = "
module m (a, m0, y0, y1);
  input a;
  mask_input m0;
  output y0, y1;
  xor g0 (y0, a, m0);
  buf g1 (y1, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(4000, 4000, 7).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let cells = n.cell_ids();
        // First order: both clean.
        let first = crate::assess(&n, &model, &cfg).unwrap();
        for &c in &cells {
            assert!(
                first.abs_t(c) < crate::TVLA_THRESHOLD,
                "gate should be first-order clean: {:.2}",
                first.abs_t(c)
            );
        }
        // Second order: the pair leaks.
        let r = bivariate_t(&samples, cells[0], cells[1]);
        assert!(
            r.t.abs() > crate::TVLA_THRESHOLD,
            "shared-mask pair must fail bivariate TVLA: |t| = {:.2}",
            r.t.abs()
        );
    }

    #[test]
    fn sweep_orders_by_magnitude() {
        let src = "
module m (a, m0, y0, y1, y2);
  input a;
  mask_input m0;
  output y0, y1, y2;
  xor g0 (y0, a, m0);
  buf g1 (y1, m0);
  not g2 (y2, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(1500, 1500, 7).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let sweep = bivariate_sweep(&samples, &n.cell_ids());
        assert_eq!(sweep.len(), 3);
        for w in sweep.windows(2) {
            assert!(w[0].2.t.abs() >= w[1].2.t.abs());
        }
    }
}
