//! Bivariate (true second-order) TVLA — streaming co-moment engine.
//!
//! A d-th-order masked implementation forces the adversary to *combine*
//! d + 1 probe points. The standard second-order test therefore combines
//! two sample points per trace: the preprocessed statistic is the product
//! of the two points' class-centered samples,
//! `y = (e₁ − μ₁)(e₂ − μ₂)`, followed by Welch's t-test between the fixed
//! and random classes (Schneider–Moradi §4.2).
//!
//! Against the crate's gate-level samples this combines two *gates'*
//! energies. A first-order (2-share) Trichina composite has gate pairs
//! whose joint toggle statistics are data-dependent — e.g. the remasked
//! product `(a·b) ⊕ z` together with any gate carrying `z` — while a
//! second-order (3-share) ISW composite requires three-way combinations and
//! passes every bivariate test (see the workspace integration tests).
//!
//! # Streaming, mergeable co-moments
//!
//! The naive formulation needs the class means before it can center, so it
//! buffers `O(traces)` samples per gate and makes two passes. [`PairMoments`]
//! instead maintains the bivariate *central co-moments*
//! `C_pq = Σ (x − μx)^p (y − μy)^q` through degree `(2, 2)` about the
//! running class means, with exact single-sample push and pairwise merge
//! recurrences (the bivariate extension of the Pébay updates in
//! [`crate::moments`]). Re-centering is built into the algebra: after any
//! sequence of pushes and merges the co-moments are exactly those about the
//! final mean, so the class mean never needs to be known up front. The
//! centered-product Welch t then falls out of the folded state —
//! `mean = C₁₁/n`, `Σ (p − p̄)² = C₂₂ − C₁₁²/n` — and a whole sweep runs in
//! `O(gate-pairs)` memory, single-pass, sharded and merged bit-identically
//! like every other [`MergeableSink`] (see [`PairAccumulator`]).
//!
//! The dense [`GateSamples`] entry points ([`bivariate_t`],
//! [`bivariate_sweep`]) are kept as the buffered-samples compatibility
//! surface, but they now fold the *same* co-moment computation DAG —
//! [`TRACES_PER_SHARD`]-trace chunks pushed in order, merged left to right —
//! so their t-values are bit-for-bit identical to the streaming engine's.

use polaris_netlist::{GateId, Netlist, NetlistError};
use polaris_sim::campaign::{
    run_campaign_parallel_with, CampaignConfig, EnergyBatch, GateSamples, MergeableSink,
    Parallelism, Population, TraceSink, TRACES_PER_SHARD,
};
use polaris_sim::power::PowerModel;

use crate::welch::WelchResult;

/// Streaming accumulator for bivariate central co-moments through degree
/// `(2, 2)`: `n`, the two means, and `C_pq = Σ (x − μx)^p (y − μy)^q` for
/// `(p, q) ∈ {(2,0), (0,2), (1,1), (2,1), (1,2), (2,2)}`, all about the
/// running means.
///
/// `C₁₁` and `C₂₂` are exactly the sums the centered-product second-order
/// test needs ([`pair_welch_t`]); the odd co-moments `C₂₁`/`C₁₂` are carried
/// because the push/merge recurrences of `C₂₂` consume them — dropping them
/// would make the accumulator non-mergeable.
///
/// Like [`crate::moments::StreamingMoments`], the accumulator is exact in
/// infinite precision and deterministic in floating point: any fixed
/// sequence of pushes and merges produces the same bits on every thread
/// count and lane width, which is what the campaign engine's shard-ordered
/// fold relies on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PairMoments {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    c20: f64,
    c02: f64,
    c11: f64,
    c21: f64,
    c12: f64,
    c22: f64,
}

impl PairMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        PairMoments::default()
    }

    /// Adds one joint sample `(x, y)`.
    ///
    /// Higher-degree co-moments are updated first so every recurrence reads
    /// the *previous* lower-degree state, mirroring
    /// [`crate::moments::StreamingMoments::push`] (to which this degenerates
    /// exactly on the diagonal `y = x`).
    pub fn push(&mut self, x: f64, y: f64) {
        let n1 = self.n;
        self.n += 1;
        let nf = self.n as f64;
        let n1f = n1 as f64;
        let delta_x = x - self.mean_x;
        let delta_y = y - self.mean_y;
        let dx = delta_x / nf;
        let dy = delta_y / nf;
        self.c22 += dx * dy * delta_x * delta_y * n1f * (n1f * n1f - n1f + 1.0) / nf
            + dy * dy * self.c20
            + dx * dx * self.c02
            + 4.0 * dx * dy * self.c11
            - 2.0 * dy * self.c21
            - 2.0 * dx * self.c12;
        self.c21 += dx * delta_x * dy * n1f * (n1f - 1.0) - dy * self.c20 - 2.0 * dx * self.c11;
        self.c12 += dy * delta_y * dx * n1f * (n1f - 1.0) - dx * self.c02 - 2.0 * dy * self.c11;
        self.c20 += delta_x * dx * n1f;
        self.c02 += delta_y * dy * n1f;
        self.c11 += delta_x * dy * n1f;
        self.mean_x += dx;
        self.mean_y += dy;
    }

    /// Blocked batch update: applies the exact [`PairMoments::push`]
    /// recurrence to every `(xs[i], ys[i])` sample in order, on
    /// register-resident accumulator state written back once — the SoA hot
    /// path of [`PairAccumulator::record_batch`]. Bit-for-bit identical to
    /// sequential `push` at any batch cut (the golden test pins this), so
    /// the lane width never affects results.
    ///
    /// # Panics
    ///
    /// Debug-asserts `xs.len() == ys.len()`; in release builds the shorter
    /// slice bounds the update.
    pub fn extend_batch(&mut self, xs: &[f64], ys: &[f64]) {
        debug_assert_eq!(xs.len(), ys.len(), "joint sample slices must align");
        let (mut n, mut mean_x, mut mean_y) = (self.n, self.mean_x, self.mean_y);
        let (mut c20, mut c02, mut c11) = (self.c20, self.c02, self.c11);
        let (mut c21, mut c12, mut c22) = (self.c21, self.c12, self.c22);
        for (&x, &y) in xs.iter().zip(ys) {
            let n1 = n;
            n += 1;
            let nf = n as f64;
            let n1f = n1 as f64;
            let delta_x = x - mean_x;
            let delta_y = y - mean_y;
            let dx = delta_x / nf;
            let dy = delta_y / nf;
            c22 += dx * dy * delta_x * delta_y * n1f * (n1f * n1f - n1f + 1.0) / nf
                + dy * dy * c20
                + dx * dx * c02
                + 4.0 * dx * dy * c11
                - 2.0 * dy * c21
                - 2.0 * dx * c12;
            c21 += dx * delta_x * dy * n1f * (n1f - 1.0) - dy * c20 - 2.0 * dx * c11;
            c12 += dy * delta_y * dx * n1f * (n1f - 1.0) - dx * c02 - 2.0 * dy * c11;
            c20 += delta_x * dx * n1f;
            c02 += delta_y * dy * n1f;
            c11 += delta_x * dy * n1f;
            mean_x += dx;
            mean_y += dy;
        }
        self.n = n;
        self.mean_x = mean_x;
        self.mean_y = mean_y;
        self.c20 = c20;
        self.c02 = c02;
        self.c11 = c11;
        self.c21 = c21;
        self.c12 = c12;
        self.c22 = c22;
    }

    /// Merges another accumulator into this one (parallel combination à la
    /// Chan/Pébay). Empty sides are identities: merging an empty `other` is
    /// a no-op, and merging into an empty `self` adopts `other` bit for bit
    /// — exactly the behavior the shard-ordered campaign fold requires when
    /// a shard only saw one population.
    pub fn merge(&mut self, other: &PairMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta_x = other.mean_x - self.mean_x;
        let delta_y = other.mean_y - self.mean_y;
        // Mean shifts of the two sides toward the combined mean.
        let ax = delta_x * nb / n;
        let ay = delta_y * nb / n;
        let bx = delta_x * na / n;
        let by = delta_y * na / n;

        let c20 = self.c20 + other.c20 + delta_x * delta_x * na * nb / n;
        let c02 = self.c02 + other.c02 + delta_y * delta_y * na * nb / n;
        let c11 = self.c11 + other.c11 + delta_x * delta_y * na * nb / n;
        let c21 =
            self.c21 + other.c21 + delta_x * delta_x * delta_y * na * nb * (na - nb) / (n * n)
                - ay * self.c20
                + by * other.c20
                - 2.0 * ax * self.c11
                + 2.0 * bx * other.c11;
        let c12 =
            self.c12 + other.c12 + delta_x * delta_y * delta_y * na * nb * (na - nb) / (n * n)
                - ax * self.c02
                + bx * other.c02
                - 2.0 * ay * self.c11
                + 2.0 * by * other.c11;
        let c22 = self.c22
            + other.c22
            + delta_x * delta_x * delta_y * delta_y * na * nb * (na * na - na * nb + nb * nb)
                / (n * n * n)
            + ay * ay * self.c20
            + by * by * other.c20
            + ax * ax * self.c02
            + bx * bx * other.c02
            + 4.0 * (ax * ay * self.c11 + bx * by * other.c11)
            - 2.0 * ay * self.c21
            + 2.0 * by * other.c21
            - 2.0 * ax * self.c12
            + 2.0 * bx * other.c12;

        self.mean_x += ax;
        self.mean_y += ay;
        self.c20 = c20;
        self.c02 = c02;
        self.c11 = c11;
        self.c21 = c21;
        self.c12 = c12;
        self.c22 = c22;
        self.n += other.n;
    }

    /// Number of joint samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the first coordinate.
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Mean of the second coordinate.
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Sample covariance numerator `C₁₁ / n` — the mean of the centered
    /// products, i.e. the population covariance.
    pub fn centered_product_mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.c11 / self.n as f64
        }
    }

    /// Population variance of the centered products
    /// `(C₂₂ − C₁₁²/n) / n` — the second ingredient of [`pair_welch_t`].
    pub fn centered_product_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            let nf = self.n as f64;
            let m = self.c11 / nf;
            self.c22 / nf - m * m
        }
    }

    /// The raw accumulator state `(n, [mean_x, mean_y, C₂₀, C₀₂, C₁₁, C₂₁,
    /// C₁₂, C₂₂])` — the snapshot side of the distributed shard-state
    /// format. Together with [`PairMoments::from_raw_parts`] this
    /// round-trips the accumulator exactly (floats transported bit for
    /// bit), so a restored accumulator merges and reports identically to
    /// the original.
    pub fn raw_parts(&self) -> (u64, [f64; 8]) {
        (
            self.n,
            [
                self.mean_x,
                self.mean_y,
                self.c20,
                self.c02,
                self.c11,
                self.c21,
                self.c12,
                self.c22,
            ],
        )
    }

    /// Restores an accumulator from [`PairMoments::raw_parts`] state.
    pub fn from_raw_parts(n: u64, m: [f64; 8]) -> Self {
        PairMoments {
            n,
            mean_x: m[0],
            mean_y: m[1],
            c20: m[2],
            c02: m[3],
            c11: m[4],
            c21: m[5],
            c12: m[6],
            c22: m[7],
        }
    }
}

/// Centered-product Welch t-test from two folded [`PairMoments`] (fixed
/// class vs random class): the streaming equivalent of running
/// [`crate::welch::welch_t`] over the per-trace products
/// `(e₁ − μ₁)(e₂ − μ₂)`.
///
/// Degenerate inputs (fewer than 2 joint samples on a side, or a
/// non-positive standard error) yield `t = 0, dof = 0`, matching
/// [`crate::welch::welch_t`].
pub fn pair_welch_t(q0: &PairMoments, q1: &PairMoments) -> WelchResult {
    if q0.count() < 2 || q1.count() < 2 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let n0 = q0.count() as f64;
    let n1 = q1.count() as f64;
    // Unbiased sample variance of the centered products.
    let v0 = q0.centered_product_variance() * n0 / (n0 - 1.0);
    let v1 = q1.centered_product_variance() * n1 / (n1 - 1.0);
    let se2 = v0 / n0 + v1 / n1;
    if se2 <= 0.0 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let t = (q0.centered_product_mean() - q1.centered_product_mean()) / se2.sqrt();
    let denom = (v0 / n0).powi(2) / (n0 - 1.0) + (v1 / n1).powi(2) / (n1 - 1.0);
    let dof = if denom > 0.0 { se2 * se2 / denom } else { 0.0 };
    WelchResult { t, dof }
}

/// Why a multivariate (bivariate or trivariate) assessment rejected its
/// input.
///
/// These are *typed* errors rather than panics so hostile or mismatched
/// inputs (a gate index past the design, class buffers of unequal length, a
/// degenerate gate combination) surface as a distinct CLI exit code instead
/// of a crash — the same convention the distributed subsystem uses for
/// malformed shard files. The pair and triple engines share one error type
/// so both map to the same exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultivariateError {
    /// A requested gate index is outside the sampled design.
    GateOutOfRange {
        /// The offending gate index.
        gate: usize,
        /// Number of gates the samples (or netlist) cover.
        gates: usize,
    },
    /// The two gates' class buffers disagree on trace count, so no joint
    /// per-trace product exists.
    LengthMismatch {
        /// First gate of the pair.
        gate_a: usize,
        /// Second gate of the pair.
        gate_b: usize,
        /// Trace count of `gate_a`'s buffer.
        len_a: usize,
        /// Trace count of `gate_b`'s buffer.
        len_b: usize,
    },
    /// One entry names the same gate more than once (`A:A` or `A:B:A`) —
    /// the "joint" statistic would degenerate to a univariate power and the
    /// row would masquerade as a combination result.
    RepeatedGate {
        /// The gate index that repeats within the entry.
        gate: usize,
    },
    /// An entry duplicates an earlier one (in any order), which would burn
    /// an accumulator slot re-deriving the same statistic and emit the same
    /// row twice.
    DuplicateEntry {
        /// Position of the second occurrence in the requested list.
        index: usize,
    },
    /// The underlying simulation failed (unlevelizable design).
    Sim(NetlistError),
}

/// Pre-trivariate name for [`MultivariateError`], kept as an alias so
/// second-order callers keep compiling unchanged.
pub type BivariateError = MultivariateError;

impl std::fmt::Display for MultivariateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultivariateError::GateOutOfRange { gate, gates } => {
                write!(f, "gate {gate} out of range: samples cover {gates} gates")
            }
            MultivariateError::LengthMismatch {
                gate_a,
                gate_b,
                len_a,
                len_b,
            } => write!(
                f,
                "gates {gate_a} and {gate_b} have mismatched class buffers \
                 ({len_a} vs {len_b} traces)"
            ),
            MultivariateError::RepeatedGate { gate } => write!(
                f,
                "gate {gate} repeats within one entry: a gate combined with \
                 itself carries no joint information"
            ),
            MultivariateError::DuplicateEntry { index } => write!(
                f,
                "entry {index} duplicates an earlier gate combination \
                 (order within an entry does not matter)"
            ),
            MultivariateError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for MultivariateError {}

impl From<NetlistError> for MultivariateError {
    fn from(e: NetlistError) -> Self {
        MultivariateError::Sim(e)
    }
}

/// Streaming bivariate sink: one [`PairMoments`] per (gate-pair, class),
/// `O(gate-pairs)` memory regardless of trace count.
///
/// The accumulator is a [`MergeableSink`], so it rides every execution
/// strategy of the campaign engine unchanged — [`run_campaign_parallel_with`]
/// threads, fleet jobs via a sink factory, and distributed shard states —
/// with the usual guarantee: bit-identical results at any thread count,
/// lane width, or shard partitioning.
///
/// A default-constructed accumulator tracks no pairs (the identity the
/// shard fold needs); [`PairAccumulator::merge`] adopts the other side's
/// pair list when `self` is empty, mirroring the other sinks' lazy-shape
/// convention.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PairAccumulator {
    /// Tracked gate pairs as `(a, b)` gate indices.
    pairs: Vec<(u32, u32)>,
    fixed: Vec<PairMoments>,
    random: Vec<PairMoments>,
}

impl PairAccumulator {
    /// An accumulator tracking the given gate pairs (indices into the
    /// design's gate list).
    pub fn for_pairs(pairs: Vec<(u32, u32)>) -> Self {
        let fixed = vec![PairMoments::new(); pairs.len()];
        let random = vec![PairMoments::new(); pairs.len()];
        PairAccumulator {
            pairs,
            fixed,
            random,
        }
    }

    /// Reassembles an accumulator from its parts (the restore side of the
    /// distributed shard-state format).
    ///
    /// # Panics
    ///
    /// Panics if the class vectors do not match the pair list's length.
    pub fn from_parts(
        pairs: Vec<(u32, u32)>,
        fixed: Vec<PairMoments>,
        random: Vec<PairMoments>,
    ) -> Self {
        assert_eq!(pairs.len(), fixed.len(), "fixed moments shape mismatch");
        assert_eq!(pairs.len(), random.len(), "random moments shape mismatch");
        PairAccumulator {
            pairs,
            fixed,
            random,
        }
    }

    /// The tracked gate pairs, in recording order.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of tracked pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The per-pair class accumulators, `(fixed, random)` — the snapshot
    /// side of the distributed shard-state format.
    pub fn class_moments(&self) -> (&[PairMoments], &[PairMoments]) {
        (&self.fixed, &self.random)
    }

    /// Centered-product Welch t per tracked pair, in recording order.
    pub fn results(&self) -> Vec<(GateId, GateId, WelchResult)> {
        self.pairs
            .iter()
            .zip(self.fixed.iter().zip(&self.random))
            .map(|(&(a, b), (f, r))| {
                (
                    GateId::new(a as usize),
                    GateId::new(b as usize),
                    pair_welch_t(f, r),
                )
            })
            .collect()
    }

    /// [`PairAccumulator::results`] sorted by descending `|t|` (NaN last,
    /// via the total order on `f64`).
    pub fn sweep(&self) -> Vec<(GateId, GateId, WelchResult)> {
        let mut out = self.results();
        sort_by_abs_t(&mut out);
        out
    }
}

/// Sorts pair results by descending `|t|` using [`f64::total_cmp`], so NaN
/// t-values order deterministically (last) instead of depending on the
/// comparison-failure fallback.
fn sort_by_abs_t(results: &mut [(GateId, GateId, WelchResult)]) {
    results.sort_by(|a, b| b.2.t.abs().total_cmp(&a.2.t.abs()));
}

impl TraceSink for PairAccumulator {
    /// Folds one SoA energy batch: for every tracked pair the two gates'
    /// lane rows stream through [`PairMoments::extend_batch`], so the hot
    /// path is two contiguous reads per pair with register-resident state.
    ///
    /// # Panics
    ///
    /// Panics if a tracked pair references a gate outside the batch —
    /// callers validate pair indices against the design before running a
    /// campaign (see [`assess_pairs`]).
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
        let store = match pop {
            Population::Fixed => &mut self.fixed,
            Population::Random => &mut self.random,
        };
        for (m, &(a, b)) in store.iter_mut().zip(&self.pairs) {
            m.extend_batch(batch.gate_lanes(a as usize), batch.gate_lanes(b as usize));
        }
    }
}

impl MergeableSink for PairAccumulator {
    /// Pairwise co-moment combination per (pair, class); an empty side is
    /// the identity (a default-constructed accumulator adopts `other`).
    fn merge(&mut self, other: Self) {
        if other.pairs.is_empty() {
            return;
        }
        if self.pairs.is_empty() {
            *self = other;
            return;
        }
        debug_assert_eq!(self.pairs, other.pairs, "pair list mismatch in merge");
        for (d, s) in self.fixed.iter_mut().zip(&other.fixed) {
            d.merge(s);
        }
        for (d, s) in self.random.iter_mut().zip(&other.random) {
            d.merge(s);
        }
    }
}

/// Validates a pair list against a design's gate count and rejects
/// degenerate entries: self-pairs (`A:A`) and duplicates of an earlier pair
/// in either orientation. Both the CLI and the distributed plan verifier
/// route through this one function, so coordinator and worker agree on what
/// a well-formed pair list is.
///
/// # Errors
///
/// Returns [`MultivariateError::GateOutOfRange`] for the first
/// out-of-design index, [`MultivariateError::RepeatedGate`] for the first
/// self-pair, and [`MultivariateError::DuplicateEntry`] for the first
/// repeat of an earlier entry.
pub fn validate_pairs(pairs: &[(u32, u32)], gates: usize) -> Result<(), MultivariateError> {
    let mut seen = std::collections::HashSet::with_capacity(pairs.len());
    for (index, &(a, b)) in pairs.iter().enumerate() {
        for g in [a as usize, b as usize] {
            if g >= gates {
                return Err(MultivariateError::GateOutOfRange { gate: g, gates });
            }
        }
        if a == b {
            return Err(MultivariateError::RepeatedGate { gate: a as usize });
        }
        if !seen.insert((a.min(b), a.max(b))) {
            return Err(MultivariateError::DuplicateEntry { index });
        }
    }
    Ok(())
}

/// All `i < j` pairs among `gates`, as gate-index pairs — the pair list of
/// an exhaustive sweep over a gate subset.
pub fn all_pairs(gates: &[GateId]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::with_capacity(gates.len() * gates.len().saturating_sub(1) / 2);
    for (i, &g1) in gates.iter().enumerate() {
        for &g2 in &gates[i + 1..] {
            pairs.push((g1.index() as u32, g2.index() as u32));
        }
    }
    pairs
}

/// Runs a streaming bivariate sweep over `pairs` as one parallel campaign:
/// single pass over the traces, `O(gate-pairs)` memory, sorted by
/// descending `|t|`. Results are bit-identical at any thread count and lane
/// width, and equal to [`bivariate_sweep`] over dense samples of the same
/// campaign bit for bit.
///
/// # Errors
///
/// [`MultivariateError::GateOutOfRange`] if a pair references a gate outside
/// the design; [`MultivariateError::Sim`] if the design cannot be levelized.
pub fn assess_pairs(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    pairs: &[(u32, u32)],
) -> Result<Vec<(GateId, GateId, WelchResult)>, BivariateError> {
    validate_pairs(pairs, netlist.gate_count())?;
    let acc: PairAccumulator =
        run_campaign_parallel_with(netlist, model, config, parallelism, || {
            PairAccumulator::for_pairs(pairs.to_vec())
        })?;
    Ok(acc.sweep())
}

/// Folds one gate pair's dense class buffers through the campaign engine's
/// exact computation DAG: [`TRACES_PER_SHARD`]-trace chunks accumulated in
/// trace order, merged left to right. This is what makes the dense
/// compatibility path bit-identical to the streaming sink — same samples,
/// same recurrences, same fold order.
fn class_pair_moments(xs: &[f64], ys: &[f64]) -> PairMoments {
    let mut acc = PairMoments::new();
    for (cx, cy) in xs.chunks(TRACES_PER_SHARD).zip(ys.chunks(TRACES_PER_SHARD)) {
        let mut m = PairMoments::new();
        m.extend_batch(cx, cy);
        acc.merge(&m);
    }
    acc
}

/// Bivariate second-order Welch t-test between the fixed and random classes
/// for the gate pair `(g1, g2)`, from dense samples.
///
/// Compatibility entry point for callers that already hold a
/// [`GateSamples`] matrix; computes the same co-moment fold as the
/// streaming engine (see [`PairAccumulator`]), so the result is bit-for-bit
/// identical to a streaming sweep of the same campaign.
///
/// # Errors
///
/// [`MultivariateError::GateOutOfRange`] if a gate is outside the samples;
/// [`MultivariateError::LengthMismatch`] if the two gates' class buffers
/// disagree on trace count.
pub fn bivariate_t(
    samples: &GateSamples,
    g1: GateId,
    g2: GateId,
) -> Result<WelchResult, BivariateError> {
    let gates = samples.gate_count();
    for g in [g1.index(), g2.index()] {
        if g >= gates {
            return Err(BivariateError::GateOutOfRange { gate: g, gates });
        }
    }
    for (e1, e2) in [
        (samples.fixed(g1), samples.fixed(g2)),
        (samples.random(g1), samples.random(g2)),
    ] {
        if e1.len() != e2.len() {
            return Err(BivariateError::LengthMismatch {
                gate_a: g1.index(),
                gate_b: g2.index(),
                len_a: e1.len(),
                len_b: e2.len(),
            });
        }
    }
    let fixed = class_pair_moments(samples.fixed(g1), samples.fixed(g2));
    let random = class_pair_moments(samples.random(g1), samples.random(g2));
    Ok(pair_welch_t(&fixed, &random))
}

/// Scans every pair among `gates` and returns `(g1, g2, result)` sorted by
/// descending `|t|` — the exhaustive bivariate sweep an evaluator runs on a
/// masked core. Dense compatibility wrapper over the co-moment engine; see
/// [`assess_pairs`] for the single-pass streaming equivalent.
///
/// # Errors
///
/// Propagates the first [`MultivariateError`] of any pair.
pub fn bivariate_sweep(
    samples: &GateSamples,
    gates: &[GateId],
) -> Result<Vec<(GateId, GateId, WelchResult)>, BivariateError> {
    let mut out = Vec::with_capacity(gates.len() * gates.len().saturating_sub(1) / 2);
    for (i, &g1) in gates.iter().enumerate() {
        for &g2 in &gates[i + 1..] {
            out.push((g1, g2, bivariate_t(samples, g1, g2)?));
        }
    }
    sort_by_abs_t(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::StreamingMoments;
    use polaris_sim::campaign::collect_gate_samples;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
            })
            .collect()
    }

    /// Reference two-pass co-moments about the final means.
    fn naive(xs: &[f64], ys: &[f64]) -> (f64, f64, [f64; 6]) {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let c = |p: i32, q: i32| {
            xs.iter()
                .zip(ys)
                .map(|(&x, &y)| (x - mx).powi(p) * (y - my).powi(q))
                .sum::<f64>()
        };
        (
            mx,
            my,
            [c(2, 0), c(0, 2), c(1, 1), c(2, 1), c(1, 2), c(2, 2)],
        )
    }

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        let scale = 1.0_f64.max(a.abs()).max(b.abs());
        assert!((a - b).abs() <= tol * scale, "{what}: {a} vs {b}");
    }

    #[test]
    fn closed_form_small_vector() {
        // xs = ys = [1,2,3,4]: C20 = C02 = C11 = 5, C21 = C12 = 0
        // (symmetric), C22 = Σ(x−2.5)⁴ = 2·(1.5⁴ + 0.5⁴) = 10.25.
        let mut m = PairMoments::new();
        m.extend_batch(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.count(), 4);
        let (_, c) = m.raw_parts();
        assert!((m.mean_x() - 2.5).abs() < 1e-15);
        assert!((m.mean_y() - 2.5).abs() < 1e-15);
        for (i, want) in [5.0, 5.0, 5.0, 0.0, 0.0, 10.25].iter().enumerate() {
            assert!((c[2 + i] - want).abs() < 1e-12, "C[{i}] = {}", c[2 + i]);
        }
        // Anti-correlated pair: C11 flips sign, C22 unchanged.
        let mut a = PairMoments::new();
        a.extend_batch(&[1.0, 2.0, 3.0, 4.0], &[4.0, 3.0, 2.0, 1.0]);
        let (_, ca) = a.raw_parts();
        assert!((ca[4] + 5.0).abs() < 1e-12, "C11 = {}", ca[4]);
        assert!((ca[7] - 10.25).abs() < 1e-12, "C22 = {}", ca[7]);
    }

    #[test]
    fn diagonal_matches_univariate_moments() {
        // On y = x the co-moments collapse onto the univariate central
        // moments: C20 = C02 = C11 = M2, C21 = C12 = M3, C22 = M4.
        let xs = pseudo_random(2000, 3);
        let mut pm = PairMoments::new();
        let mut sm = StreamingMoments::new();
        for &x in &xs {
            pm.push(x, x);
            sm.push(x);
        }
        let (_, m1, m2, m3, m4) = sm.raw_parts();
        let (_, c) = pm.raw_parts();
        assert_close(c[0], m1, 1e-12, "mean");
        for (i, m) in [m2, m2, m2, m3, m3, m4].iter().enumerate() {
            assert_close(c[2 + i], *m, 1e-9, "diagonal co-moment");
        }
    }

    #[test]
    fn streaming_matches_two_pass() {
        let xs = pseudo_random(5000, 42);
        let ys: Vec<f64> = pseudo_random(5000, 43)
            .iter()
            .zip(&xs)
            .map(|(a, b)| a + 0.3 * b)
            .collect();
        let mut m = PairMoments::new();
        m.extend_batch(&xs, &ys);
        let (mx, my, c) = naive(&xs, &ys);
        assert_close(m.mean_x(), mx, 1e-12, "mean_x");
        assert_close(m.mean_y(), my, 1e-12, "mean_y");
        let (_, got) = m.raw_parts();
        for (i, want) in c.iter().enumerate() {
            assert_close(got[2 + i], *want, 1e-7, "co-moment");
        }
    }

    #[test]
    fn merge_matches_two_pass_at_any_split() {
        let xs = pseudo_random(3000, 7);
        let ys = pseudo_random(3000, 11);
        let (_, _, c_all) = naive(&xs, &ys);
        for split in [1usize, 17, 256, 1500, 2999] {
            let mut a = PairMoments::new();
            a.extend_batch(&xs[..split], &ys[..split]);
            let mut b = PairMoments::new();
            b.extend_batch(&xs[split..], &ys[split..]);
            a.merge(&b);
            assert_eq!(a.count(), 3000);
            let (_, got) = a.raw_parts();
            for (i, want) in c_all.iter().enumerate() {
                assert_close(got[2 + i], *want, 1e-7, "merged co-moment");
            }
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = pseudo_random(100, 3);
        let ys = pseudo_random(100, 4);
        let mut m = PairMoments::new();
        m.extend_batch(&xs, &ys);
        let snapshot = m;
        m.merge(&PairMoments::new());
        assert_eq!(m, snapshot);
        let mut empty = PairMoments::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn extend_batch_is_bit_identical_to_sequential_push() {
        // Golden guarantee of the SoA hot path: the blocked update must
        // reproduce sequential push *exactly* (all nine raw fields, to the
        // bit) at every split — including resuming on top of scalar state.
        // This is what makes the lane width and batch cuts invisible.
        let xs = pseudo_random(4096, 99);
        let ys = pseudo_random(4096, 100);
        let mut scalar = PairMoments::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            scalar.push(x, y);
        }
        let (n_a, c_a) = scalar.raw_parts();
        for split in [0usize, 1, 63, 64, 65, 1000, 4096] {
            let mut blocked = PairMoments::new();
            for (&x, &y) in xs[..split].iter().zip(&ys[..split]) {
                blocked.push(x, y);
            }
            blocked.extend_batch(&xs[split..], &ys[split..]);
            let (n_b, c_b) = blocked.raw_parts();
            assert_eq!(n_a, n_b, "split {split}");
            for (i, (a, b)) in c_a.iter().zip(&c_b).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "split {split} field {i}");
            }
        }
    }

    #[test]
    fn raw_parts_round_trip_exactly() {
        let mut m = PairMoments::new();
        m.extend_batch(&pseudo_random(500, 1), &pseudo_random(500, 2));
        let (n, c) = m.raw_parts();
        let restored = PairMoments::from_raw_parts(n, c);
        assert_eq!(m, restored);
    }

    #[test]
    fn pair_welch_t_matches_naive_centered_products() {
        // The co-moment t must agree (to fp tolerance) with literally
        // centering on the class means and running Welch over the products.
        let f1 = pseudo_random(800, 21);
        let f2 = pseudo_random(800, 22);
        let r1: Vec<f64> = pseudo_random(900, 23).iter().map(|x| x + 0.2).collect();
        let r2 = pseudo_random(900, 24);
        let center = |e1: &[f64], e2: &[f64]| -> Vec<f64> {
            let n = e1.len() as f64;
            let m1 = e1.iter().sum::<f64>() / n;
            let m2 = e2.iter().sum::<f64>() / n;
            e1.iter()
                .zip(e2)
                .map(|(&a, &b)| (a - m1) * (b - m2))
                .collect()
        };
        let want = crate::welch::welch_t_slices(&center(&f1, &f2), &center(&r1, &r2));
        let mut qf = PairMoments::new();
        qf.extend_batch(&f1, &f2);
        let mut qr = PairMoments::new();
        qr.extend_batch(&r1, &r2);
        let got = pair_welch_t(&qf, &qr);
        assert_close(got.t, want.t, 1e-9, "t");
        assert_close(got.dof, want.dof, 1e-9, "dof");
    }

    #[test]
    fn pair_welch_t_degenerate_inputs() {
        let mut one = PairMoments::new();
        one.push(1.0, 2.0);
        let mut many = PairMoments::new();
        many.extend_batch(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert_eq!(pair_welch_t(&one, &many), WelchResult { t: 0.0, dof: 0.0 });
        // Constant products on both sides: se² = 0.
        let mut ca = PairMoments::new();
        ca.extend_batch(&[2.0, 2.0, 2.0], &[5.0, 5.0, 5.0]);
        let mut cb = PairMoments::new();
        cb.extend_batch(&[1.0, 1.0], &[4.0, 4.0]);
        assert_eq!(pair_welch_t(&ca, &cb), WelchResult { t: 0.0, dof: 0.0 });
    }

    #[test]
    fn dense_entry_points_reject_bad_input() {
        let samples = GateSamples::from_classes(
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        );
        let g = |i: usize| GateId::new(i);
        assert_eq!(
            bivariate_t(&samples, g(0), g(5)).unwrap_err(),
            BivariateError::GateOutOfRange { gate: 5, gates: 2 }
        );
        assert_eq!(
            bivariate_t(&samples, g(0), g(1)).unwrap_err(),
            BivariateError::LengthMismatch {
                gate_a: 0,
                gate_b: 1,
                len_a: 2,
                len_b: 1
            }
        );
        assert!(bivariate_sweep(&samples, &[g(0), g(1)]).is_err());
        assert!(validate_pairs(&[(0, 2)], 2).is_err());
        assert!(validate_pairs(&[(0, 1)], 2).is_ok());
        // Errors render.
        let e = BivariateError::GateOutOfRange { gate: 5, gates: 2 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn sink_reproduces_direct_accumulation() {
        // A PairAccumulator fed EnergyBatches must hold exactly the moments
        // of extending the pair rows directly.
        let gates = 3;
        let lanes = 4;
        let energies: Vec<f64> = pseudo_random(gates * lanes, 55);
        let batch = EnergyBatch::new(&energies, gates, lanes).unwrap();
        let mut sink = PairAccumulator::for_pairs(vec![(0, 2), (1, 2)]);
        sink.record_batch(Population::Fixed, batch);
        sink.record_batch(Population::Random, batch);
        for (k, &(a, b)) in [(0u32, 2u32), (1, 2)].iter().enumerate() {
            let mut want = PairMoments::new();
            want.extend_batch(batch.gate_lanes(a as usize), batch.gate_lanes(b as usize));
            let (fixed, random) = sink.class_moments();
            assert_eq!(fixed[k], want);
            assert_eq!(random[k], want);
        }
    }

    #[test]
    fn sink_merge_has_empty_identity() {
        let mut a = PairAccumulator::for_pairs(vec![(0, 1)]);
        let e = vec![1.0, 2.0, 3.0, 4.0];
        a.record_batch(Population::Fixed, EnergyBatch::new(&e, 2, 2).unwrap());
        let snapshot = a.clone();
        a.merge(PairAccumulator::default());
        assert_eq!(a, snapshot);
        let mut empty = PairAccumulator::default();
        empty.merge(snapshot.clone());
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn independent_gates_show_no_bivariate_leakage() {
        // Two xors of independent fresh masks: no pair carries joint
        // data-dependence.
        let src = "
module m (a, b, m0, m1, y0, y1);
  input a, b;
  mask_input m0, m1;
  output y0, y1;
  xor g0 (y0, a, m0);
  xor g1 (y1, b, m1);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(3000, 3000, 5);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let cells = n.cell_ids();
        let r = bivariate_t(&samples, cells[0], cells[1]).unwrap();
        assert!(
            r.t.abs() < crate::TVLA_THRESHOLD,
            "independent masked gates must pass: |t| = {:.2}",
            r.t.abs()
        );
    }

    #[test]
    fn shared_mask_pair_leaks_bivariately() {
        // The classic 2nd-order situation: y0 = a ⊕ m, y1 = m. Neither gate
        // leaks first-order, but their joint statistics reveal `a`.
        let src = "
module m (a, m0, y0, y1);
  input a;
  mask_input m0;
  output y0, y1;
  xor g0 (y0, a, m0);
  buf g1 (y1, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(4000, 4000, 7).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let cells = n.cell_ids();
        // First order: both clean.
        let first = crate::assess(&n, &model, &cfg).unwrap();
        for &c in &cells {
            assert!(
                first.abs_t(c) < crate::TVLA_THRESHOLD,
                "gate should be first-order clean: {:.2}",
                first.abs_t(c)
            );
        }
        // Second order: the pair leaks — on the dense path…
        let r = bivariate_t(&samples, cells[0], cells[1]).unwrap();
        assert!(
            r.t.abs() > crate::TVLA_THRESHOLD,
            "shared-mask pair must fail bivariate TVLA: |t| = {:.2}",
            r.t.abs()
        );
        // …and bit-identically on the streaming path.
        let streaming = assess_pairs(
            &n,
            &model,
            &cfg,
            Parallelism::sequential(),
            &all_pairs(&cells),
        )
        .unwrap();
        let (_, _, sr) = streaming
            .iter()
            .find(|(a, b, _)| (*a, *b) == (cells[0], cells[1]))
            .unwrap();
        assert_eq!(sr.t.to_bits(), r.t.to_bits());
        assert_eq!(sr.dof.to_bits(), r.dof.to_bits());
    }

    #[test]
    fn sweep_orders_by_magnitude() {
        let src = "
module m (a, m0, y0, y1, y2);
  input a;
  mask_input m0;
  output y0, y1, y2;
  xor g0 (y0, a, m0);
  buf g1 (y1, m0);
  not g2 (y2, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(1500, 1500, 7).with_fixed_vector(vec![true]);
        let model = PowerModel::default().with_noise(0.05);
        let samples = collect_gate_samples(&n, &model, &cfg).unwrap();
        let sweep = bivariate_sweep(&samples, &n.cell_ids()).unwrap();
        assert_eq!(sweep.len(), 3);
        for w in sweep.windows(2) {
            assert!(w[0].2.t.abs() >= w[1].2.t.abs());
        }
    }
}
