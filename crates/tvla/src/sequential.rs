//! Adaptive sequential stopping for TVLA campaigns.
//!
//! The cognition loop re-runs full campaigns after every masking step, but
//! leakage verdicts (|t| > 4.5, paper Eq. 1) usually converge long before
//! the configured trace budget is spent. This module implements the
//! group-sequential stopping rule the round-checkpointed campaign engine
//! (see [`polaris_sim::campaign::run_campaign_adaptive`]) evaluates at each
//! round boundary:
//!
//! * every gate's Welch t must be **resolved** — either it exceeds the leak
//!   threshold (the gate fails TVLA; a crossing at any look is a valid
//!   verdict) or its confidence interval excludes the threshold
//!   (`|t| + z_k ≤ threshold`: confidently clean);
//! * the per-look margin `z_k` comes from an O'Brien–Fleming alpha-spending
//!   schedule (see [`crate::special::sequential_boundary`]), which corrects
//!   for the repeated looks: early checkpoints get near-unreachable margins
//!   and the full false-clean budget `α = 1 − confidence` is only spent
//!   across the whole campaign;
//! * the verdict must be **stable**: all-resolved for
//!   [`SequentialConfig::stability`] consecutive checkpoints with an
//!   unchanged leaky-gate count.
//!
//! The determinism contract of the parallel engine extends to stopping:
//! the rule sees only checkpoint-folded accumulators (bit-identical at any
//! thread count), so the stop round, the trace counts, and every
//! t-statistic of an early-stopped run are byte-identical at 1, 2, 8, …
//! threads — and equal to the prefix of a full run truncated at the same
//! round boundary.

use polaris_netlist::{Netlist, NetlistError};
use polaris_obs::{Payload, SharedRecorder, Verdict};
use polaris_sim::campaign::{
    run_campaign_adaptive, run_campaign_traced, CampaignConfig, CampaignStats, Checkpoint,
    Parallelism, StoppingRule, DEFAULT_SHARDS_PER_ROUND,
};
use polaris_sim::fleet::FleetJob;
use polaris_sim::power::PowerModel;

use crate::gate_leakage::{GateLeakage, WelchAccumulator};
use crate::special::sequential_boundary;
use crate::TVLA_THRESHOLD;

/// Parameters of the sequential stopping rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequentialConfig {
    /// Total false-clean probability budget per gate across all looks
    /// (`α = 1 − confidence`).
    pub alpha: f64,
    /// Leak threshold on `|t|` (TVLA's 4.5).
    pub threshold: f64,
    /// Consecutive all-resolved checkpoints (with an unchanged leaky count)
    /// required before stopping.
    pub stability: usize,
    /// Checkpoints before this round index are never eligible to stop
    /// (t-statistics on a handful of shards are still noise-dominated).
    pub min_rounds: usize,
    /// Shards per round of the checkpointed engine. This is both the
    /// checkpoint granularity *and* the per-round worker-concurrency bound:
    /// the rule must see the folded round before the next one is scheduled,
    /// so at most this many shards run concurrently. Raise it to feed more
    /// worker threads (coarser checkpoints, later stops); the stop round
    /// depends on this knob but never on the thread count.
    pub shards_per_round: usize,
}

impl SequentialConfig {
    /// A rule spending `alpha = 1 − confidence` across the campaign's looks.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn with_confidence(confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must lie in (0, 1)"
        );
        SequentialConfig {
            alpha: 1.0 - confidence,
            ..SequentialConfig::default()
        }
    }
}

impl Default for SequentialConfig {
    /// 95 % confidence, TVLA threshold, 2-checkpoint stability, no stop
    /// before round 2, [`DEFAULT_SHARDS_PER_ROUND`] granularity.
    fn default() -> Self {
        SequentialConfig {
            alpha: 0.05,
            threshold: TVLA_THRESHOLD,
            stability: 2,
            min_rounds: 2,
            shards_per_round: DEFAULT_SHARDS_PER_ROUND,
        }
    }
}

/// The stateful stopping rule: tracks the alpha already spent at previous
/// looks and the current stability streak.
#[derive(Clone)]
pub struct SequentialStopping {
    config: SequentialConfig,
    /// Gates the verdict is over (`None` = every gate of the map).
    /// [`assess_adaptive`] scopes the rule to the netlist's cells so the
    /// stop decision matches the verdict
    /// [`GateLeakage::summarize`][crate::GateLeakage::summarize] reports —
    /// inputs, constants and flops carry no maskable leakage and must not
    /// hold the campaign open.
    scope: Option<Vec<polaris_netlist::GateId>>,
    /// Audit-trail recorder: every look emits a `round_checkpoint` event
    /// plus one `stop_audit` row per scoped gate. Defaults to the no-op
    /// recorder, which skips all of it.
    recorder: SharedRecorder,
    prev_fraction: f64,
    streak: usize,
    last_leaky: Option<usize>,
}

impl std::fmt::Debug for SequentialStopping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialStopping")
            .field("config", &self.config)
            .field("scope", &self.scope)
            .field("recording", &self.recorder.enabled())
            .field("prev_fraction", &self.prev_fraction)
            .field("streak", &self.streak)
            .field("last_leaky", &self.last_leaky)
            .finish()
    }
}

impl SequentialStopping {
    /// A fresh rule over every gate of the leakage map.
    pub fn new(config: SequentialConfig) -> Self {
        SequentialStopping {
            config,
            scope: None,
            recorder: polaris_obs::shared_null(),
            prev_fraction: 0.0,
            streak: 0,
            last_leaky: None,
        }
    }

    /// A fresh rule whose verdict is restricted to `gates` (typically
    /// [`Netlist::cell_ids`]).
    pub fn scoped(config: SequentialConfig, gates: Vec<polaris_netlist::GateId>) -> Self {
        SequentialStopping {
            scope: Some(gates),
            ..SequentialStopping::new(config)
        }
    }

    /// Attaches an audit-trail recorder: every checkpoint emits its
    /// convergence census and one per-gate verdict row. Recording never
    /// feeds back into the stop decision — the rule's state transitions are
    /// byte-identical with or without it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Emits the per-gate audit rows for one look, then the checkpoint
    /// census. The census comes last so its `wall_ns` — elapsed since the
    /// look began — covers the audit-row encoding as well as the leakage
    /// fold, convergence census, and alpha boundary.
    #[allow(clippy::too_many_arguments)]
    fn record_look(
        &self,
        checkpoint: &Checkpoint<'_, WelchAccumulator>,
        leakage: &GateLeakage,
        convergence: &crate::ConvergenceSummary,
        fraction: f64,
        margin: f64,
        stop: bool,
        look_start: std::time::Instant,
    ) {
        let all_gates;
        let gates = match &self.scope {
            Some(gates) => gates.as_slice(),
            None => {
                all_gates = (0..leakage.gate_count())
                    .map(polaris_netlist::GateId::new)
                    .collect::<Vec<_>>();
                all_gates.as_slice()
            }
        };
        for &id in gates {
            let verdict = match leakage.result(id).resolution(self.config.threshold, margin) {
                Some(true) => Verdict::Leaky,
                Some(false) => Verdict::Clean,
                None => Verdict::Undecided,
            };
            self.recorder.record(Payload::StopAudit {
                round: checkpoint.round as u64,
                gate: id.index() as u64,
                abs_t: leakage.abs_t(id),
                boundary: margin,
                verdict,
            });
        }
        self.recorder.record(Payload::RoundCheckpoint {
            round: checkpoint.round as u64,
            planned_rounds: checkpoint.planned_rounds as u64,
            fixed_traces: checkpoint.fixed_traces as u64,
            random_traces: checkpoint.random_traces as u64,
            fraction,
            boundary: margin,
            leaky: convergence.leaky as u64,
            clean: convergence.clean as u64,
            unresolved: convergence.unresolved as u64,
            stop,
            wall_ns: look_start.elapsed().as_nanos() as u64,
        });
    }
}

impl StoppingRule<WelchAccumulator> for SequentialStopping {
    fn should_stop(&mut self, checkpoint: &Checkpoint<'_, WelchAccumulator>) -> bool {
        // Time the whole look (leakage fold, convergence census, boundary)
        // so the trace can attribute the adaptive-stopping overhead the
        // shard-phase spans cannot see. Only taken when recording.
        let look_start = self.recorder.enabled().then(std::time::Instant::now);
        let fraction = checkpoint.information_fraction();
        let margin = sequential_boundary(self.config.alpha, self.prev_fraction, fraction);
        self.prev_fraction = fraction;

        let leakage = checkpoint.sink.leakage();
        let convergence = match &self.scope {
            Some(gates) => {
                leakage.convergence_of(gates.iter().copied(), self.config.threshold, margin)
            }
            None => leakage.convergence(self.config.threshold, margin),
        };
        let stable_leaky = self.last_leaky == Some(convergence.leaky);
        if convergence.is_converged() && (stable_leaky || self.config.stability <= 1) {
            self.streak += 1;
        } else if convergence.is_converged() {
            self.streak = 1;
        } else {
            self.streak = 0;
        }
        self.last_leaky = convergence.is_converged().then_some(convergence.leaky);

        let stop =
            checkpoint.round >= self.config.min_rounds && self.streak >= self.config.stability;
        if let Some(start) = look_start {
            self.record_look(
                checkpoint,
                &leakage,
                &convergence,
                fraction,
                margin,
                stop,
                start,
            );
        }
        stop
    }
}

/// An adaptively assessed leakage map plus the campaign consumption the
/// callers report (traces used vs. budget, early-stop flag).
#[derive(Clone, Debug)]
pub struct AdaptiveAssessment {
    /// Per-gate t-test results at the stop boundary.
    pub leakage: GateLeakage,
    /// Trace/round consumption of the (possibly early-stopped) campaign.
    pub stats: CampaignStats,
    /// The configured per-class budgets (`config.n_fixed`, `config.n_random`).
    pub budget_fixed: usize,
    pub budget_random: usize,
}

impl AdaptiveAssessment {
    /// Fraction of the total trace budget saved by early stopping.
    pub fn savings_fraction(&self) -> f64 {
        let budget = self.budget_fixed + self.budget_random;
        if budget == 0 {
            0.0
        } else {
            1.0 - self.stats.traces_used() as f64 / budget as f64
        }
    }
}

/// Runs a fixed-vs-random (or fixed-vs-fixed) campaign with sequential
/// early stopping and returns the first-order leakage map at the stop
/// boundary.
///
/// `config.n_fixed` / `config.n_random` act as the trace *budget*; the
/// returned [`CampaignStats`] say how much of it was consumed. The stop
/// verdict is over the netlist's *cells* — the same population
/// [`GateLeakage::summarize`][crate::GateLeakage::summarize] reports —
/// so non-cell gates (inputs, constants, flops) never hold the campaign
/// open. Results are byte-identical at any thread count, and equal to
/// [`crate::assess_parallel`] re-run at the consumed trace counts.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_adaptive(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
) -> Result<AdaptiveAssessment, NetlistError> {
    assess_adaptive_traced(
        netlist,
        model,
        config,
        parallelism,
        sequential,
        polaris_obs::shared_null(),
    )
}

/// [`assess_adaptive`] reporting structured trace events to `recorder`:
/// per-shard phase spans, per-round fold spans and convergence checkpoints,
/// and the full per-gate stopping audit trail. Recording is strictly
/// observational — the leakage map, stats, and stop round are byte-identical
/// to the untraced run.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_adaptive_traced(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
    recorder: SharedRecorder,
) -> Result<AdaptiveAssessment, NetlistError> {
    let outcome = campaign_outcome_adaptive_traced(
        netlist,
        model,
        config,
        parallelism,
        sequential,
        recorder,
    )?;
    Ok(AdaptiveAssessment {
        leakage: outcome.sink.leakage(),
        stats: outcome.stats,
        budget_fixed: config.n_fixed,
        budget_random: config.n_random,
    })
}

/// [`assess_adaptive`] at the accumulator level: returns the checkpoint-
/// folded [`WelchAccumulator`] outcome instead of the derived leakage map.
/// Flows that hand the folded state onward — snapshotting it into the
/// distributed shard-state format, or feeding a pre-folded baseline into
/// the masking flow — consume this; the leakage map is one
/// [`WelchAccumulator::leakage`] call away.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn campaign_outcome_adaptive(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
) -> Result<polaris_sim::CampaignOutcome<WelchAccumulator>, NetlistError> {
    let mut rule = SequentialStopping::scoped(*sequential, netlist.cell_ids());
    run_campaign_adaptive::<WelchAccumulator, _>(
        netlist,
        model,
        config,
        parallelism,
        sequential.shards_per_round,
        &mut rule,
    )
}

/// [`campaign_outcome_adaptive`] with a trace recorder: the engine emits
/// shard/fold spans and the stopping rule emits the checkpoint census plus
/// the per-gate audit trail. Outcomes are byte-identical to the untraced
/// run at any thread count and lane width.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn campaign_outcome_adaptive_traced(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
    recorder: SharedRecorder,
) -> Result<polaris_sim::CampaignOutcome<WelchAccumulator>, NetlistError> {
    let mut rule =
        SequentialStopping::scoped(*sequential, netlist.cell_ids()).with_recorder(recorder.clone());
    run_campaign_traced::<WelchAccumulator, _>(
        netlist,
        model,
        config,
        parallelism,
        sequential.shards_per_round,
        &mut rule,
        recorder.as_ref(),
    )
}

/// [`campaign_outcome_adaptive`] packaged as a fleet work item: a
/// [`FleetJob`] carrying the cells-scoped sequential stopping rule at the
/// configuration's checkpoint granularity. Scheduled through
/// [`polaris_sim::fleet::run_fleet`] the job's checkpoints fire per job
/// mid-fleet, so its outcome — sink, stats, and stop round — is
/// byte-identical to the standalone [`campaign_outcome_adaptive`] run at
/// any pool size and in any job mix.
pub fn adaptive_fleet_job<'a>(
    netlist: &'a Netlist,
    model: &'a PowerModel,
    config: CampaignConfig,
    sequential: &SequentialConfig,
) -> FleetJob<'a, WelchAccumulator> {
    let rule = SequentialStopping::scoped(*sequential, netlist.cell_ids());
    FleetJob::new(netlist, model, config).with_rule(rule, sequential.shards_per_round)
}

/// [`adaptive_fleet_job`] whose stopping rule carries an audit-trail
/// recorder: the job's checkpoints and per-gate verdicts land in the fleet
/// trace alongside the scheduler's queue/worker events. The stop decision
/// is unchanged by recording.
pub fn adaptive_fleet_job_traced<'a>(
    netlist: &'a Netlist,
    model: &'a PowerModel,
    config: CampaignConfig,
    sequential: &SequentialConfig,
    recorder: SharedRecorder,
) -> FleetJob<'a, WelchAccumulator> {
    let rule = SequentialStopping::scoped(*sequential, netlist.cell_ids()).with_recorder(recorder);
    FleetJob::new(netlist, model, config).with_rule(rule, sequential.shards_per_round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn quick_seq() -> SequentialConfig {
        SequentialConfig {
            shards_per_round: 2,
            ..SequentialConfig::default()
        }
    }

    #[test]
    fn leaky_design_stops_before_the_budget() {
        // c17 at a 6k-trace/class budget: the nand cells blast past 4.5 and
        // the quiet gates fall inside the late-look margins well before the
        // budget is spent.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &quick_seq(),
        )
        .unwrap();
        assert!(a.stats.stopped_early, "stats: {:?}", a.stats);
        assert!(a.stats.traces_used() < 12_000);
        assert!(a.savings_fraction() > 0.0);
        // The leak verdict is unchanged versus the full-budget run.
        let full = crate::assess(&n, &PowerModel::default(), &cfg).unwrap();
        for id in n.ids() {
            assert_eq!(
                a.leakage.abs_t(id) > TVLA_THRESHOLD,
                full.abs_t(id) > TVLA_THRESHOLD,
                "verdict flip at gate {id}"
            );
        }
    }

    #[test]
    fn adaptive_equals_full_assessment_at_consumed_trace_counts() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &quick_seq(),
        )
        .unwrap();
        let prefix_cfg = CampaignConfig::new(a.stats.fixed_traces, a.stats.random_traces, cfg.seed);
        let prefix = crate::assess(&n, &PowerModel::default(), &prefix_cfg).unwrap();
        for id in n.ids() {
            assert_eq!(
                a.leakage.result(id).t.to_bits(),
                prefix.result(id).t.to_bits(),
                "gate {id}"
            );
        }
    }

    #[test]
    fn tight_confidence_consumes_more_traces() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let model = PowerModel::default();
        let loose = assess_adaptive(
            &n,
            &model,
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 0.2,
                ..quick_seq()
            },
        )
        .unwrap();
        let tight = assess_adaptive(
            &n,
            &model,
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 1e-6,
                ..quick_seq()
            },
        )
        .unwrap();
        assert!(
            tight.stats.traces_used() >= loose.stats.traces_used(),
            "tight {:?} vs loose {:?}",
            tight.stats,
            loose.stats
        );
    }

    #[test]
    fn never_stops_when_margins_are_unreachable() {
        // α so small that every look's spending underflows: margins are
        // infinite, a quiet cell can never resolve clean, and the full
        // budget is consumed. (The design must have a non-leaky cell — a
        // masked xor — since leaky resolutions need no margin.)
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(1500, 1500, 3);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 1e-12,
                ..quick_seq()
            },
        )
        .unwrap();
        assert!(!a.stats.stopped_early);
        assert_eq!(a.stats.fixed_traces, 1500);
        assert_eq!(a.stats.random_traces, 1500);
        assert!((a.savings_fraction()).abs() < 1e-12);
    }

    #[test]
    fn stop_verdict_is_scoped_to_cells() {
        // c17's non-cell gates (zero-capacitance inputs) carry pure noise
        // and sit in the undecided band for many looks; the cells are all
        // strongly leaky. A cells-scoped run therefore stops at the
        // earliest eligible checkpoint, while an unscoped rule over every
        // gate must wait at least as long.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let seq = quick_seq();
        let scoped = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &seq,
        )
        .unwrap();
        assert!(scoped.stats.stopped_early);
        assert_eq!(
            scoped.stats.rounds,
            seq.min_rounds.max(seq.stability),
            "all-leaky cells stop at the earliest eligible checkpoint: {:?}",
            scoped.stats
        );

        let mut unscoped = SequentialStopping::new(seq);
        let outcome = polaris_sim::campaign::run_campaign_adaptive::<WelchAccumulator, _>(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            seq.shards_per_round,
            &mut unscoped,
        )
        .unwrap();
        assert!(
            outcome.stats.rounds >= scoped.stats.rounds,
            "whole-map rule waits on non-cell gates: {:?}",
            outcome.stats
        );
    }

    #[test]
    fn fleet_job_matches_standalone_adaptive_outcome() {
        // The packaged fleet job must reproduce campaign_outcome_adaptive
        // byte for byte — stop round included — even while sharing the pool
        // with an unrelated job.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let seq = quick_seq();
        let model = PowerModel::default();
        let solo = campaign_outcome_adaptive(&n, &model, &cfg, Parallelism::new(2), &seq).unwrap();
        assert!(solo.stats.stopped_early);
        let jobs = vec![
            FleetJob::<WelchAccumulator>::new(&n, &model, CampaignConfig::new(500, 500, 3)),
            adaptive_fleet_job(&n, &model, cfg, &seq),
        ];
        let outcome = polaris_sim::fleet::run_fleet(jobs, Parallelism::new(3))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(outcome.stats, solo.stats);
        let (a, b) = (outcome.sink.leakage(), solo.sink.leakage());
        for id in n.ids() {
            assert_eq!(a.result(id).t.to_bits(), b.result(id).t.to_bits());
        }
    }

    #[test]
    fn with_confidence_maps_to_alpha() {
        let s = SequentialConfig::with_confidence(0.99);
        assert!((s.alpha - 0.01).abs() < 1e-12);
        assert_eq!(s.threshold, TVLA_THRESHOLD);
    }
}
