//! Adaptive sequential stopping for TVLA campaigns.
//!
//! The cognition loop re-runs full campaigns after every masking step, but
//! leakage verdicts (|t| > 4.5, paper Eq. 1) usually converge long before
//! the configured trace budget is spent. This module implements the
//! group-sequential stopping rule the round-checkpointed campaign engine
//! (see [`polaris_sim::campaign::run_campaign_adaptive`]) evaluates at each
//! round boundary:
//!
//! * every gate's Welch t must be **resolved** — either it exceeds the leak
//!   threshold (the gate fails TVLA; a crossing at any look is a valid
//!   verdict) or its confidence interval excludes the threshold
//!   (`|t| + z_k ≤ threshold`: confidently clean);
//! * the per-look margin `z_k` comes from an O'Brien–Fleming alpha-spending
//!   schedule (see [`crate::special::sequential_boundary`]), which corrects
//!   for the repeated looks: early checkpoints get near-unreachable margins
//!   and the full false-clean budget `α = 1 − confidence` is only spent
//!   across the whole campaign;
//! * the verdict must be **stable**: all-resolved for
//!   [`SequentialConfig::stability`] consecutive checkpoints with an
//!   unchanged leaky-gate count.
//!
//! The determinism contract of the parallel engine extends to stopping:
//! the rule sees only checkpoint-folded accumulators (bit-identical at any
//! thread count), so the stop round, the trace counts, and every
//! t-statistic of an early-stopped run are byte-identical at 1, 2, 8, …
//! threads — and equal to the prefix of a full run truncated at the same
//! round boundary.

use polaris_netlist::{Netlist, NetlistError};
use polaris_sim::campaign::{
    run_campaign_adaptive, CampaignConfig, CampaignStats, Checkpoint, Parallelism, StoppingRule,
    DEFAULT_SHARDS_PER_ROUND,
};
use polaris_sim::fleet::FleetJob;
use polaris_sim::power::PowerModel;

use crate::gate_leakage::{GateLeakage, WelchAccumulator};
use crate::special::sequential_boundary;
use crate::TVLA_THRESHOLD;

/// Parameters of the sequential stopping rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequentialConfig {
    /// Total false-clean probability budget per gate across all looks
    /// (`α = 1 − confidence`).
    pub alpha: f64,
    /// Leak threshold on `|t|` (TVLA's 4.5).
    pub threshold: f64,
    /// Consecutive all-resolved checkpoints (with an unchanged leaky count)
    /// required before stopping.
    pub stability: usize,
    /// Checkpoints before this round index are never eligible to stop
    /// (t-statistics on a handful of shards are still noise-dominated).
    pub min_rounds: usize,
    /// Shards per round of the checkpointed engine. This is both the
    /// checkpoint granularity *and* the per-round worker-concurrency bound:
    /// the rule must see the folded round before the next one is scheduled,
    /// so at most this many shards run concurrently. Raise it to feed more
    /// worker threads (coarser checkpoints, later stops); the stop round
    /// depends on this knob but never on the thread count.
    pub shards_per_round: usize,
}

impl SequentialConfig {
    /// A rule spending `alpha = 1 − confidence` across the campaign's looks.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn with_confidence(confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must lie in (0, 1)"
        );
        SequentialConfig {
            alpha: 1.0 - confidence,
            ..SequentialConfig::default()
        }
    }
}

impl Default for SequentialConfig {
    /// 95 % confidence, TVLA threshold, 2-checkpoint stability, no stop
    /// before round 2, [`DEFAULT_SHARDS_PER_ROUND`] granularity.
    fn default() -> Self {
        SequentialConfig {
            alpha: 0.05,
            threshold: TVLA_THRESHOLD,
            stability: 2,
            min_rounds: 2,
            shards_per_round: DEFAULT_SHARDS_PER_ROUND,
        }
    }
}

/// The stateful stopping rule: tracks the alpha already spent at previous
/// looks and the current stability streak.
#[derive(Clone, Debug)]
pub struct SequentialStopping {
    config: SequentialConfig,
    /// Gates the verdict is over (`None` = every gate of the map).
    /// [`assess_adaptive`] scopes the rule to the netlist's cells so the
    /// stop decision matches the verdict
    /// [`GateLeakage::summarize`][crate::GateLeakage::summarize] reports —
    /// inputs, constants and flops carry no maskable leakage and must not
    /// hold the campaign open.
    scope: Option<Vec<polaris_netlist::GateId>>,
    prev_fraction: f64,
    streak: usize,
    last_leaky: Option<usize>,
}

impl SequentialStopping {
    /// A fresh rule over every gate of the leakage map.
    pub fn new(config: SequentialConfig) -> Self {
        SequentialStopping {
            config,
            scope: None,
            prev_fraction: 0.0,
            streak: 0,
            last_leaky: None,
        }
    }

    /// A fresh rule whose verdict is restricted to `gates` (typically
    /// [`Netlist::cell_ids`]).
    pub fn scoped(config: SequentialConfig, gates: Vec<polaris_netlist::GateId>) -> Self {
        SequentialStopping {
            scope: Some(gates),
            ..SequentialStopping::new(config)
        }
    }
}

impl StoppingRule<WelchAccumulator> for SequentialStopping {
    fn should_stop(&mut self, checkpoint: &Checkpoint<'_, WelchAccumulator>) -> bool {
        let fraction = checkpoint.information_fraction();
        let margin = sequential_boundary(self.config.alpha, self.prev_fraction, fraction);
        self.prev_fraction = fraction;

        let leakage = checkpoint.sink.leakage();
        let convergence = match &self.scope {
            Some(gates) => {
                leakage.convergence_of(gates.iter().copied(), self.config.threshold, margin)
            }
            None => leakage.convergence(self.config.threshold, margin),
        };
        let stable_leaky = self.last_leaky == Some(convergence.leaky);
        if convergence.is_converged() && (stable_leaky || self.config.stability <= 1) {
            self.streak += 1;
        } else if convergence.is_converged() {
            self.streak = 1;
        } else {
            self.streak = 0;
        }
        self.last_leaky = convergence.is_converged().then_some(convergence.leaky);

        checkpoint.round >= self.config.min_rounds && self.streak >= self.config.stability
    }
}

/// An adaptively assessed leakage map plus the campaign consumption the
/// callers report (traces used vs. budget, early-stop flag).
#[derive(Clone, Debug)]
pub struct AdaptiveAssessment {
    /// Per-gate t-test results at the stop boundary.
    pub leakage: GateLeakage,
    /// Trace/round consumption of the (possibly early-stopped) campaign.
    pub stats: CampaignStats,
    /// The configured per-class budgets (`config.n_fixed`, `config.n_random`).
    pub budget_fixed: usize,
    pub budget_random: usize,
}

impl AdaptiveAssessment {
    /// Fraction of the total trace budget saved by early stopping.
    pub fn savings_fraction(&self) -> f64 {
        let budget = self.budget_fixed + self.budget_random;
        if budget == 0 {
            0.0
        } else {
            1.0 - self.stats.traces_used() as f64 / budget as f64
        }
    }
}

/// Runs a fixed-vs-random (or fixed-vs-fixed) campaign with sequential
/// early stopping and returns the first-order leakage map at the stop
/// boundary.
///
/// `config.n_fixed` / `config.n_random` act as the trace *budget*; the
/// returned [`CampaignStats`] say how much of it was consumed. The stop
/// verdict is over the netlist's *cells* — the same population
/// [`GateLeakage::summarize`][crate::GateLeakage::summarize] reports —
/// so non-cell gates (inputs, constants, flops) never hold the campaign
/// open. Results are byte-identical at any thread count, and equal to
/// [`crate::assess_parallel`] re-run at the consumed trace counts.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_adaptive(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
) -> Result<AdaptiveAssessment, NetlistError> {
    let outcome = campaign_outcome_adaptive(netlist, model, config, parallelism, sequential)?;
    Ok(AdaptiveAssessment {
        leakage: outcome.sink.leakage(),
        stats: outcome.stats,
        budget_fixed: config.n_fixed,
        budget_random: config.n_random,
    })
}

/// [`assess_adaptive`] at the accumulator level: returns the checkpoint-
/// folded [`WelchAccumulator`] outcome instead of the derived leakage map.
/// Flows that hand the folded state onward — snapshotting it into the
/// distributed shard-state format, or feeding a pre-folded baseline into
/// the masking flow — consume this; the leakage map is one
/// [`WelchAccumulator::leakage`] call away.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn campaign_outcome_adaptive(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    sequential: &SequentialConfig,
) -> Result<polaris_sim::CampaignOutcome<WelchAccumulator>, NetlistError> {
    let mut rule = SequentialStopping::scoped(*sequential, netlist.cell_ids());
    run_campaign_adaptive::<WelchAccumulator, _>(
        netlist,
        model,
        config,
        parallelism,
        sequential.shards_per_round,
        &mut rule,
    )
}

/// [`campaign_outcome_adaptive`] packaged as a fleet work item: a
/// [`FleetJob`] carrying the cells-scoped sequential stopping rule at the
/// configuration's checkpoint granularity. Scheduled through
/// [`polaris_sim::fleet::run_fleet`] the job's checkpoints fire per job
/// mid-fleet, so its outcome — sink, stats, and stop round — is
/// byte-identical to the standalone [`campaign_outcome_adaptive`] run at
/// any pool size and in any job mix.
pub fn adaptive_fleet_job<'a>(
    netlist: &'a Netlist,
    model: &'a PowerModel,
    config: CampaignConfig,
    sequential: &SequentialConfig,
) -> FleetJob<'a, WelchAccumulator> {
    let rule = SequentialStopping::scoped(*sequential, netlist.cell_ids());
    FleetJob::new(netlist, model, config).with_rule(rule, sequential.shards_per_round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn quick_seq() -> SequentialConfig {
        SequentialConfig {
            shards_per_round: 2,
            ..SequentialConfig::default()
        }
    }

    #[test]
    fn leaky_design_stops_before_the_budget() {
        // c17 at a 6k-trace/class budget: the nand cells blast past 4.5 and
        // the quiet gates fall inside the late-look margins well before the
        // budget is spent.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &quick_seq(),
        )
        .unwrap();
        assert!(a.stats.stopped_early, "stats: {:?}", a.stats);
        assert!(a.stats.traces_used() < 12_000);
        assert!(a.savings_fraction() > 0.0);
        // The leak verdict is unchanged versus the full-budget run.
        let full = crate::assess(&n, &PowerModel::default(), &cfg).unwrap();
        for id in n.ids() {
            assert_eq!(
                a.leakage.abs_t(id) > TVLA_THRESHOLD,
                full.abs_t(id) > TVLA_THRESHOLD,
                "verdict flip at gate {id}"
            );
        }
    }

    #[test]
    fn adaptive_equals_full_assessment_at_consumed_trace_counts() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &quick_seq(),
        )
        .unwrap();
        let prefix_cfg = CampaignConfig::new(a.stats.fixed_traces, a.stats.random_traces, cfg.seed);
        let prefix = crate::assess(&n, &PowerModel::default(), &prefix_cfg).unwrap();
        for id in n.ids() {
            assert_eq!(
                a.leakage.result(id).t.to_bits(),
                prefix.result(id).t.to_bits(),
                "gate {id}"
            );
        }
    }

    #[test]
    fn tight_confidence_consumes_more_traces() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let model = PowerModel::default();
        let loose = assess_adaptive(
            &n,
            &model,
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 0.2,
                ..quick_seq()
            },
        )
        .unwrap();
        let tight = assess_adaptive(
            &n,
            &model,
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 1e-6,
                ..quick_seq()
            },
        )
        .unwrap();
        assert!(
            tight.stats.traces_used() >= loose.stats.traces_used(),
            "tight {:?} vs loose {:?}",
            tight.stats,
            loose.stats
        );
    }

    #[test]
    fn never_stops_when_margins_are_unreachable() {
        // α so small that every look's spending underflows: margins are
        // infinite, a quiet cell can never resolve clean, and the full
        // budget is consumed. (The design must have a non-leaky cell — a
        // masked xor — since leaky resolutions need no margin.)
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(1500, 1500, 3);
        let a = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &SequentialConfig {
                alpha: 1e-12,
                ..quick_seq()
            },
        )
        .unwrap();
        assert!(!a.stats.stopped_early);
        assert_eq!(a.stats.fixed_traces, 1500);
        assert_eq!(a.stats.random_traces, 1500);
        assert!((a.savings_fraction()).abs() < 1e-12);
    }

    #[test]
    fn stop_verdict_is_scoped_to_cells() {
        // c17's non-cell gates (zero-capacitance inputs) carry pure noise
        // and sit in the undecided band for many looks; the cells are all
        // strongly leaky. A cells-scoped run therefore stops at the
        // earliest eligible checkpoint, while an unscoped rule over every
        // gate must wait at least as long.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let seq = quick_seq();
        let scoped = assess_adaptive(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            &seq,
        )
        .unwrap();
        assert!(scoped.stats.stopped_early);
        assert_eq!(
            scoped.stats.rounds,
            seq.min_rounds.max(seq.stability),
            "all-leaky cells stop at the earliest eligible checkpoint: {:?}",
            scoped.stats
        );

        let mut unscoped = SequentialStopping::new(seq);
        let outcome = polaris_sim::campaign::run_campaign_adaptive::<WelchAccumulator, _>(
            &n,
            &PowerModel::default(),
            &cfg,
            Parallelism::sequential(),
            seq.shards_per_round,
            &mut unscoped,
        )
        .unwrap();
        assert!(
            outcome.stats.rounds >= scoped.stats.rounds,
            "whole-map rule waits on non-cell gates: {:?}",
            outcome.stats
        );
    }

    #[test]
    fn fleet_job_matches_standalone_adaptive_outcome() {
        // The packaged fleet job must reproduce campaign_outcome_adaptive
        // byte for byte — stop round included — even while sharing the pool
        // with an unrelated job.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(6000, 6000, 11);
        let seq = quick_seq();
        let model = PowerModel::default();
        let solo = campaign_outcome_adaptive(&n, &model, &cfg, Parallelism::new(2), &seq).unwrap();
        assert!(solo.stats.stopped_early);
        let jobs = vec![
            FleetJob::<WelchAccumulator>::new(&n, &model, CampaignConfig::new(500, 500, 3)),
            adaptive_fleet_job(&n, &model, cfg, &seq),
        ];
        let outcome = polaris_sim::fleet::run_fleet(jobs, Parallelism::new(3))
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(outcome.stats, solo.stats);
        let (a, b) = (outcome.sink.leakage(), solo.sink.leakage());
        for id in n.ids() {
            assert_eq!(a.result(id).t.to_bits(), b.result(id).t.to_bits());
        }
    }

    #[test]
    fn with_confidence_maps_to_alpha() {
        let s = SequentialConfig::with_confidence(0.99);
        assert!((s.alpha - 0.01).abs() < 1e-12);
        assert_eq!(s.threshold, TVLA_THRESHOLD);
    }
}
