//! Correlation Power Analysis (CPA) — the attacker's side.
//!
//! TVLA answers "is there detectable leakage?"; CPA answers the question
//! that actually matters: *can an adversary recover the key?* (Brier et
//! al., CHES 2004). For every key guess the attacker predicts a per-trace
//! leakage value (typically the Hamming weight of an S-box output under
//! that guess) and computes the Pearson correlation between predictions and
//! measured power. The correct key produces the strongest correlation; a
//! sound masking scheme destroys the correlation for *every* guess.
//!
//! This module runs the whole attack in-simulator: it drives the device
//! under test with random plaintexts (fresh masks every trace, as the
//! campaigns do), records total per-trace energy, and ranks key guesses.

use polaris_netlist::{Netlist, NetlistError};
use polaris_sim::power::sample_standard_normal;
use polaris_sim::{PowerModel, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0 when either side has zero variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(!x.is_empty(), "empty samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// CPA attack setup against a design with separate data and key input
/// groups.
#[derive(Clone, Debug)]
pub struct CpaConfig {
    /// Number of attack traces.
    pub traces: usize,
    /// RNG seed (plaintexts, masks, noise).
    pub seed: u64,
    /// Indices into the design's data inputs that carry the attacked
    /// plaintext word (LSB first).
    pub plaintext_bits: Vec<usize>,
    /// Indices into the design's data inputs that carry the key word
    /// (LSB first), held at `key_value` for every trace.
    pub key_bits: Vec<usize>,
    /// The secret key value loaded into `key_bits`.
    pub key_value: u32,
}

/// Result of a CPA attack: per-guess absolute correlation, plus ranking.
#[derive(Clone, Debug)]
pub struct CpaOutcome {
    /// `|ρ|` per key guess (index = guess).
    pub correlations: Vec<f64>,
    /// The guess with the highest `|ρ|`.
    pub best_guess: u32,
    /// The true key (echoed from the config).
    pub true_key: u32,
}

impl CpaOutcome {
    /// True if the attack recovered the key.
    pub fn key_recovered(&self) -> bool {
        self.best_guess == self.true_key
    }

    /// Ratio of the best correlation to the runner-up (≫1 = clear win).
    pub fn distinguishing_margin(&self) -> f64 {
        let mut sorted: Vec<f64> = self.correlations.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.len() < 2 || sorted[1] <= 0.0 {
            f64::INFINITY
        } else {
            sorted[0] / sorted[1]
        }
    }
}

/// Runs a first-order CPA attack.
///
/// `predict(plaintext, guess)` is the attacker's leakage model — typically
/// `HW(SBOX[plaintext ^ guess])`. Mask inputs of the design receive fresh
/// randomness every trace (the defender's RNG), exactly as in the TVLA
/// campaigns.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
///
/// # Panics
///
/// Panics if bit indices are out of range for the design's data inputs.
pub fn run_cpa(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CpaConfig,
    predict: &dyn Fn(u32, u32) -> f64,
) -> Result<CpaOutcome, NetlistError> {
    let sim = Simulator::new(netlist)?;
    let n_data = netlist.data_inputs().len();
    let n_mask = netlist.mask_inputs().len();
    for &b in config.plaintext_bits.iter().chain(&config.key_bits) {
        assert!(b < n_data, "input bit index {b} out of range");
    }
    let width = config.plaintext_bits.len();
    assert!(width <= 20, "attack word capped at 20 bits");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let caps: Vec<f64> = netlist.iter().map(|(_, g)| model.cap(g.kind())).collect();

    // Acquire traces: per-trace total energy + plaintext.
    let mut energies = Vec::with_capacity(config.traces);
    let mut plaintexts = Vec::with_capacity(config.traces);
    let mut data = vec![0u64; n_data];
    for _ in 0..config.traces {
        let pt: u32 = rng.gen_range(0..(1u32 << width));
        plaintexts.push(pt);
        for w in data.iter_mut() {
            *w = 0;
        }
        for (k, &bit) in config.plaintext_bits.iter().enumerate() {
            data[bit] = u64::from(pt >> k & 1) * !0u64;
        }
        for (k, &bit) in config.key_bits.iter().enumerate() {
            data[bit] = u64::from(config.key_value >> k & 1) * !0u64;
        }
        // Base application (all zero data, fresh masks), then stimulus.
        let base_masks: Vec<u64> = (0..n_mask).map(|_| rng.gen::<u64>()).collect();
        let mut st = sim.zero_state();
        sim.eval(&mut st, &vec![0u64; n_data], &base_masks);
        let prev = st.values().to_vec();
        let masks: Vec<u64> = (0..n_mask).map(|_| rng.gen::<u64>()).collect();
        sim.eval(&mut st, &data, &masks);
        let mut energy = 0.0;
        for (g, (&p, &v)) in prev.iter().zip(st.values()).enumerate() {
            if (p ^ v) & 1 == 1 {
                energy += caps[g];
            }
        }
        energy += model.noise_sigma() * sample_standard_normal(&mut rng);
        energies.push(energy);
    }

    // Rank guesses.
    let guesses = 1u32 << config.key_bits.len();
    let mut correlations = Vec::with_capacity(guesses as usize);
    let mut predictions = vec![0.0f64; config.traces];
    for guess in 0..guesses {
        for (p, &pt) in predictions.iter_mut().zip(&plaintexts) {
            *p = predict(pt, guess);
        }
        correlations.push(pearson(&predictions, &energies).abs());
    }
    let best_guess = correlations
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    Ok(CpaOutcome {
        correlations,
        best_guess,
        true_key: config.key_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators::blocks;
    use polaris_netlist::{GateId, GateKind};

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    /// PRESENT-like keyed S-box stage used as the attack target.
    fn keyed_sbox() -> (Netlist, Vec<u16>) {
        let table: Vec<u16> = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2]
            .map(|v| v as u16)
            .to_vec();
        let mut n = Netlist::new("keyed_sbox");
        let data: Vec<GateId> = (0..4).map(|i| n.add_input(format!("d{i}"))).collect();
        let key: Vec<GateId> = (0..4).map(|i| n.add_input(format!("k{i}"))).collect();
        let keyed: Vec<GateId> = data
            .iter()
            .zip(&key)
            .enumerate()
            .map(|(i, (&d, &k))| {
                n.add_gate(GateKind::Xor, format!("kx{i}"), &[d, k])
                    .expect("valid")
            })
            .collect();
        let out = blocks::sbox(&mut n, "sb", &keyed, &table, 4);
        for (i, o) in out.iter().enumerate() {
            n.add_output(format!("s{i}"), *o).expect("valid");
        }
        (n, table)
    }

    /// Hamming-distance leakage model: the acquisition applies an all-zero
    /// base vector before each stimulus, so the reference S-box output is
    /// `S(0)` and the device switches `HW(S(0) ⊕ S(pt ⊕ k))` output bits
    /// (plus the input-layer distance `HW(pt ⊕ k)`).
    fn hd_predictor(table: Vec<u16>) -> impl Fn(u32, u32) -> f64 {
        move |pt, guess| {
            let x = (pt ^ guess) as usize & 0xF;
            let sbox_hd = (table[0] ^ table[x]).count_ones();
            let input_hd = (x as u32).count_ones();
            f64::from(sbox_hd + input_hd)
        }
    }

    fn config(key: u32, traces: usize) -> CpaConfig {
        CpaConfig {
            traces,
            seed: 42,
            plaintext_bits: vec![0, 1, 2, 3],
            key_bits: vec![4, 5, 6, 7],
            key_value: key,
        }
    }

    #[test]
    fn cpa_recovers_key_from_unprotected_sbox() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default().with_noise(0.3);
        for key in [0x3u32, 0xA, 0xF] {
            let outcome =
                run_cpa(&n, &model, &config(key, 1500), &hd_predictor(table.clone())).unwrap();
            assert!(
                outcome.key_recovered(),
                "key {key:#x}: best guess {:#x}, correlations {:?}",
                outcome.best_guess,
                outcome.correlations
            );
            assert!(outcome.distinguishing_margin() > 1.1);
        }
    }

    #[test]
    fn masking_destroys_the_cpa_correlation() {
        use polaris_masking::{apply_masking, MaskingStyle};
        let (n, table) = keyed_sbox();
        let (norm, _) = polaris_netlist::transform::decompose(&n).unwrap();
        let masked = apply_masking(&norm, &norm.cell_ids(), MaskingStyle::Trichina).unwrap();
        let model = PowerModel::default().with_noise(0.3);
        let key = 0xB;
        let unprotected = run_cpa(
            &norm,
            &model,
            &config(key, 1500),
            &hd_predictor(table.clone()),
        )
        .unwrap();
        let protected = run_cpa(
            &masked.netlist,
            &model,
            &config(key, 1500),
            &hd_predictor(table),
        )
        .unwrap();
        let best_unprotected = unprotected.correlations[key as usize];
        let best_protected = protected.correlations[key as usize];
        // The local mask/re-combine convention keeps the boundary gates'
        // data-dependent switching, so the correlation is *attenuated* (the
        // composite's mask-driven gates add variance), not erased: attack
        // cost scales as 1/ρ², so halving ρ quadruples the traces needed.
        assert!(
            best_protected < best_unprotected * 0.7,
            "masking should attenuate the correct-key correlation: \
             {best_unprotected:.3} -> {best_protected:.3}"
        );
        assert!(
            unprotected.key_recovered(),
            "sanity: the unprotected attack must succeed"
        );
    }

    #[test]
    fn more_traces_sharpen_the_attack() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default().with_noise(1.5); // noisy scope
        let key = 0x6;
        let few = run_cpa(&n, &model, &config(key, 100), &hd_predictor(table.clone())).unwrap();
        let many = run_cpa(&n, &model, &config(key, 4000), &hd_predictor(table)).unwrap();
        assert!(many.key_recovered(), "4000 traces should suffice");
        // The correct-key correlation estimate stabilizes with traces.
        assert!(
            many.correlations[key as usize] >= few.correlations[key as usize] * 0.5,
            "correlation should not collapse with more traces"
        );
    }

    #[test]
    fn deterministic() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default();
        let a = run_cpa(&n, &model, &config(5, 300), &hd_predictor(table.clone())).unwrap();
        let b = run_cpa(&n, &model, &config(5, 300), &hd_predictor(table)).unwrap();
        assert_eq!(a.correlations, b.correlations);
    }
}
