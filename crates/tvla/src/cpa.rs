//! Correlation Power Analysis (CPA) — the attacker's side.
//!
//! TVLA answers "is there detectable leakage?"; CPA answers the question
//! that actually matters: *can an adversary recover the key?* (Brier et
//! al., CHES 2004). For every key guess the attacker predicts a per-trace
//! leakage value (typically the Hamming weight of an S-box output under
//! that guess) and computes the Pearson correlation between predictions and
//! measured power. The correct key produces the strongest correlation; a
//! sound masking scheme destroys the correlation for *every* guess.
//!
//! This module runs the whole attack in-simulator: it drives the device
//! under test with random plaintexts (fresh masks every trace, as the
//! campaigns do), records total per-trace energy, and ranks key guesses.
//!
//! Like the trace campaigns, the attack is *sharded*: every trace's random
//! draws derive from `(seed, trace_index)`, each worker folds its traces
//! into a private [`CpaAccumulator`] (one streaming [`CorrelationAccumulator`]
//! per key guess), and shards merge pairwise at the barrier — so
//! [`run_cpa_parallel`] is bit-identical at any thread count.

use polaris_netlist::{Netlist, NetlistError};
use polaris_sim::campaign::{run_sharded, splitmix64, Parallelism, TRACES_PER_SHARD};
use polaris_sim::power::sample_standard_normal;
use polaris_sim::{PowerModel, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Traces per shard of the parallel attack's fixed work grid (shared with
/// the campaign engine).
const CPA_TRACES_PER_SHARD: usize = TRACES_PER_SHARD;

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns 0 when either side has zero variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(!x.is_empty(), "empty samples");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// One-pass bivariate accumulator (Welford update, Chan et al. merge):
/// means, central second moments and the co-moment of an `(x, y)` stream,
/// from which the Pearson correlation falls out without a second pass.
///
/// ```
/// use polaris_tvla::cpa::CorrelationAccumulator;
///
/// let mut acc = CorrelationAccumulator::new();
/// for i in 0..100 {
///     acc.push(f64::from(i), 2.0 * f64::from(i) + 1.0);
/// }
/// assert!((acc.pearson() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CorrelationAccumulator {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
}

impl CorrelationAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        CorrelationAccumulator::default()
    }

    /// Adds one `(x, y)` observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        let dx_post = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        let dy_post = y - self.mean_y;
        self.m2x += dx * dx_post;
        self.m2y += dy * dy_post;
        self.cxy += dx * dy_post;
    }

    /// Blocked batch update: applies the exact [`CorrelationAccumulator::push`]
    /// recurrence to every `(x, y)` pair in order, on register-resident
    /// state written back once — the SoA hot path of the attack engine.
    /// Bit-for-bit identical to sequential `push`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn extend_batch(&mut self, xs: &[f64], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        let (mut n, mut mean_x, mut mean_y, mut m2x, mut m2y, mut cxy) = (
            self.n,
            self.mean_x,
            self.mean_y,
            self.m2x,
            self.m2y,
            self.cxy,
        );
        for (&x, &y) in xs.iter().zip(ys) {
            n += 1;
            let nf = n as f64;
            let dx = x - mean_x;
            mean_x += dx / nf;
            let dx_post = x - mean_x;
            let dy = y - mean_y;
            mean_y += dy / nf;
            let dy_post = y - mean_y;
            m2x += dx * dx_post;
            m2y += dy * dy_post;
            cxy += dx * dy_post;
        }
        self.n = n;
        self.mean_x = mean_x;
        self.mean_y = mean_y;
        self.m2x = m2x;
        self.m2y = m2y;
        self.cxy = cxy;
    }

    /// Folds another accumulator in (pairwise combination — the co-moment
    /// analogue of the Chan et al. variance merge).
    pub fn merge(&mut self, other: &CorrelationAccumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2x += other.m2x + dx * dx * na * nb / n;
        self.m2y += other.m2y + dy * dy * na * nb / n;
        self.cxy += other.cxy + dx * dy * na * nb / n;
        self.mean_x += dx * nb / n;
        self.mean_y += dy * nb / n;
        self.n += other.n;
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw accumulator state `(n, mean_x, mean_y, M2x, M2y, Cxy)` — the
    /// snapshot side of the distributed shard-state format.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (
            self.n,
            self.mean_x,
            self.mean_y,
            self.m2x,
            self.m2y,
            self.cxy,
        )
    }

    /// Restores an accumulator from [`CorrelationAccumulator::raw_parts`]
    /// state (floats are adopted bit for bit).
    pub fn from_raw_parts(n: u64, mean_x: f64, mean_y: f64, m2x: f64, m2y: f64, cxy: f64) -> Self {
        CorrelationAccumulator {
            n,
            mean_x,
            mean_y,
            m2x,
            m2y,
            cxy,
        }
    }

    /// Pearson correlation of everything pushed so far (0 when either side
    /// is degenerate).
    pub fn pearson(&self) -> f64 {
        if self.m2x <= 0.0 || self.m2y <= 0.0 {
            0.0
        } else {
            self.cxy / (self.m2x * self.m2y).sqrt()
        }
    }
}

/// Streaming CPA state: one [`CorrelationAccumulator`] per key guess,
/// correlating that guess's leakage predictions with the measured energy.
/// Workers own private instances and [`CpaAccumulator::merge`] folds them.
#[derive(Clone, Debug, Default)]
pub struct CpaAccumulator {
    per_guess: Vec<CorrelationAccumulator>,
}

impl CpaAccumulator {
    /// An accumulator covering `guesses` key candidates.
    pub fn new(guesses: usize) -> Self {
        CpaAccumulator {
            per_guess: vec![CorrelationAccumulator::new(); guesses],
        }
    }

    /// Records one trace: `predictions[g]` is the leakage prediction of
    /// guess `g`, `energy` the measured power.
    ///
    /// # Panics
    ///
    /// Panics if `predictions` does not cover every guess.
    pub fn record(&mut self, predictions: &[f64], energy: f64) {
        assert_eq!(predictions.len(), self.per_guess.len(), "guess count");
        for (acc, &p) in self.per_guess.iter_mut().zip(predictions) {
            acc.push(p, energy);
        }
    }

    /// Records a block of traces in SoA order: for every guess `g`, the
    /// slice `fill_predictions(g, buf)` fills `buf[t]` with that guess's
    /// prediction for trace `t`, which is then correlated against
    /// `energies[t]`. Each per-guess accumulator still sees its samples in
    /// ascending trace order, so the result is bit-for-bit identical to
    /// calling [`CpaAccumulator::record`] once per trace — this is the same
    /// sequence of floating-point operations, regrouped guess-major.
    pub fn record_block(
        &mut self,
        energies: &[f64],
        scratch: &mut Vec<f64>,
        mut fill_predictions: impl FnMut(u32, &mut [f64]),
    ) {
        scratch.resize(energies.len(), 0.0);
        for (g, acc) in self.per_guess.iter_mut().enumerate() {
            fill_predictions(g as u32, scratch);
            acc.extend_batch(scratch, energies);
        }
    }

    /// Folds another accumulator (covering the following trace range) in.
    pub fn merge(&mut self, other: &CpaAccumulator) {
        if other.per_guess.is_empty() {
            return;
        }
        if self.per_guess.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(self.per_guess.len(), other.per_guess.len(), "guess count");
        for (a, b) in self.per_guess.iter_mut().zip(&other.per_guess) {
            a.merge(b);
        }
    }

    /// The per-guess correlation accumulators (snapshot side of the
    /// distributed shard-state format), indexed by key guess.
    pub fn guess_accumulators(&self) -> &[CorrelationAccumulator] {
        &self.per_guess
    }

    /// Restores an accumulator from per-guess states (the restore side of
    /// [`CpaAccumulator::guess_accumulators`]).
    pub fn from_guess_accumulators(per_guess: Vec<CorrelationAccumulator>) -> Self {
        CpaAccumulator { per_guess }
    }

    /// Traces recorded so far.
    pub fn traces(&self) -> u64 {
        self.per_guess
            .first()
            .map_or(0, CorrelationAccumulator::count)
    }

    /// `|ρ|` per key guess.
    pub fn correlations(&self) -> Vec<f64> {
        self.per_guess.iter().map(|a| a.pearson().abs()).collect()
    }

    /// Ranks the guesses into a [`CpaOutcome`].
    pub fn outcome(&self, true_key: u32) -> CpaOutcome {
        let correlations = self.correlations();
        let best_guess = correlations
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        CpaOutcome {
            correlations,
            best_guess,
            true_key,
        }
    }
}

/// CPA attack setup against a design with separate data and key input
/// groups.
#[derive(Clone, Debug)]
pub struct CpaConfig {
    /// Number of attack traces.
    pub traces: usize,
    /// RNG seed (plaintexts, masks, noise).
    pub seed: u64,
    /// Indices into the design's data inputs that carry the attacked
    /// plaintext word (LSB first).
    pub plaintext_bits: Vec<usize>,
    /// Indices into the design's data inputs that carry the key word
    /// (LSB first), held at `key_value` for every trace.
    pub key_bits: Vec<usize>,
    /// The secret key value loaded into `key_bits`.
    pub key_value: u32,
}

/// Result of a CPA attack: per-guess absolute correlation, plus ranking.
#[derive(Clone, Debug)]
pub struct CpaOutcome {
    /// `|ρ|` per key guess (index = guess).
    pub correlations: Vec<f64>,
    /// The guess with the highest `|ρ|`.
    pub best_guess: u32,
    /// The true key (echoed from the config).
    pub true_key: u32,
}

impl CpaOutcome {
    /// True if the attack recovered the key.
    pub fn key_recovered(&self) -> bool {
        self.best_guess == self.true_key
    }

    /// Ratio of the best correlation to the runner-up (≫1 = clear win).
    pub fn distinguishing_margin(&self) -> f64 {
        let mut sorted: Vec<f64> = self.correlations.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.len() < 2 || sorted[1] <= 0.0 {
            f64::INFINITY
        } else {
            sorted[0] / sorted[1]
        }
    }
}

/// Per-trace RNG, derived from `(seed, trace_index)` with the campaign
/// engine's shared [`splitmix64`] mixer, so any trace can be recomputed in
/// isolation by any worker.
fn trace_rng(seed: u64, trace: u64) -> StdRng {
    let mut h = splitmix64(seed ^ 0x0C9A_A77A_C4A0_75ED);
    h = splitmix64(h ^ trace);
    StdRng::seed_from_u64(h)
}

/// Immutable attack context shared by all workers.
struct AttackCtx<'a> {
    sim: Simulator<'a>,
    config: &'a CpaConfig,
    caps: Vec<f64>,
    noise_sigma: f64,
    n_data: usize,
    n_mask: usize,
    width: usize,
}

impl AttackCtx<'_> {
    /// Acquires one trace: returns the plaintext applied and the measured
    /// total energy.
    fn acquire(&self, trace: u64) -> (u32, f64) {
        let mut rng = trace_rng(self.config.seed, trace);
        let pt: u32 = rng.gen_range(0..(1u32 << self.width));
        let mut data = vec![0u64; self.n_data];
        for (k, &bit) in self.config.plaintext_bits.iter().enumerate() {
            data[bit] = u64::from(pt >> k & 1) * !0u64;
        }
        for (k, &bit) in self.config.key_bits.iter().enumerate() {
            data[bit] = u64::from(self.config.key_value >> k & 1) * !0u64;
        }
        // Base application (all zero data, fresh masks), then stimulus.
        let base_masks: Vec<u64> = (0..self.n_mask).map(|_| rng.gen::<u64>()).collect();
        let mut st = self.sim.zero_state();
        self.sim
            .eval(&mut st, &vec![0u64; self.n_data], &base_masks);
        let prev = st.values().to_vec();
        let masks: Vec<u64> = (0..self.n_mask).map(|_| rng.gen::<u64>()).collect();
        self.sim.eval(&mut st, &data, &masks);
        let mut energy = 0.0;
        for (g, (&p, &v)) in prev.iter().zip(st.values()).enumerate() {
            if (p ^ v) & 1 == 1 {
                energy += self.caps[g];
            }
        }
        energy += self.noise_sigma * sample_standard_normal(&mut rng);
        (pt, energy)
    }

    /// Runs the traces `[start, start + count)` into `acc`.
    ///
    /// Acquisition runs trace-major (each trace's RNG stream is keyed by its
    /// index), then the accumulation pass runs guess-major over the buffered
    /// `(plaintext, energy)` columns. Each per-guess accumulator still sees
    /// its samples in ascending trace order, so the outcome is bit-identical
    /// to the per-trace [`CpaAccumulator::record`] loop.
    fn run_range(
        &self,
        start: usize,
        count: usize,
        predict: &(dyn Fn(u32, u32) -> f64 + Sync),
        acc: &mut CpaAccumulator,
    ) {
        let mut pts = Vec::with_capacity(count);
        let mut energies = Vec::with_capacity(count);
        for t in start..start + count {
            let (pt, energy) = self.acquire(t as u64);
            pts.push(pt);
            energies.push(energy);
        }
        let mut scratch = Vec::new();
        acc.record_block(&energies, &mut scratch, |g, buf| {
            for (p, &pt) in buf.iter_mut().zip(&pts) {
                *p = predict(pt, g);
            }
        });
    }
}

/// Runs a first-order CPA attack (single worker; see [`run_cpa_parallel`]
/// for the sharded variant — both produce bit-identical outcomes).
///
/// `predict(plaintext, guess)` is the attacker's leakage model — typically
/// `HW(SBOX[plaintext ^ guess])`. Mask inputs of the design receive fresh
/// randomness every trace (the defender's RNG), exactly as in the TVLA
/// campaigns.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
///
/// # Panics
///
/// Panics if bit indices are out of range for the design's data inputs.
pub fn run_cpa(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CpaConfig,
    predict: &(dyn Fn(u32, u32) -> f64 + Sync),
) -> Result<CpaOutcome, NetlistError> {
    run_cpa_parallel(netlist, model, config, predict, Parallelism::sequential())
}

/// Runs the CPA attack across worker threads, each folding its trace shards
/// into a private [`CpaAccumulator`]; shards merge in order at the barrier,
/// so the outcome is bit-identical at any thread count.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
///
/// # Panics
///
/// Panics if bit indices are out of range for the design's data inputs.
pub fn run_cpa_parallel(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CpaConfig,
    predict: &(dyn Fn(u32, u32) -> f64 + Sync),
    parallelism: Parallelism,
) -> Result<CpaOutcome, NetlistError> {
    let sim = Simulator::new(netlist)?;
    let n_data = netlist.data_inputs().len();
    let n_mask = netlist.mask_inputs().len();
    for &b in config.plaintext_bits.iter().chain(&config.key_bits) {
        assert!(b < n_data, "input bit index {b} out of range");
    }
    let width = config.plaintext_bits.len();
    assert!(width <= 20, "attack word capped at 20 bits");

    let ctx = AttackCtx {
        sim,
        config,
        caps: netlist.iter().map(|(_, g)| model.cap(g.kind())).collect(),
        noise_sigma: model.noise_sigma(),
        n_data,
        n_mask,
        width,
    };
    let guesses = 1usize << config.key_bits.len();

    // Fixed shard grid over the trace space (independent of thread count),
    // scheduled by the campaign engine's deterministic shard runner.
    let starts: Vec<usize> = (0..config.traces).step_by(CPA_TRACES_PER_SHARD).collect();
    let accumulators = run_sharded(starts.len(), parallelism, |i| {
        let start = starts[i];
        let count = (config.traces - start).min(CPA_TRACES_PER_SHARD);
        let mut acc = CpaAccumulator::new(guesses);
        ctx.run_range(start, count, predict, &mut acc);
        acc
    });

    let mut total = CpaAccumulator::new(guesses);
    for acc in &accumulators {
        total.merge(acc);
    }
    Ok(total.outcome(config.key_value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators::blocks;
    use polaris_netlist::{GateId, GateKind};

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &x) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn accumulator_matches_two_pass_pearson() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let ys: Vec<f64> = (0..500).map(|i| ((i * 13) % 89) as f64 + 0.25).collect();
        let mut acc = CorrelationAccumulator::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            acc.push(x, y);
        }
        assert_eq!(acc.count(), 500);
        assert!((acc.pearson() - pearson(&xs, &ys)).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 3.0).collect();
        let ys: Vec<f64> = (0..1000)
            .map(|i| (i as f64).cos() + 0.1 * i as f64)
            .collect();
        for split in [1, 137, 500, 999] {
            let mut left = CorrelationAccumulator::new();
            let mut right = CorrelationAccumulator::new();
            for i in 0..split {
                left.push(xs[i], ys[i]);
            }
            for i in split..xs.len() {
                right.push(xs[i], ys[i]);
            }
            left.merge(&right);
            assert_eq!(left.count(), 1000);
            assert!(
                (left.pearson() - pearson(&xs, &ys)).abs() < 1e-10,
                "split {split}"
            );
        }
    }

    #[test]
    fn accumulator_merge_with_empty_is_identity() {
        let mut acc = CorrelationAccumulator::new();
        acc.push(1.0, 2.0);
        acc.push(3.0, -1.0);
        let snapshot = acc;
        acc.merge(&CorrelationAccumulator::new());
        assert_eq!(acc, snapshot);
        let mut empty = CorrelationAccumulator::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn extend_batch_is_bit_identical_to_sequential_push() {
        let xs: Vec<f64> = (0..777).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let ys: Vec<f64> = (0..777).map(|i| (i as f64 * 0.11).cos() - 1.5).collect();
        let mut seq = CorrelationAccumulator::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            seq.push(x, y);
        }
        for chunk in [1usize, 2, 63, 64, 65, 256, 777] {
            let mut batched = CorrelationAccumulator::new();
            for (cx, cy) in xs.chunks(chunk).zip(ys.chunks(chunk)) {
                batched.extend_batch(cx, cy);
            }
            assert_eq!(batched.n, seq.n, "chunk {chunk}");
            for (a, b) in [
                (batched.mean_x, seq.mean_x),
                (batched.mean_y, seq.mean_y),
                (batched.m2x, seq.m2x),
                (batched.m2y, seq.m2y),
                (batched.cxy, seq.cxy),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn record_block_matches_per_trace_record() {
        let guesses = 16usize;
        let pts: Vec<u32> = (0..300).map(|t| (t * 7 + 3) % 16).collect();
        let energies: Vec<f64> = (0..300).map(|t| (t as f64 * 0.21).sin() * 2.0).collect();
        let predict = |pt: u32, g: u32| f64::from((pt ^ g).count_ones());

        let mut per_trace = CpaAccumulator::new(guesses);
        let mut predictions = vec![0.0f64; guesses];
        for (&pt, &e) in pts.iter().zip(&energies) {
            for (g, p) in predictions.iter_mut().enumerate() {
                *p = predict(pt, g as u32);
            }
            per_trace.record(&predictions, e);
        }

        let mut blocked = CpaAccumulator::new(guesses);
        let mut scratch = Vec::new();
        blocked.record_block(&energies, &mut scratch, |g, buf| {
            for (p, &pt) in buf.iter_mut().zip(&pts) {
                *p = predict(pt, g);
            }
        });

        for (a, b) in blocked.per_guess.iter().zip(&per_trace.per_guess) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.mean_x.to_bits(), b.mean_x.to_bits());
            assert_eq!(a.mean_y.to_bits(), b.mean_y.to_bits());
            assert_eq!(a.m2x.to_bits(), b.m2x.to_bits());
            assert_eq!(a.m2y.to_bits(), b.m2y.to_bits());
            assert_eq!(a.cxy.to_bits(), b.cxy.to_bits());
        }
    }

    #[test]
    fn degenerate_correlation_is_zero() {
        let mut acc = CorrelationAccumulator::new();
        for i in 0..10 {
            acc.push(5.0, f64::from(i));
        }
        assert_eq!(acc.pearson(), 0.0);
    }

    /// PRESENT-like keyed S-box stage used as the attack target.
    fn keyed_sbox() -> (Netlist, Vec<u16>) {
        let table: Vec<u16> = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2]
            .map(|v| v as u16)
            .to_vec();
        let mut n = Netlist::new("keyed_sbox");
        let data: Vec<GateId> = (0..4).map(|i| n.add_input(format!("d{i}"))).collect();
        let key: Vec<GateId> = (0..4).map(|i| n.add_input(format!("k{i}"))).collect();
        let keyed: Vec<GateId> = data
            .iter()
            .zip(&key)
            .enumerate()
            .map(|(i, (&d, &k))| {
                n.add_gate(GateKind::Xor, format!("kx{i}"), &[d, k])
                    .expect("valid")
            })
            .collect();
        let out = blocks::sbox(&mut n, "sb", &keyed, &table, 4);
        for (i, o) in out.iter().enumerate() {
            n.add_output(format!("s{i}"), *o).expect("valid");
        }
        (n, table)
    }

    /// Hamming-distance leakage model: the acquisition applies an all-zero
    /// base vector before each stimulus, so the reference S-box output is
    /// `S(0)` and the device switches `HW(S(0) ⊕ S(pt ⊕ k))` output bits
    /// (plus the input-layer distance `HW(pt ⊕ k)`).
    fn hd_predictor(table: Vec<u16>) -> impl Fn(u32, u32) -> f64 + Sync {
        move |pt, guess| {
            let x = (pt ^ guess) as usize & 0xF;
            let sbox_hd = (table[0] ^ table[x]).count_ones();
            let input_hd = (x as u32).count_ones();
            f64::from(sbox_hd + input_hd)
        }
    }

    fn config(key: u32, traces: usize) -> CpaConfig {
        CpaConfig {
            traces,
            seed: 42,
            plaintext_bits: vec![0, 1, 2, 3],
            key_bits: vec![4, 5, 6, 7],
            key_value: key,
        }
    }

    #[test]
    fn cpa_recovers_key_from_unprotected_sbox() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default().with_noise(0.3);
        for key in [0x3u32, 0xA, 0xF] {
            let outcome =
                run_cpa(&n, &model, &config(key, 1500), &hd_predictor(table.clone())).unwrap();
            assert!(
                outcome.key_recovered(),
                "key {key:#x}: best guess {:#x}, correlations {:?}",
                outcome.best_guess,
                outcome.correlations
            );
            assert!(outcome.distinguishing_margin() > 1.1);
        }
    }

    #[test]
    fn parallel_cpa_bit_identical_across_thread_counts() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default().with_noise(0.3);
        let cfg = config(0x9, 1000);
        let predictor = hd_predictor(table);
        let base = run_cpa(&n, &model, &cfg, &predictor).unwrap();
        for threads in [2, 4, 8] {
            let par =
                run_cpa_parallel(&n, &model, &cfg, &predictor, Parallelism::new(threads)).unwrap();
            assert_eq!(par.best_guess, base.best_guess);
            for (a, b) in base.correlations.iter().zip(&par.correlations) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "correlations must be byte-identical at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn masking_destroys_the_cpa_correlation() {
        use polaris_masking::{apply_masking, MaskingStyle};
        let (n, table) = keyed_sbox();
        let (norm, _) = polaris_netlist::transform::decompose(&n).unwrap();
        let masked = apply_masking(&norm, &norm.cell_ids(), MaskingStyle::Trichina).unwrap();
        let model = PowerModel::default().with_noise(0.3);
        let key = 0xB;
        let unprotected = run_cpa(
            &norm,
            &model,
            &config(key, 1500),
            &hd_predictor(table.clone()),
        )
        .unwrap();
        let protected = run_cpa(
            &masked.netlist,
            &model,
            &config(key, 1500),
            &hd_predictor(table),
        )
        .unwrap();
        let best_unprotected = unprotected.correlations[key as usize];
        let best_protected = protected.correlations[key as usize];
        // The local mask/re-combine convention keeps the boundary gates'
        // data-dependent switching, so the correlation is *attenuated* (the
        // composite's mask-driven gates add variance), not erased: attack
        // cost scales as 1/ρ², so halving ρ quadruples the traces needed.
        assert!(
            best_protected < best_unprotected * 0.7,
            "masking should attenuate the correct-key correlation: \
             {best_unprotected:.3} -> {best_protected:.3}"
        );
        assert!(
            unprotected.key_recovered(),
            "sanity: the unprotected attack must succeed"
        );
    }

    #[test]
    fn more_traces_sharpen_the_attack() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default().with_noise(1.5); // noisy scope
        let key = 0x6;
        let few = run_cpa(&n, &model, &config(key, 100), &hd_predictor(table.clone())).unwrap();
        let many = run_cpa(&n, &model, &config(key, 4000), &hd_predictor(table)).unwrap();
        assert!(many.key_recovered(), "4000 traces should suffice");
        // The correct-key correlation estimate stabilizes with traces.
        assert!(
            many.correlations[key as usize] >= few.correlations[key as usize] * 0.5,
            "correlation should not collapse with more traces"
        );
    }

    #[test]
    fn deterministic() {
        let (n, table) = keyed_sbox();
        let model = PowerModel::default();
        let a = run_cpa(&n, &model, &config(5, 300), &hd_predictor(table.clone())).unwrap();
        let b = run_cpa(&n, &model, &config(5, 300), &hd_predictor(table)).unwrap();
        assert_eq!(a.correlations, b.correlations);
    }
}
