//! Test Vector Leakage Assessment (TVLA).
//!
//! Implements the leakage-assessment substrate of the paper (§II-A):
//!
//! * [`welch`] — Welch's t-test with the Welch–Satterthwaite degrees of
//!   freedom (paper Eq. 1) and exact two-sided p-values via the regularized
//!   incomplete beta function.
//! * [`moments`] — the one-pass raw/central moment streaming of
//!   Schneider–Moradi (paper Eqs. 3–4), including accumulator merging, so
//!   trace acquisition never stores full trace matrices.
//! * [`gate_leakage`] — per-gate leakage maps: the `leak_estimate` primitive
//!   used by Algorithms 1–2 of the paper and by the VALIANT baseline,
//!   including the ±4.5 leaky-gate threshold and second-order (centered
//!   square) assessment.
//! * [`sequential`] — adaptive sequential stopping: an O'Brien–Fleming
//!   alpha-spending rule evaluated at the parallel engine's round
//!   checkpoints, terminating a campaign once every gate's verdict has
//!   converged ([`assess_adaptive`]).
//!
//! # Example
//!
//! ```
//! use polaris_netlist::generators;
//! use polaris_sim::{CampaignConfig, PowerModel};
//! use polaris_tvla::assess;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generators::iscas_c17();
//! let cfg = CampaignConfig::new(500, 500, 7);
//! let leakage = assess(&design, &PowerModel::default(), &cfg)?;
//! // Unprotected data-driven logic shows first-order leakage.
//! assert!(leakage.max_abs_t() > polaris_tvla::TVLA_THRESHOLD);
//! # Ok(())
//! # }
//! ```

pub mod bivariate;
pub mod cpa;
pub mod gate_leakage;
pub mod moments;
pub mod sequential;
pub mod special;
pub mod trivariate;
pub mod waveform;
pub mod welch;

pub use bivariate::{
    all_pairs, assess_pairs, bivariate_sweep, bivariate_t, pair_welch_t, validate_pairs,
    BivariateError, MultivariateError, PairAccumulator, PairMoments,
};
pub use cpa::{run_cpa, run_cpa_parallel, CorrelationAccumulator, CpaAccumulator};
pub use gate_leakage::{
    assess, assess_order2, assess_order2_parallel, assess_parallel, assess_parallel_traced,
    ConvergenceSummary, GateLeakage, LeakageSummary, WelchAccumulator,
};
pub use moments::StreamingMoments;
pub use sequential::{
    adaptive_fleet_job, adaptive_fleet_job_traced, assess_adaptive, assess_adaptive_traced,
    campaign_outcome_adaptive, campaign_outcome_adaptive_traced, AdaptiveAssessment,
    SequentialConfig, SequentialStopping,
};
pub use trivariate::{
    all_triples, assess_triples, triple_welch_t, validate_triples, TripleAccumulator, TripleMoments,
};
pub use welch::{welch_t, WelchResult};

/// The conventional TVLA distinguishability threshold on `|t|` (±4.5, giving
/// >99.999 % confidence for large sample sizes — paper §II-A).
pub const TVLA_THRESHOLD: f64 = 4.5;
