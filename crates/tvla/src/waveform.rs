//! Waveform-mode TVLA: per-*cycle* t-tests over total power.
//!
//! Gate-level assessment (the [`crate::gate_leakage`] module) assumes white-
//! box access to per-gate energies — what an EDA flow has. A lab evaluator
//! instead records the chip's total supply current per time sample; TVLA is
//! then run *per trace point*. This module provides that view over the
//! simulator's total-power waveforms: one Welch t-statistic per clock cycle,
//! plus the conventional "any point above ±4.5" verdict.

use polaris_netlist::{Netlist, NetlistError};
use polaris_sim::campaign::{collect_waveforms, CampaignConfig, Population};
use polaris_sim::PowerModel;

use crate::moments::StreamingMoments;
use crate::welch::{welch_t, WelchResult};
use crate::TVLA_THRESHOLD;

/// Per-cycle t-test results over total-power waveforms.
#[derive(Clone, Debug)]
pub struct WaveformLeakage {
    results: Vec<WelchResult>,
}

impl WaveformLeakage {
    /// Number of cycles assessed.
    pub fn cycles(&self) -> usize {
        self.results.len()
    }

    /// The t-test result of one cycle.
    pub fn result(&self, cycle: usize) -> WelchResult {
        self.results[cycle]
    }

    /// All `|t|` values in cycle order.
    pub fn abs_t(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.t.abs()).collect()
    }

    /// Largest `|t|` across cycles.
    pub fn max_abs_t(&self) -> f64 {
        self.results.iter().map(|r| r.t.abs()).fold(0.0, f64::max)
    }

    /// The standard verdict: does any trace point exceed ±4.5?
    pub fn is_leaky(&self) -> bool {
        self.max_abs_t() > TVLA_THRESHOLD
    }
}

/// Runs a fixed-vs-random campaign in waveform mode and t-tests each cycle.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulation.
pub fn assess_waveform(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
) -> Result<WaveformLeakage, NetlistError> {
    let fixed = collect_waveforms(netlist, model, config, Population::Fixed)?;
    let random = collect_waveforms(netlist, model, config, Population::Random)?;
    let cycles = config.cycles;
    let mut results = Vec::with_capacity(cycles);
    for c in 0..cycles {
        let mut mf = StreamingMoments::new();
        for trace in &fixed {
            mf.push(trace[c]);
        }
        let mut mr = StreamingMoments::new();
        for trace in &random {
            mr.push(trace[c]);
        }
        results.push(welch_t(&mf, &mr));
    }
    Ok(WaveformLeakage { results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    #[test]
    fn unprotected_design_leaks_in_waveform_mode() {
        let design = generators::iscas_c17();
        let cfg = CampaignConfig::new(800, 800, 5);
        let w = assess_waveform(&design, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(w.cycles(), 1);
        assert!(w.is_leaky(), "max |t| = {:.2}", w.max_abs_t());
    }

    #[test]
    fn sequential_design_assessed_per_cycle() {
        let design = generators::memctrl(1, 3);
        let cfg = CampaignConfig::new(400, 400, 5).with_cycles(4);
        let w = assess_waveform(&design, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(w.cycles(), 4);
        // First cycle (data application) carries the biggest switch.
        assert!(w.result(0).t.abs() >= 0.0);
        assert!(w.is_leaky());
    }

    #[test]
    fn masked_design_waveform_below_unmasked() {
        use polaris_masking::{apply_masking, MaskingStyle};
        use polaris_netlist::transform::decompose;
        let (design, _) = decompose(&generators::iscas_c17()).unwrap();
        let cfg = CampaignConfig::new(1200, 1200, 9);
        let model = PowerModel::default();
        let before = assess_waveform(&design, &model, &cfg).unwrap();
        let masked = apply_masking(&design, &design.cell_ids(), MaskingStyle::Trichina).unwrap();
        let after = assess_waveform(&masked.netlist, &model, &cfg).unwrap();
        assert!(
            after.max_abs_t() < before.max_abs_t() / 2.0,
            "masking should cut the waveform t: {:.1} -> {:.1}",
            before.max_abs_t(),
            after.max_abs_t()
        );
    }

    #[test]
    fn deterministic() {
        let design = generators::iscas_c17();
        let cfg = CampaignConfig::new(200, 200, 7);
        let a = assess_waveform(&design, &PowerModel::default(), &cfg).unwrap();
        let b = assess_waveform(&design, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(a.abs_t(), b.abs_t());
    }
}
