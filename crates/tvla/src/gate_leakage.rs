//! Per-gate leakage assessment — the `leak_estimate` primitive of the
//! paper's Algorithms 1 and 2.
//!
//! A [`WelchAccumulator`] implements [`TraceSink`], so it plugs straight into
//! [`polaris_sim::campaign::run_campaign`] and maintains one pair of
//! streaming-moment accumulators per gate. [`assess`] bundles the whole
//! pipeline: simulate a fixed-vs-random campaign and produce a
//! [`GateLeakage`] map of per-gate t-statistics (Fig. 4 of the paper plots
//! exactly this, with the ±4.5 threshold).

use polaris_netlist::{GateId, Netlist, NetlistError};
use polaris_obs::SharedRecorder;
use polaris_sim::campaign::{
    run_campaign_parallel, run_campaign_traced, CampaignConfig, EnergyBatch, MergeableSink,
    NeverStop, Parallelism, Population, TraceSink,
};
use polaris_sim::power::PowerModel;

use crate::moments::StreamingMoments;
use crate::welch::{welch_t, WelchResult};
use crate::TVLA_THRESHOLD;

/// Streaming per-gate Welch accumulator.
#[derive(Clone, Debug, Default)]
pub struct WelchAccumulator {
    fixed: Vec<StreamingMoments>,
    random: Vec<StreamingMoments>,
}

impl WelchAccumulator {
    /// Creates an accumulator sized lazily on the first batch.
    pub fn new() -> Self {
        WelchAccumulator::default()
    }

    /// Number of gates tracked so far.
    pub fn gate_count(&self) -> usize {
        self.fixed.len()
    }

    /// The per-gate moment accumulators of both classes, `(fixed, random)` —
    /// the snapshot side of the distributed shard-state format.
    pub fn classes(&self) -> (&[StreamingMoments], &[StreamingMoments]) {
        (&self.fixed, &self.random)
    }

    /// Restores an accumulator from per-gate class moments (the restore side
    /// of [`WelchAccumulator::classes`]).
    ///
    /// # Panics
    ///
    /// Panics if the class vectors disagree on the gate count.
    pub fn from_classes(fixed: Vec<StreamingMoments>, random: Vec<StreamingMoments>) -> Self {
        assert_eq!(fixed.len(), random.len(), "class gate counts must match");
        WelchAccumulator { fixed, random }
    }

    /// First-order leakage map (t-test on raw samples).
    pub fn leakage(&self) -> GateLeakage {
        let results = self
            .fixed
            .iter()
            .zip(&self.random)
            .map(|(f, r)| welch_t(f, r))
            .collect();
        GateLeakage { results }
    }

    /// Second-order leakage map: t-test on centered squares, computed from
    /// the streamed moments (`μ_y = CM2`, `s²_y = CM4 − CM2²`) without a
    /// second pass — the Schneider–Moradi higher-order trick.
    pub fn leakage_order2(&self) -> GateLeakage {
        let to_sq = |m: &StreamingMoments| {
            let mut sq = StreamingMomentsSummary {
                n: m.count(),
                mean: m.population_variance(),
                var: m.central_moment4() - m.population_variance().powi(2),
            };
            if sq.var < 0.0 {
                sq.var = 0.0;
            }
            sq
        };
        let results = self
            .fixed
            .iter()
            .zip(&self.random)
            .map(|(f, r)| welch_from_summary(to_sq(f), to_sq(r)))
            .collect();
        GateLeakage { results }
    }
}

/// Summary statistics for a preprocessed population.
#[derive(Clone, Copy, Debug)]
struct StreamingMomentsSummary {
    n: u64,
    mean: f64,
    var: f64,
}

fn welch_from_summary(a: StreamingMomentsSummary, b: StreamingMomentsSummary) -> WelchResult {
    if a.n < 2 || b.n < 2 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let n0 = a.n as f64;
    let n1 = b.n as f64;
    // Population→sample variance correction for the derived distribution.
    let v0 = a.var * n0 / (n0 - 1.0);
    let v1 = b.var * n1 / (n1 - 1.0);
    let se2 = v0 / n0 + v1 / n1;
    if se2 <= 0.0 {
        return WelchResult { t: 0.0, dof: 0.0 };
    }
    let t = (a.mean - b.mean) / se2.sqrt();
    let denom = (v0 / n0).powi(2) / (n0 - 1.0) + (v1 / n1).powi(2) / (n1 - 1.0);
    let dof = if denom > 0.0 { se2 * se2 / denom } else { 0.0 };
    WelchResult { t, dof }
}

impl TraceSink for WelchAccumulator {
    /// Consumes the batch as one structure-of-arrays pass: each gate's lane
    /// row feeds a blocked [`StreamingMoments::extend_batch`] update, which
    /// is bit-for-bit identical to per-sample `push` in trace order — so the
    /// accumulator state is independent of how the trace stream is cut into
    /// batches (and therefore of the engine's lane width).
    fn record_batch(&mut self, pop: Population, batch: EnergyBatch<'_>) {
        let gates = batch.gates();
        if self.fixed.is_empty() {
            self.fixed.resize(gates, StreamingMoments::new());
            self.random.resize(gates, StreamingMoments::new());
        }
        let store = match pop {
            Population::Fixed => &mut self.fixed,
            Population::Random => &mut self.random,
        };
        for (g, acc) in store.iter_mut().enumerate().take(gates) {
            acc.extend_batch(batch.gate_lanes(g));
        }
    }
}

impl MergeableSink for WelchAccumulator {
    /// Folds another accumulator in via the pairwise moment combination of
    /// Chan et al. (see [`StreamingMoments::merge`]), gate by gate. Each
    /// campaign worker owns a private `WelchAccumulator`; the engine folds
    /// them in shard order so results are reproducible at any thread count.
    fn merge(&mut self, other: Self) {
        if other.fixed.is_empty() {
            return;
        }
        if self.fixed.is_empty() {
            *self = other;
            return;
        }
        debug_assert_eq!(self.fixed.len(), other.fixed.len(), "gate count mismatch");
        for (a, b) in self.fixed.iter_mut().zip(&other.fixed) {
            a.merge(b);
        }
        for (a, b) in self.random.iter_mut().zip(&other.random) {
            a.merge(b);
        }
    }
}

/// Per-gate t-test results for one design.
#[derive(Clone, Debug)]
pub struct GateLeakage {
    results: Vec<WelchResult>,
}

impl GateLeakage {
    /// Builds a map from raw per-gate results (mainly for tests).
    pub fn from_results(results: Vec<WelchResult>) -> Self {
        GateLeakage { results }
    }

    /// Number of gates assessed.
    pub fn gate_count(&self) -> usize {
        self.results.len()
    }

    /// t-test result of one gate.
    pub fn result(&self, id: GateId) -> WelchResult {
        self.results[id.index()]
    }

    /// `|t|` of one gate — the paper's per-gate "leakage value".
    pub fn abs_t(&self, id: GateId) -> f64 {
        self.results[id.index()].t.abs()
    }

    /// All `|t|` values, indexed by gate.
    pub fn abs_t_all(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.t.abs()).collect()
    }

    /// Gates whose `|t|` exceeds `threshold` (±4.5 in the paper), sorted by
    /// descending `|t|` — the "leaky gates" both VALIANT and POLARIS target.
    pub fn leaky_gates(&self, threshold: f64) -> Vec<GateId> {
        let mut v: Vec<(GateId, f64)> = self
            .results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.t.abs() > threshold)
            .map(|(i, r)| (GateId::new(i), r.t.abs()))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(id, _)| id).collect()
    }

    /// Largest `|t|` across all gates.
    pub fn max_abs_t(&self) -> f64 {
        self.results.iter().map(|r| r.t.abs()).fold(0.0, f64::max)
    }

    /// Sequential-convergence state of the whole map at a checkpoint with
    /// confidence margin `margin` (see [`WelchResult::resolution`]): counts
    /// of gates resolved leaky, resolved clean, and still undecided.
    pub fn convergence(&self, threshold: f64, margin: f64) -> ConvergenceSummary {
        self.convergence_of((0..self.results.len()).map(GateId::new), threshold, margin)
    }

    /// [`GateLeakage::convergence`] restricted to a subset of gates —
    /// typically the netlist's cells, so the stop decision is keyed to the
    /// same verdict [`GateLeakage::summarize`] reports (inputs, constants
    /// and flops carry no maskable leakage and should not hold a campaign
    /// open).
    pub fn convergence_of<I>(&self, gates: I, threshold: f64, margin: f64) -> ConvergenceSummary
    where
        I: IntoIterator<Item = GateId>,
    {
        let mut s = ConvergenceSummary::default();
        for id in gates {
            match self.results[id.index()].resolution(threshold, margin) {
                Some(true) => s.leaky += 1,
                Some(false) => s.clean += 1,
                None => s.unresolved += 1,
            }
        }
        s
    }

    /// Summary restricted to the netlist's combinational cells (inputs,
    /// constants and flops carry no maskable leakage).
    pub fn summarize(&self, netlist: &Netlist) -> LeakageSummary {
        let cells = netlist.cell_ids();
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut leaky = 0;
        for &id in &cells {
            let a = self.abs_t(id);
            sum += a;
            max = max.max(a);
            if a > TVLA_THRESHOLD {
                leaky += 1;
            }
        }
        LeakageSummary {
            cells: cells.len(),
            mean_abs_t: if cells.is_empty() {
                0.0
            } else {
                sum / cells.len() as f64
            },
            total_abs_t: sum,
            max_abs_t: max,
            leaky_cells: leaky,
        }
    }
}

/// Per-checkpoint convergence census of a leakage map (sequential-stopping
/// state): every gate is either resolved (leaky / clean with confidence) or
/// still undecided at the current trace count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConvergenceSummary {
    /// Gates whose `|t|` exceeds the leak threshold.
    pub leaky: usize,
    /// Gates confidently below the threshold (`|t| + margin ≤ threshold`).
    pub clean: usize,
    /// Gates in the undecided band.
    pub unresolved: usize,
}

impl ConvergenceSummary {
    /// True when every gate's verdict is resolved — the stopping condition
    /// of the adaptive engine.
    pub fn is_converged(&self) -> bool {
        self.unresolved == 0
    }
}

/// Aggregate leakage over a design's cells.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageSummary {
    /// Number of combinational cells assessed.
    pub cells: usize,
    /// Mean `|t|` per cell — Table II's "Leakage Value (Per Gate)".
    pub mean_abs_t: f64,
    /// Sum of `|t|` over cells — basis of "Total Leakage Reduction (%)".
    pub total_abs_t: f64,
    /// Peak `|t|`.
    pub max_abs_t: f64,
    /// Cells above the ±4.5 threshold.
    pub leaky_cells: usize,
}

impl LeakageSummary {
    /// Total leakage reduction percentage relative to `before`
    /// (Table II semantics: `1 − Σ|t|_after / Σ|t|_before`).
    pub fn reduction_pct_from(&self, before: &LeakageSummary) -> f64 {
        if before.total_abs_t <= 0.0 {
            0.0
        } else {
            (1.0 - self.total_abs_t / before.total_abs_t) * 100.0
        }
    }
}

/// Runs a fixed-vs-random campaign and returns the first-order per-gate
/// leakage map — the paper's `leak_estimate(D)`.
///
/// Single-threaded entry point of the sharded engine: bit-identical to
/// [`assess_parallel`] at any thread count.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
) -> Result<GateLeakage, NetlistError> {
    assess_parallel(netlist, model, config, Parallelism::sequential())
}

/// Runs the campaign across worker threads (each owning a private
/// [`WelchAccumulator`]) and folds the shards at the barrier. The thread
/// count is purely a throughput knob — the leakage map is bit-identical at
/// 1, 2, 8, … threads.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_parallel(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> Result<GateLeakage, NetlistError> {
    let acc: WelchAccumulator = run_campaign_parallel(netlist, model, config, parallelism)?;
    Ok(acc.leakage())
}

/// [`assess_parallel`] reporting structured trace events (campaign frame,
/// per-shard phase spans, fold spans) to `recorder`. The full shard grid is
/// walked — no stopping rule, so no checkpoint/audit events — and the
/// leakage map is byte-identical to the untraced run.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_parallel_traced(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
    recorder: SharedRecorder,
) -> Result<GateLeakage, NetlistError> {
    let outcome = run_campaign_traced::<WelchAccumulator, _>(
        netlist,
        model,
        config,
        parallelism,
        polaris_sim::campaign::DEFAULT_SHARDS_PER_ROUND,
        &mut NeverStop,
        recorder.as_ref(),
    )?;
    Ok(outcome.sink.leakage())
}

/// Second-order variant of [`assess`] (centered-square preprocessing).
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_order2(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
) -> Result<GateLeakage, NetlistError> {
    assess_order2_parallel(netlist, model, config, Parallelism::sequential())
}

/// Parallel second-order assessment; same determinism guarantee as
/// [`assess_parallel`].
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulator compilation.
pub fn assess_order2_parallel(
    netlist: &Netlist,
    model: &PowerModel,
    config: &CampaignConfig,
    parallelism: Parallelism,
) -> Result<GateLeakage, NetlistError> {
    let acc: WelchAccumulator = run_campaign_parallel(netlist, model, config, parallelism)?;
    Ok(acc.leakage_order2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;

    fn c17_leakage(traces: usize, seed: u64) -> (polaris_netlist::Netlist, GateLeakage) {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(traces, traces, seed);
        let l = assess(&n, &PowerModel::default(), &cfg).unwrap();
        (n, l)
    }

    #[test]
    fn unprotected_design_leaks() {
        let (n, l) = c17_leakage(600, 3);
        let s = l.summarize(&n);
        assert!(s.max_abs_t > TVLA_THRESHOLD, "max |t| = {}", s.max_abs_t);
        assert!(s.leaky_cells > 0);
        assert!(s.mean_abs_t > 0.0);
    }

    #[test]
    fn inputs_are_not_cells_in_summary() {
        let (n, l) = c17_leakage(200, 3);
        let s = l.summarize(&n);
        assert_eq!(s.cells, 6, "c17 has exactly 6 nand cells");
        assert_eq!(l.gate_count(), n.gate_count());
    }

    #[test]
    fn leaky_gates_sorted_descending() {
        let (_n, l) = c17_leakage(600, 9);
        let leaky = l.leaky_gates(1.0);
        for w in leaky.windows(2) {
            assert!(l.abs_t(w[0]) >= l.abs_t(w[1]));
        }
    }

    #[test]
    fn masked_xor_does_not_leak_first_order() {
        // y = a XOR m where m is a fresh mask: no first-order leakage.
        let src = "
module m (a, m0, y);
  input a;
  mask_input m0;
  output y;
  xor g (y, a, m0);
endmodule";
        let n = polaris_netlist::parse_netlist(src).unwrap();
        let cfg = CampaignConfig::new(2000, 2000, 21);
        let l = assess(&n, &PowerModel::default(), &cfg).unwrap();
        let xor_gate = n
            .iter()
            .find(|(_, g)| g.kind() == polaris_netlist::GateKind::Xor)
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            l.abs_t(xor_gate) < TVLA_THRESHOLD,
            "|t| = {} should be below threshold",
            l.abs_t(xor_gate)
        );
    }

    #[test]
    fn more_traces_increase_confidence() {
        let (n1, l1) = c17_leakage(100, 5);
        let (_, l2) = c17_leakage(1600, 5);
        let s1 = l1.summarize(&n1);
        let s2 = l2.summarize(&n1);
        assert!(
            s2.max_abs_t > s1.max_abs_t,
            "t grows ~√N: {} vs {}",
            s2.max_abs_t,
            s1.max_abs_t
        );
    }

    #[test]
    fn reduction_pct_semantics() {
        let before = LeakageSummary {
            cells: 10,
            mean_abs_t: 2.0,
            total_abs_t: 20.0,
            max_abs_t: 5.0,
            leaky_cells: 5,
        };
        let after = LeakageSummary {
            cells: 10,
            mean_abs_t: 1.0,
            total_abs_t: 10.0,
            max_abs_t: 2.0,
            leaky_cells: 1,
        };
        assert!((after.reduction_pct_from(&before) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn order2_map_has_same_shape() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(300, 300, 13);
        let l2 = assess_order2(&n, &PowerModel::default(), &cfg).unwrap();
        assert_eq!(l2.gate_count(), n.gate_count());
        // Second-order stats are finite and non-negative.
        for id in n.ids() {
            assert!(l2.abs_t(id).is_finite());
        }
    }

    #[test]
    fn assessment_deterministic_in_seed() {
        let (_, l1) = c17_leakage(300, 77);
        let (_, l2) = c17_leakage(300, 77);
        for i in 0..l1.gate_count() {
            let id = GateId::new(i);
            assert_eq!(l1.result(id), l2.result(id));
        }
    }

    #[test]
    fn parallel_assessment_bit_identical_across_thread_counts() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(1000, 1000, 13);
        let model = PowerModel::default();
        let base = assess_parallel(&n, &model, &cfg, Parallelism::new(1)).unwrap();
        for threads in [2, 4, 8] {
            let l = assess_parallel(&n, &model, &cfg, Parallelism::new(threads)).unwrap();
            for id in n.ids() {
                assert_eq!(
                    base.result(id).t.to_bits(),
                    l.result(id).t.to_bits(),
                    "t must be byte-identical at {threads} threads (gate {id})"
                );
                assert_eq!(base.result(id).dof.to_bits(), l.result(id).dof.to_bits());
            }
        }
    }

    #[test]
    fn merged_accumulators_track_straight_streaming() {
        // The sharded engine folds per-shard accumulators with the pairwise
        // moment combination; a plain sequential stream into one accumulator
        // must agree to floating-point rounding.
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(700, 700, 31);
        let model = PowerModel::default();
        let mut straight = WelchAccumulator::new();
        polaris_sim::campaign::run_campaign(&n, &model, &cfg, &mut straight).unwrap();
        let sharded = assess(&n, &model, &cfg).unwrap();
        for id in n.ids() {
            let a = straight.leakage().result(id).t;
            let b = sharded.result(id).t;
            assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "gate {id}: straight {a} vs sharded {b}"
            );
        }
    }

    #[test]
    fn welch_accumulator_merge_handles_empty_sides() {
        let n = generators::iscas_c17();
        let cfg = CampaignConfig::new(100, 100, 3);
        let model = PowerModel::default();
        let mut full = WelchAccumulator::new();
        polaris_sim::campaign::run_campaign(&n, &model, &cfg, &mut full).unwrap();
        let reference = full.clone();

        // empty ← full adopts the full accumulator; full ← empty is a no-op.
        let mut empty = WelchAccumulator::new();
        empty.merge(full.clone());
        assert_eq!(empty.gate_count(), reference.gate_count());
        full.merge(WelchAccumulator::new());
        for id in n.ids() {
            assert_eq!(full.leakage().result(id), reference.leakage().result(id));
            assert_eq!(empty.leakage().result(id), reference.leakage().result(id));
        }
    }
}
