//! One-pass streaming moments (Schneider–Moradi / Pébay update formulas).
//!
//! The naive TVLA implementation recomputes means and variances with two
//! passes over all traces (paper Eq. 2); this accumulator maintains the
//! first raw moment and the second-to-fourth central sums *incrementally*
//! (paper Eqs. 3–4 and their higher-order extension), so trace acquisition
//! and leakage assessment are a single streaming pass. Accumulators can be
//! merged, enabling batched or distributed acquisition.

/// Streaming accumulator for mean and 2nd–4th central moments.
///
/// ```
/// use polaris_tvla::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamingMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingMoments::default()
    }

    /// Adds one sample (paper Eq. 3: `M1' = M1 + Δ/n`).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1 as f64;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Adds every sample of a slice.
    ///
    /// Equivalent to — and bit-for-bit identical with — pushing each sample
    /// via [`StreamingMoments::push`] in order; delegates to
    /// [`StreamingMoments::extend_batch`].
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        self.extend_batch(xs);
    }

    /// Blocked batch update: applies the exact [`StreamingMoments::push`]
    /// recurrence to every sample of `xs` in order, but on register-resident
    /// accumulator state that is written back once — the SoA hot path of the
    /// batch sinks. Because the per-sample operation sequence is identical,
    /// the result is **bit-for-bit identical** to sequential `push` (the
    /// same guarantee the distributed shard fold relies on), which the
    /// golden test pins.
    pub fn extend_batch(&mut self, xs: &[f64]) {
        let (mut n, mut mean, mut m2, mut m3, mut m4) =
            (self.n, self.mean, self.m2, self.m3, self.m4);
        for &x in xs {
            let n1 = n;
            n += 1;
            let nf = n as f64;
            let delta = x - mean;
            let delta_n = delta / nf;
            let delta_n2 = delta_n * delta_n;
            let term1 = delta * delta_n * n1 as f64;
            mean += delta_n;
            m4 += term1 * delta_n2 * (nf * nf - 3.0 * nf + 3.0) + 6.0 * delta_n2 * m2
                - 4.0 * delta_n * m3;
            m3 += term1 * delta_n * (nf - 2.0) - 3.0 * delta_n * m2;
            m2 += term1;
        }
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
    }

    /// Merges another accumulator into this one (parallel combination).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;

        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw accumulator state `(n, mean, M2, M3, M4)` — the snapshot side
    /// of the distributed shard-state format. Together with
    /// [`StreamingMoments::from_raw_parts`] this round-trips the accumulator
    /// exactly (the floats are transported bit for bit), so a restored
    /// accumulator merges and reports identically to the original.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.m3, self.m4)
    }

    /// Restores an accumulator from [`StreamingMoments::raw_parts`] state.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, m3: f64, m4: f64) -> Self {
        StreamingMoments {
            n,
            mean,
            m2,
            m3,
            m4,
        }
    }

    /// Sample mean (first raw moment `M1`).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `CM2 = M2 − M1²` (paper Eq. 4).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance `s²` (used by the t-test).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Third central moment `CM3`.
    pub fn central_moment3(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Fourth central moment `CM4` — needed for the variance of centered
    /// squares in second-order TVLA.
    pub fn central_moment4(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m4 / self.n as f64
        }
    }

    /// Skewness (standardized CM3).
    pub fn skewness(&self) -> f64 {
        let v = self.population_variance();
        if v <= 0.0 {
            0.0
        } else {
            self.central_moment3() / v.powf(1.5)
        }
    }

    /// Excess kurtosis (standardized CM4 − 3).
    pub fn kurtosis_excess(&self) -> f64 {
        let v = self.population_variance();
        if v <= 0.0 {
            0.0
        } else {
            self.central_moment4() / (v * v) - 3.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference two-pass implementation (paper Eq. 2 style).
    fn naive(xs: &[f64]) -> (f64, f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let cm = |p: i32| xs.iter().map(|x| (x - mean).powi(p)).sum::<f64>() / n;
        (mean, cm(2), cm(3), cm(4))
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        // Small deterministic LCG so this module needs no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn closed_form_small_vector() {
        // xs = [1,2,3,4]: mean 2.5, population variance 1.25, sample
        // variance 5/3, CM3 = 0 (symmetric), CM4 = (2·1.5⁴ + 2·0.5⁴)/4 =
        // 2.5625, excess kurtosis = 2.5625/1.25² − 3 = −1.36.
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-15);
        assert!((m.population_variance() - 1.25).abs() < 1e-15);
        assert!((m.sample_variance() - 5.0 / 3.0).abs() < 1e-15);
        assert!(m.central_moment3().abs() < 1e-15);
        assert!((m.central_moment4() - 2.5625).abs() < 1e-15);
        assert!(m.skewness().abs() < 1e-15);
        assert!((m.kurtosis_excess() - (-1.36)).abs() < 1e-12);
    }

    #[test]
    fn closed_form_skewed_vector() {
        // xs = [1,1,1,5]: mean 2, CM2 = 3, CM3 = 6, skewness = 6/3^1.5 =
        // 2/√3.
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&[1.0, 1.0, 1.0, 5.0]);
        assert!((m.mean() - 2.0).abs() < 1e-15);
        assert!((m.population_variance() - 3.0).abs() < 1e-15);
        assert!((m.central_moment3() - 6.0).abs() < 1e-12);
        assert!((m.skewness() - 2.0 / 3.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_is_degenerate() {
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&[2.0; 5]);
        assert!((m.mean() - 2.0).abs() < 1e-15);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.skewness(), 0.0);
        assert_eq!(m.kurtosis_excess(), 0.0);
    }

    #[test]
    fn single_push_incremental_mean() {
        // Pushing one value at a time keeps the running mean exact at every
        // step: after k pushes of [4,8,12,...] the mean is 2(k+1).
        let mut m = StreamingMoments::new();
        for k in 1..=10u64 {
            m.push(4.0 * k as f64);
            assert_eq!(m.count(), k);
            assert!((m.mean() - 2.0 * (k + 1) as f64).abs() < 1e-12);
        }
        // Population variance of 4·[1..10] is 16 · (100−1)/12 = 132.
        assert!((m.population_variance() - 132.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_matches_two_pass() {
        let xs = pseudo_random(5000, 42);
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&xs);
        let (mean, cm2, cm3, cm4) = naive(&xs);
        assert!((m.mean() - mean).abs() < 1e-9);
        assert!((m.population_variance() - cm2).abs() < 1e-9);
        assert!((m.central_moment3() - cm3).abs() < 1e-7);
        assert!((m.central_moment4() - cm4).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = pseudo_random(3000, 7);
        let (a, b) = xs.split_at(1234);
        let mut ma = StreamingMoments::new();
        ma.extend_from_slice(a);
        let mut mb = StreamingMoments::new();
        mb.extend_from_slice(b);
        ma.merge(&mb);

        let mut all = StreamingMoments::new();
        all.extend_from_slice(&xs);

        assert_eq!(ma.count(), all.count());
        assert!((ma.mean() - all.mean()).abs() < 1e-10);
        assert!((ma.population_variance() - all.population_variance()).abs() < 1e-9);
        assert!((ma.central_moment4() - all.central_moment4()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = pseudo_random(100, 3);
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&xs);
        let snapshot = m;
        m.merge(&StreamingMoments::new());
        assert_eq!(m, snapshot);

        let mut empty = StreamingMoments::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let mut m = StreamingMoments::new();
        for _ in 0..100 {
            m.push(3.25);
        }
        assert!((m.mean() - 3.25).abs() < 1e-12);
        assert!(m.population_variance().abs() < 1e-12);
        assert!(m.sample_variance().abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&[1.0, 3.0]);
        assert!((m.sample_variance() - 2.0).abs() < 1e-12);
        assert!((m.population_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_counts() {
        let mut m = StreamingMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.sample_variance(), 0.0);
        m.push(5.0);
        assert_eq!(m.sample_variance(), 0.0, "single sample: s² undefined → 0");
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    fn extend_batch_is_bit_identical_to_sequential_push() {
        // Golden guarantee of the SoA hot path: the blocked update must
        // reproduce sequential push *exactly* (all five raw fields, to the
        // bit), at every split of the stream — including resuming a batch on
        // top of existing scalar state.
        let xs = pseudo_random(4096, 99);
        for split in [0usize, 1, 63, 64, 65, 1000, 4096] {
            let mut scalar = StreamingMoments::new();
            for &x in &xs {
                scalar.push(x);
            }
            let mut blocked = StreamingMoments::new();
            for &x in &xs[..split] {
                blocked.push(x);
            }
            blocked.extend_batch(&xs[split..]);
            let (n_a, m1_a, m2_a, m3_a, m4_a) = scalar.raw_parts();
            let (n_b, m1_b, m2_b, m3_b, m4_b) = blocked.raw_parts();
            assert_eq!(n_a, n_b, "split {split}");
            assert_eq!(m1_a.to_bits(), m1_b.to_bits(), "split {split}");
            assert_eq!(m2_a.to_bits(), m2_b.to_bits(), "split {split}");
            assert_eq!(m3_a.to_bits(), m3_b.to_bits(), "split {split}");
            assert_eq!(m4_a.to_bits(), m4_b.to_bits(), "split {split}");
        }
    }

    #[test]
    fn gaussianish_kurtosis_near_zero() {
        // Sum of 12 uniforms ≈ normal; excess kurtosis ≈ -0.1 (Irwin–Hall 12).
        let base = pseudo_random(120_000, 11);
        let xs: Vec<f64> = base.chunks(12).map(|c| c.iter().sum::<f64>()).collect();
        let mut m = StreamingMoments::new();
        m.extend_from_slice(&xs);
        assert!(
            m.kurtosis_excess().abs() < 0.2,
            "kurt {}",
            m.kurtosis_excess()
        );
        assert!(m.skewness().abs() < 0.1, "skew {}", m.skewness());
    }
}
