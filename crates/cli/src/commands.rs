//! Command implementations for `polaris-cli`.

use polaris::config::{ModelKind, PolarisConfig};
use polaris::persist::{load_trained, save_trained};
use polaris::pipeline::{MaskBudget, PolarisPipeline, TrainedPolaris};
use polaris::report::{fmt_f, TextTable};
use polaris_masking::{analyze_overhead, CellLibrary};
use polaris_netlist::{
    generators, parse_bench, parse_netlist, write_bench, write_netlist, GateId, GraphView, Netlist,
};
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{GateLeakage, MultivariateError, WelchResult, TVLA_THRESHOLD};

use crate::{read_file, write_file, CliError, Flags};

/// Loads a netlist, dispatching on extension: `.bench` uses the ISCAS
/// bench-format parser, everything else the structural-Verilog subset.
pub(crate) fn load_netlist(path: &str) -> Result<Netlist, String> {
    let text = read_file(path)?;
    if path.ends_with(".bench") {
        parse_bench(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        parse_netlist(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Serializes a netlist, dispatching on the output extension.
fn render_netlist(path: &str, netlist: &Netlist) -> String {
    if path.ends_with(".bench") {
        write_bench(netlist)
    } else {
        write_netlist(netlist)
    }
}

fn load_model(flags: &Flags) -> Result<TrainedPolaris, String> {
    let path = flags
        .get("model")
        .ok_or("missing --model <bundle> (create one with `polaris-cli train`)")?;
    let text = read_file(path)?;
    load_trained(&text).map_err(|e| format!("{path}: {e}"))
}

pub(crate) fn campaign_from(flags: &Flags, seed_default: u64) -> Result<CampaignConfig, String> {
    let traces: usize = flags.get_parsed("traces", 500)?;
    let seed: u64 = flags.get_parsed("seed", seed_default)?;
    let cycles: usize = flags.get_parsed("cycles", 1)?;
    let mut c = CampaignConfig::new(traces, traces, seed).with_cycles(cycles);
    if flags.has("glitch") {
        c = c.with_glitches();
    }
    Ok(c)
}

/// Parses `--threads N` (0 = all cores, the default) and `--lane-words W`
/// (1/2/4/8 simulator words per gate visit). Both are purely throughput
/// knobs — campaign results are bit-identical at any thread count and any
/// lane width.
pub(crate) fn parallelism_from(flags: &Flags) -> Result<Parallelism, String> {
    let lane_words: usize = flags.get_parsed("lane-words", polaris_sim::DEFAULT_LANE_WORDS)?;
    if !matches!(lane_words, 1 | 2 | 4 | 8) {
        return Err(format!(
            "--lane-words must be 1, 2, 4 or 8, got {lane_words}"
        ));
    }
    Ok(Parallelism::new(flags.get_parsed("threads", 0)?).with_lane_words(lane_words))
}

/// Parses `--confidence P` (the adaptive clean-verdict confidence level).
pub(crate) fn confidence_from(flags: &Flags) -> Result<f64, String> {
    let c: f64 = flags.get_parsed("confidence", 0.95)?;
    if c <= 0.0 || c >= 1.0 {
        return Err(format!("--confidence must lie in (0, 1), got {c}"));
    }
    Ok(c)
}

/// `polaris-cli train`
pub(crate) fn train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["glitch", "adaptive", "help"])?;
    if flags.has("help") {
        println!(
            "train --out model.polaris [--scale N --traces N --seed N --threads N \
             --model adaboost|xgboost|random-forest --glitch --adaptive --confidence P]"
        );
        return Ok(());
    }
    let out = flags.get("out").ok_or("missing --out <file>")?;
    let scale: u32 = flags.get_parsed("scale", 1)?;
    let traces: usize = flags.get_parsed("traces", 300)?;
    let seed: u64 = flags.get_parsed("seed", 7)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    let model = match flags.get("model").unwrap_or("adaboost") {
        "adaboost" => ModelKind::Adaboost,
        "xgboost" => ModelKind::Xgboost,
        "random-forest" => ModelKind::RandomForest,
        other => return Err(format!("unknown model `{other}`")),
    };
    let config = PolarisConfig {
        msize: 30 * scale as usize,
        iterations: 8,
        max_traces: traces,
        adaptive: flags.has("adaptive"),
        confidence: confidence_from(&flags)?,
        model,
        glitch_model: flags.has("glitch"),
        seed,
        threads,
        ..Default::default()
    };
    eprintln!(
        "training {} on the generated ISCAS-85-like suite…",
        model.name()
    );
    let trained = PolarisPipeline::new(config)
        .train(
            &generators::training_suite(scale, seed),
            &PowerModel::default(),
        )
        .map_err(|e| e.to_string())?;
    let (bad, good) = trained.dataset().class_counts();
    eprintln!(
        "cognition dataset: {} samples ({good} good / {bad} bad)",
        good + bad
    );
    let v = trained.validation();
    eprintln!(
        "held-out validation: accuracy {:.3}, F1 {:.3}, AUC {:.3} ({} samples)",
        v.accuracy, v.f1, v.auc, v.samples
    );
    write_file(out, &save_trained(&trained))?;
    eprintln!("model bundle written to {out}");
    Ok(())
}

/// `polaris-cli stats`
pub(crate) fn stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("stats <netlist.v>");
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let s = netlist.stats();
    println!("design:       {}", netlist.name());
    println!("gates total:  {}", s.total);
    println!("logic cells:  {}", s.cells);
    println!("data inputs:  {}", s.data_inputs);
    println!("mask inputs:  {}", s.mask_inputs);
    println!("outputs:      {}", s.outputs);
    println!("flip-flops:   {}", s.flops);
    let levels = netlist.levels().map_err(|e| e.to_string())?;
    println!(
        "logic depth:  {}",
        levels.iter().max().copied().unwrap_or(0)
    );
    let mut t = TextTable::new(vec!["kind".into(), "count".into()]);
    for kind in polaris_netlist::GateKind::ALL {
        let c = s.kind_histogram[kind.ordinal()];
        if c > 0 {
            t.push_row(vec![kind.mnemonic().to_string(), c.to_string()]);
        }
    }
    println!("\n{}", t.render());
    let lib = CellLibrary::default();
    let overhead = analyze_overhead(&netlist, &lib, 64, 1).map_err(|e| e.to_string())?;
    println!("area:  {:.1} um2", overhead.area_um2);
    println!("power: {:.3} mW (simulated activity)", overhead.power_mw);
    println!("delay: {:.3} ns (critical path)", overhead.delay_ns);
    Ok(())
}

/// `polaris-cli assess`
///
/// Exits 8 on a multivariate input error (a `--pair-gates`/`--triple-gates`
/// entry referencing a gate outside the design, repeating a gate within one
/// entry, duplicating an entry, or mismatched dense sample buffers) so
/// scripts can tell a bad gate list from a generic failure. Exits 2 when
/// the top-N and explicit-list selectors of the same order are both given.
pub(crate) fn assess(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["glitch", "adaptive", "pairs-dense", "help"])?;
    if flags.has("help") {
        println!(
            "assess <netlist.v> [--traces N --seed N --cycles N --threads N \
             --lane-words 1|2|4|8 --glitch] \
             [--adaptive --confidence P] [--csv out.csv]\n       \
             [--pairs N | --pair-gates A:B,C:D] [--pairs-dense] [--pairs-csv out.csv]\n       \
             [--triples N | --triple-gates A:B:C,D:E:F] [--triples-csv out.csv]\n\n\
             --pairs N          bivariate sweep over all pairs of the N leakiest cells\n\
             --pair-gates L     bivariate sweep over an explicit gate-index pair list\n\
             --pairs-dense      use the dense two-pass engine (stores every trace;\n                    \
             default is the streaming O(pairs) engine — results are bit-identical)\n\
             --pairs-csv FILE   write the per-pair sweep as CSV (exit code 8 on a bad\n                    \
             pair list)\n\
             --triples N        trivariate sweep over all triples of the N leakiest cells\n\
             --triple-gates L   trivariate sweep over an explicit A:B:C gate-index list\n\
             --triples-csv FILE write the per-triple sweep as CSV (exit code 8 on a bad\n                    \
             triple list)\n\
             --trace-out FILE   record the campaign as a JSONL trace (shard spans,\n                    \
             round checkpoints, stopping audit; summarize it with\n                    \
             `polaris-cli trace summarize FILE`)"
        );
        return Ok(());
    }
    // Conflicting sweep selectors are a usage error (exit 2), matching the
    // missing-command convention: before this check `--pairs N` was silently
    // dropped whenever `--pair-gates` was also given.
    if flags.get("pairs").is_some() && flags.get("pair-gates").is_some() {
        return Err(usage_err(
            "--pairs and --pair-gates are mutually exclusive (top-N sweep or \
             explicit pair list, not both)",
        ));
    }
    if flags.get("triples").is_some() && flags.get("triple-gates").is_some() {
        return Err(usage_err(
            "--triples and --triple-gates are mutually exclusive (top-N sweep or \
             explicit triple list, not both)",
        ));
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let mut campaign = campaign_from(&flags, 7)?;
    let par = parallelism_from(&flags)?;
    let trace_out = crate::trace::TraceOut::from_flags(&flags);
    eprintln!(
        "running fixed-vs-random TVLA ({} traces/class{}, {} worker threads)…",
        campaign.n_fixed,
        if flags.has("adaptive") {
            " budget, adaptive stopping"
        } else {
            ""
        },
        par.threads()
    );
    let leakage = if flags.has("adaptive") {
        let seq = polaris_tvla::SequentialConfig::with_confidence(confidence_from(&flags)?);
        let a = polaris_tvla::assess_adaptive_traced(
            &netlist,
            &PowerModel::default(),
            &campaign,
            par,
            &seq,
            trace_out.recorder(),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "traces used:  {} fixed + {} random of {} budgeted ({:.1}% saved, \
             {} of {} rounds{})",
            a.stats.fixed_traces,
            a.stats.random_traces,
            a.budget_fixed + a.budget_random,
            a.savings_fraction() * 100.0,
            a.stats.rounds,
            a.stats.planned_rounds,
            if a.stats.stopped_early {
                ", stopped early"
            } else {
                ""
            }
        );
        // Pin any follow-up collection (e.g. --pairs) to the stop boundary.
        campaign.n_fixed = a.stats.fixed_traces;
        campaign.n_random = a.stats.random_traces;
        a.leakage
    } else {
        polaris_tvla::assess_parallel_traced(
            &netlist,
            &PowerModel::default(),
            &campaign,
            par,
            trace_out.recorder(),
        )
        .map_err(|e| e.to_string())?
    };
    // The multivariate sweeps below run on separate engines the recorder
    // does not instrument — the trace covers the first-order campaign.
    trace_out.flush()?;
    let s = leakage.summarize(&netlist);
    println!("cells:        {}", s.cells);
    println!("mean |t|:     {:.3}", s.mean_abs_t);
    println!("max |t|:      {:.3}", s.max_abs_t);
    println!("leaky cells:  {} (|t| > {TVLA_THRESHOLD})", s.leaky_cells);
    println!(
        "verdict:      {}",
        if s.max_abs_t > TVLA_THRESHOLD {
            "LEAKY — first-order TVLA failure"
        } else {
            "no first-order leakage detected at this trace count"
        }
    );
    if let Some(csv) = flags.get("csv") {
        write_file(csv, &leakage_csv(&netlist, &leakage))?;
        eprintln!("per-gate results written to {csv}");
    }
    // Optional bivariate (second-order) sweep: `--pair-gates` names explicit
    // gate-index pairs, `--pairs N` sweeps every pair of the N leakiest
    // cells. The default engine streams co-moments in O(pairs) memory; the
    // dense engine (`--pairs-dense`) stores every trace and exists as the
    // bit-identical cross-check.
    let model = PowerModel::default();
    let top_n: usize = flags.get_parsed("pairs", 0)?;
    let pairs: Option<Vec<(u32, u32)>> = match flags.get("pair-gates") {
        Some(spec) => Some(parse_pair_list(spec)?),
        None if top_n > 0 => Some(polaris_tvla::all_pairs(&leakiest_cells(
            &netlist, &leakage, top_n,
        ))),
        None => None,
    };
    if let Some(pairs) = pairs.filter(|p| {
        // An empty selection (e.g. `--pairs 1`, which yields zero pairs)
        // short-circuits before the pair campaign: warn, sweep nothing,
        // write no CSV.
        let empty = p.is_empty();
        if empty {
            eprintln!(
                "warning: the pair selection is empty (fewer than 2 cells selected); \
                 skipping the bivariate sweep, no CSV written"
            );
        }
        !empty
    }) {
        let sweep = if flags.has("pairs-dense") {
            eprintln!(
                "running dense (two-pass) bivariate sweep over {} gate pairs…",
                pairs.len()
            );
            polaris_tvla::validate_pairs(&pairs, netlist.gate_count()).map_err(multivariate_err)?;
            let samples = polaris_sim::campaign::collect_gate_samples_parallel(
                &netlist, &model, &campaign, par,
            )
            .map_err(|e| e.to_string())?;
            let mut out = Vec::with_capacity(pairs.len());
            for &(a, b) in &pairs {
                let g1 = GateId::new(a as usize);
                let g2 = GateId::new(b as usize);
                out.push((
                    g1,
                    g2,
                    polaris_tvla::bivariate_t(&samples, g1, g2).map_err(multivariate_err)?,
                ));
            }
            out.sort_by(|a, b| b.2.t.abs().total_cmp(&a.2.t.abs()));
            out
        } else {
            eprintln!(
                "running streaming bivariate sweep over {} gate pairs…",
                pairs.len()
            );
            polaris_tvla::assess_pairs(&netlist, &model, &campaign, par, &pairs)
                .map_err(multivariate_err)?
        };
        println!("\nworst second-order (bivariate) pairs:");
        for (g1, g2, r) in sweep.iter().take(10) {
            println!(
                "  {:>10} x {:<10} |t2| = {:.2}{}",
                netlist.gate(*g1).name(),
                netlist.gate(*g2).name(),
                r.t.abs(),
                if r.is_leaky(TVLA_THRESHOLD) {
                    "  LEAKY"
                } else {
                    ""
                }
            );
        }
        if let Some(csv) = flags.get("pairs-csv") {
            write_file(csv, &pair_csv(&netlist, &sweep))?;
            eprintln!("per-pair results written to {csv}");
        }
    }
    // Optional trivariate (third-order) sweep, mirroring the pair surface:
    // `--triple-gates` names explicit A:B:C gate-index triples, `--triples N`
    // sweeps every triple of the N leakiest cells. Streaming only — the
    // engine holds O(triples) co-moments, never the traces.
    let top_t: usize = flags.get_parsed("triples", 0)?;
    let triples: Option<Vec<(u32, u32, u32)>> = match flags.get("triple-gates") {
        Some(spec) => Some(parse_triple_list(spec)?),
        None if top_t > 0 => Some(polaris_tvla::all_triples(&leakiest_cells(
            &netlist, &leakage, top_t,
        ))),
        None => None,
    };
    if let Some(triples) = triples.filter(|t| {
        let empty = t.is_empty();
        if empty {
            eprintln!(
                "warning: the triple selection is empty (fewer than 3 cells selected); \
                 skipping the trivariate sweep, no CSV written"
            );
        }
        !empty
    }) {
        eprintln!(
            "running streaming trivariate sweep over {} gate triples…",
            triples.len()
        );
        let sweep = polaris_tvla::assess_triples(&netlist, &model, &campaign, par, &triples)
            .map_err(multivariate_err)?;
        println!("\nworst third-order (trivariate) triples:");
        for (g1, g2, g3, r) in sweep.iter().take(10) {
            println!(
                "  {:>10} x {:^10} x {:<10} |t3| = {:.2}{}",
                netlist.gate(*g1).name(),
                netlist.gate(*g2).name(),
                netlist.gate(*g3).name(),
                r.t.abs(),
                if r.is_leaky(TVLA_THRESHOLD) {
                    "  LEAKY"
                } else {
                    ""
                }
            );
        }
        if let Some(csv) = flags.get("triples-csv") {
            write_file(csv, &triple_csv(&netlist, &sweep))?;
            eprintln!("per-triple results written to {csv}");
        }
    }
    Ok(())
}

/// The `n` cells with the highest first-order `|t|` — the seed set for the
/// `--pairs N` / `--triples N` top-N multivariate sweeps.
fn leakiest_cells(netlist: &Netlist, leakage: &GateLeakage, n: usize) -> Vec<GateId> {
    let mut cells: Vec<_> = netlist
        .cell_ids()
        .into_iter()
        .map(|id| (id, leakage.abs_t(id)))
        .collect();
    cells.sort_by(|a, b| b.1.total_cmp(&a.1));
    cells.into_iter().take(n).map(|(id, _)| id).collect()
}

/// Maps a conflicting-flags mistake to the usage exit code (2), the same
/// code `main` uses for a missing command.
fn usage_err(message: &str) -> CliError {
    CliError {
        code: 2,
        message: message.to_string(),
    }
}

/// Maps a multivariate input error to its documented exit code (8): scripts
/// can tell a bad pair/triple list from the generic failures that exit 1.
pub(crate) fn multivariate_err(e: MultivariateError) -> CliError {
    CliError {
        code: 8,
        message: e.to_string(),
    }
}

/// Parses a `--pair-gates` list: comma-separated `A:B` gate-index pairs.
pub(crate) fn parse_pair_list(spec: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut pairs = Vec::new();
    for entry in spec.split(',') {
        let (a, b) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad pair entry `{entry}` (expected A:B gate indices)"))?;
        let parse = |v: &str| -> Result<u32, String> {
            v.parse().map_err(|_| format!("bad gate index `{v}`"))
        };
        pairs.push((parse(a)?, parse(b)?));
    }
    Ok(pairs)
}

/// Parses a `--triple-gates` list: comma-separated `A:B:C` gate-index
/// triples.
pub(crate) fn parse_triple_list(spec: &str) -> Result<Vec<(u32, u32, u32)>, String> {
    let mut triples = Vec::new();
    for entry in spec.split(',') {
        let fields: Vec<&str> = entry.split(':').collect();
        let [a, b, c] = fields[..] else {
            return Err(format!(
                "bad triple entry `{entry}` (expected A:B:C gate indices)"
            ));
        };
        let parse = |v: &str| -> Result<u32, String> {
            v.parse().map_err(|_| format!("bad gate index `{v}`"))
        };
        triples.push((parse(a)?, parse(b)?, parse(c)?));
    }
    Ok(triples)
}

/// RFC-4180-quotes one CSV field: a value containing `,`, `"`, or a line
/// break is wrapped in double quotes with embedded quotes doubled, so a
/// hostile gate name can never desynchronize the columns CI `cmp`s.
pub(crate) fn csv_field(raw: &str) -> std::borrow::Cow<'_, str> {
    if raw.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", raw.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(raw)
    }
}

/// Renders the per-pair bivariate CSV
/// (`gate_a,name_a,gate_b,name_b,t,leaky`). Shared by `assess --pairs-csv`
/// and `dist merge --csv` on a pairs plan, so the streaming engine, the
/// dense engine, and a distributed fold of the same campaign write
/// byte-identical files — exactly what the CI smoke job diffs.
pub(crate) fn pair_csv(netlist: &Netlist, results: &[(GateId, GateId, WelchResult)]) -> String {
    let mut out = String::from("gate_a,name_a,gate_b,name_b,t,leaky\n");
    for (g1, g2, r) in results {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{}\n",
            g1.index(),
            csv_field(netlist.gate(*g1).name()),
            g2.index(),
            csv_field(netlist.gate(*g2).name()),
            r.t,
            u8::from(r.is_leaky(TVLA_THRESHOLD))
        ));
    }
    out
}

/// Renders the per-triple trivariate CSV
/// (`gate_a,name_a,gate_b,name_b,gate_c,name_c,t,leaky`). Shared by
/// `assess --triples-csv` and `dist merge --csv` on a triples plan, so a
/// single-process streaming sweep and a distributed fold of the same
/// campaign write byte-identical files.
pub(crate) fn triple_csv(
    netlist: &Netlist,
    results: &[(GateId, GateId, GateId, WelchResult)],
) -> String {
    let mut out = String::from("gate_a,name_a,gate_b,name_b,gate_c,name_c,t,leaky\n");
    for (g1, g2, g3, r) in results {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.6},{}\n",
            g1.index(),
            csv_field(netlist.gate(*g1).name()),
            g2.index(),
            csv_field(netlist.gate(*g2).name()),
            g3.index(),
            csv_field(netlist.gate(*g3).name()),
            r.t,
            u8::from(r.is_leaky(TVLA_THRESHOLD))
        ));
    }
    out
}

/// Renders the per-gate leakage CSV (`gate,name,kind,t,leaky`). Shared by
/// `assess --csv` and `dist merge --csv` so a distributed fold and a
/// single-process run of the same campaign write byte-identical files —
/// exactly what the CI smoke job diffs.
pub(crate) fn leakage_csv(netlist: &Netlist, leakage: &GateLeakage) -> String {
    let mut out = String::from("gate,name,kind,t,leaky\n");
    for (id, gate) in netlist.iter() {
        let r = leakage.result(id);
        out.push_str(&format!(
            "{},{},{},{:.6},{}\n",
            id.index(),
            csv_field(gate.name()),
            gate.kind().mnemonic(),
            r.t,
            u8::from(r.is_leaky(TVLA_THRESHOLD))
        ));
    }
    out
}

/// `polaris-cli mask`
pub(crate) fn mask(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["report", "adaptive", "no-adaptive", "help"])?;
    if flags.has("help") {
        println!(
            "mask <netlist.v> --model model.polaris --out masked.v \
             [--budget leaky:0.5|cells:0.5|count:N] [--traces N] [--threads N] \
             [--adaptive|--no-adaptive --confidence P] [--report] \
             [--trace-out trace.jsonl]"
        );
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let mut trained = load_model(&flags)?;
    let threads = flags.get_parsed("threads", trained.config().threads)?;
    trained.set_threads(threads);
    // The bundle persists the training-time adaptive knobs; the flags
    // override in either direction (--no-adaptive forces full-budget
    // reporting campaigns from a bundle trained with --adaptive).
    if flags.has("adaptive") && flags.has("no-adaptive") {
        return Err("--adaptive and --no-adaptive are mutually exclusive".into());
    }
    if flags.has("adaptive") {
        trained.set_adaptive(true, confidence_from(&flags)?);
    } else if flags.has("no-adaptive") {
        trained.set_adaptive(false, trained.config().confidence);
    }
    let traces = flags.get_parsed("traces", trained.config().max_traces)?;
    trained.set_max_traces(traces);
    let out = flags.get("out").ok_or("missing --out <file>")?;
    let budget = parse_budget(flags.get("budget").unwrap_or("leaky:1.0"))?;

    eprintln!("masking `{}`…", netlist.name());
    let trace_out = crate::trace::TraceOut::from_flags(&flags);
    let report = trained
        .mask_design_traced(
            &netlist,
            &PowerModel::default(),
            budget,
            trace_out.recorder(),
        )
        .map_err(|e| e.to_string())?;
    trace_out.flush()?;
    write_file(out, &render_netlist(out, &report.masked.netlist))?;
    eprintln!("protected netlist written to {out}");

    println!("gates masked:     {}", report.masked_gates.len());
    println!("fresh mask bits:  {}", report.masked.added_mask_bits);
    println!(
        "mean |t|:         {:.2} -> {:.2}  ({:.1}% total reduction)",
        report.before.mean_abs_t,
        report.after.mean_abs_t,
        report.reduction_pct()
    );
    println!(
        "leaky cells:      {} -> {}",
        report.before.leaky_cells, report.after.leaky_cells
    );
    println!(
        "mitigation path:  {:.3}s (TVLA-free); reporting TVLA {:.3}s",
        report.mitigation_time_s, report.assessment_time_s
    );
    if trained.config().adaptive {
        println!(
            "reporting traces: {} fixed + {} random per campaign \
             (budget {}/class{})",
            report.campaign_fixed_traces,
            report.campaign_random_traces,
            report.campaign_budget_per_class,
            if report.stopped_early {
                ", stopped early"
            } else {
                ""
            }
        );
    }
    if flags.has("report") {
        let lib = CellLibrary::default();
        let (norm, _) =
            polaris_netlist::transform::decompose(&netlist).map_err(|e| e.to_string())?;
        let base = analyze_overhead(&norm, &lib, 64, 1).map_err(|e| e.to_string())?;
        let cost =
            analyze_overhead(&report.masked.netlist, &lib, 64, 1).map_err(|e| e.to_string())?;
        let r = cost.ratio_to(&base);
        let mut t = TextTable::new(
            ["metric", "original", "masked", "x original"]
                .map(String::from)
                .to_vec(),
        );
        t.push_row(vec![
            "area (um2)".into(),
            fmt_f(base.area_um2, 1),
            fmt_f(cost.area_um2, 1),
            fmt_f(r.area_um2, 2),
        ]);
        t.push_row(vec![
            "power (mW)".into(),
            fmt_f(base.power_mw, 3),
            fmt_f(cost.power_mw, 3),
            fmt_f(r.power_mw, 2),
        ]);
        t.push_row(vec![
            "delay (ns)".into(),
            fmt_f(base.delay_ns, 3),
            fmt_f(cost.delay_ns, 3),
            fmt_f(r.delay_ns, 2),
        ]);
        println!("\n{}", t.render());
    }
    Ok(())
}

fn parse_budget(spec: &str) -> Result<MaskBudget, String> {
    let (kind, value) = spec.split_once(':').ok_or_else(|| {
        format!("budget `{spec}` should look like leaky:0.5 / cells:0.5 / count:40")
    })?;
    match kind {
        "leaky" => Ok(MaskBudget::LeakyFraction(
            value
                .parse()
                .map_err(|_| format!("malformed fraction `{value}`"))?,
        )),
        "cells" => Ok(MaskBudget::CellFraction(
            value
                .parse()
                .map_err(|_| format!("malformed fraction `{value}`"))?,
        )),
        "count" => Ok(MaskBudget::Count(
            value
                .parse()
                .map_err(|_| format!("malformed count `{value}`"))?,
        )),
        other => Err(format!("unknown budget kind `{other}`")),
    }
}

/// `polaris-cli gen`
pub(crate) fn gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!(
            "gen <design-name> --out file.bench|file.v [--scale N --seed N]\n\n\
             Writes one of the generated benchmark designs to disk (the output\n\
             extension picks the format). Known names: the ISCAS-85-like training\n\
             suite (c17 and the `iscas_like` names, e.g. c432/c499/c880/c1908) and\n\
             the evaluation designs ({}).",
            generators::EVALUATION_NAMES.join(", ")
        );
        return Ok(());
    }
    let name = flags.positional(0, "design name")?;
    let out = flags.get("out").ok_or("missing --out <file>")?;
    let scale: u32 = flags.get_parsed("scale", 1)?;
    let seed: u64 = flags.get_parsed("seed", 7)?;
    let netlist = generators::by_name(name, scale, seed)
        .or_else(|| generators::iscas_like(name, scale, seed))
        .ok_or_else(|| format!("unknown design `{name}` (see `gen --help`)"))?;
    write_file(out, &render_netlist(out, &netlist))?;
    eprintln!(
        "{name} (scale {scale}, seed {seed}): {} gates written to {out}",
        netlist.gate_count()
    );
    Ok(())
}

/// `polaris-cli rules`
pub(crate) fn rules(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("rules --model model.polaris");
        return Ok(());
    }
    let trained = load_model(&flags)?;
    if trained.rules().is_empty() {
        println!("(no rules were mined at training time)");
        return Ok(());
    }
    for (i, rule) in trained.rules().rules().iter().enumerate() {
        println!(
            "Rule {}: {}",
            (b'A' + (i % 26) as u8) as char,
            rule.render()
        );
    }
    Ok(())
}

/// `polaris-cli explain`
pub(crate) fn explain(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("explain <netlist.v> --model model.polaris --gate <instance-name>");
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let trained = load_model(&flags)?;
    let gate_name = flags.get("gate").ok_or("missing --gate <instance-name>")?;

    let (norm, map) = polaris_netlist::transform::decompose(&netlist).map_err(|e| e.to_string())?;
    let original_id = netlist
        .iter()
        .find(|(_, g)| g.name() == gate_name)
        .map(|(id, _)| id)
        .ok_or_else(|| format!("no gate named `{gate_name}` in {}", netlist.name()))?;
    let id = map
        .representative(original_id)
        .ok_or_else(|| format!("gate `{gate_name}` vanished during normalization"))?;
    if !norm.gate(id).kind().is_combinational_cell() || norm.gate(id).fanin().len() > 2 {
        return Err(format!("gate `{gate_name}` is not a maskable cell"));
    }

    let view = GraphView::new(&norm);
    let levels = norm.levels().map_err(|e| e.to_string())?;
    let x = trained.extractor().extract(&norm, &view, &levels, id);
    let proba = polaris_ml::Classifier::predict_proba(trained.model(), &x);
    println!(
        "gate `{gate_name}` ({}): P(good masking candidate) = {proba:.3}\n",
        norm.gate(id).kind()
    );
    let w = trained.explainer().waterfall(trained.model(), &x);
    println!("{}", w.render(10, 28));
    if let Some(action) = trained.rules().decide(&x) {
        println!("matching mined rule says: {action}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::GateKind;

    #[test]
    fn csv_field_passes_clean_names_through_unquoted() {
        assert_eq!(csv_field("g42"), "g42");
        assert_eq!(csv_field("u_core/xor_1"), "u_core/xor_1");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn csv_field_quotes_separators_and_doubles_quotes() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
        assert_eq!(csv_field("cr\rname"), "\"cr\rname\"");
    }

    /// A netlist whose cell names contain `,` and `"` must still produce
    /// CSVs with a fixed column count on every row (the bugfix: names used
    /// to be interpolated raw, so one hostile name desynchronized the file
    /// CI `cmp`s).
    fn hostile_netlist() -> (Netlist, GateId, GateId, GateId) {
        let mut n = Netlist::new("hostile");
        let a = n.add_input("in_a");
        let b = n.add_input("in_b");
        let g1 = n.add_gate(GateKind::And, "and,comma", &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Xor, "xor\"quote", &[a, g1]).unwrap();
        let g3 = n.add_gate(GateKind::Or, "or_clean", &[g1, g2]).unwrap();
        (n, g1, g2, g3)
    }

    /// Counts the comma-separated fields of one CSV record, honouring
    /// RFC-4180 quoting.
    fn field_count(line: &str) -> usize {
        let (mut fields, mut quoted) = (1, false);
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted && chars.peek() == Some(&'"') => {
                    chars.next();
                }
                '"' => quoted = !quoted,
                ',' if !quoted => fields += 1,
                _ => {}
            }
        }
        fields
    }

    #[test]
    fn pair_csv_keeps_column_structure_under_hostile_names() {
        let (n, g1, g2, _) = hostile_netlist();
        let r = WelchResult { t: 1.25, dof: 10.0 };
        let csv = pair_csv(&n, &[(g1, g2, r)]);
        for line in csv.lines() {
            assert_eq!(field_count(line), 6, "bad record: {line}");
        }
        assert!(csv.contains("\"and,comma\""));
        assert!(csv.contains("\"xor\"\"quote\""));
    }

    #[test]
    fn triple_csv_keeps_column_structure_under_hostile_names() {
        let (n, g1, g2, g3) = hostile_netlist();
        let r = WelchResult { t: -7.5, dof: 99.0 };
        let csv = triple_csv(&n, &[(g1, g2, g3, r)]);
        assert!(csv.starts_with("gate_a,name_a,gate_b,name_b,gate_c,name_c,t,leaky\n"));
        for line in csv.lines() {
            assert_eq!(field_count(line), 8, "bad record: {line}");
        }
        assert!(csv.contains(",or_clean,"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",-7.500000,1"));
    }

    #[test]
    fn parse_triple_list_accepts_and_rejects() {
        assert_eq!(
            parse_triple_list("0:1:2,7:8:9").unwrap(),
            vec![(0, 1, 2), (7, 8, 9)]
        );
        assert!(parse_triple_list("0:1").is_err());
        assert!(parse_triple_list("0:1:2:3").is_err());
        assert!(parse_triple_list("0:x:2").is_err());
        assert!(parse_triple_list("").is_err());
    }
}
