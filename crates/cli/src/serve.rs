//! `polaris-cli serve` / `worker` / `submit` — the live assessment service.
//!
//! `serve` runs the daemon: it listens on a TCP socket, accepts design
//! submissions, leases shard ranges of each submission's campaign grid to
//! registered live workers, folds the returned `PLRSHARD` parts in
//! canonical grid order, and replies with the per-gate leakage CSV — built
//! from exactly the same fold as a single-process `assess` run, so the two
//! CSVs compare equal with `cmp` at any worker count, any lease schedule,
//! and through worker crashes. `worker` attaches a stateless executor to a
//! running daemon; `submit` ships a design and waits for the result.
//!
//! The protocol is the line-oriented framing of [`polaris_dist::Message`];
//! the scheduling, replay, adaptive-checkpoint, and caching logic all live
//! in [`polaris_dist::Coordinator`] — this module is only sockets and
//! threads around them.
//!
//! Worker loss is detected by heartbeat: the daemon reads each worker
//! socket with a timeout of twice the granted heartbeat budget; a socket
//! that stays silent past it (or drops) has its leases re-issued to the
//! surviving fleet. Workers `Ping` while a lease executes, so long
//! simulations do not look like death.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use polaris_dist::{
    Coordinator, DesignFormat, JobResult, JobStatus, Message, ProtoError, ResultOrigin, Submission,
    SubmitOutcome, TaskSpec, DEFAULT_HEARTBEAT_MS, PROTO_VERSION,
};
use polaris_sim::Parallelism;

use crate::commands::{confidence_from, leakage_csv, parallelism_from};
use crate::trace::TraceOut;
use crate::{read_file, write_file, write_file_bytes, CliError, Flags};

const SERVE_USAGE: &str = "\
serve [--listen HOST:PORT] [--heartbeat-ms N] [--port-file PATH]
      [--trace-out trace.jsonl]

Runs the live assessment daemon. Workers attach with `polaris-cli worker`,
clients submit designs with `polaris-cli submit`. The daemon prints
`serving on HOST:PORT` once the socket is bound (and writes the address to
--port-file, if given, for scripts that listen on port 0); it exits after a
client sends a shutdown request, printing per-tenant accounting.

Results are byte-identical to single-process `assess` runs: identical
resubmissions are served from a fingerprint cache without simulating,
and leases lost to dead workers are re-issued without changing a bit of
the output.";

const WORKER_USAGE: &str = "\
worker --connect HOST:PORT [--name ID --threads N --lane-words W]

Attaches a live worker to a running serve daemon and executes leased shard
ranges until the daemon drains. --threads/--lane-words are throughput knobs
only; results are bit-identical at any setting.";

const SUBMIT_USAGE: &str = "\
submit <netlist> --connect HOST:PORT [--tenant ID --traces N --seed N
       --cycles N --glitch --adaptive --confidence P] [--csv out.csv]
submit --shutdown --connect HOST:PORT

Submits a design (.bench or structural Verilog) to a running serve daemon
and waits for the merged assessment. The per-gate leakage CSV goes to
--csv, or stdout without it. --shutdown asks the daemon to drain and exit
instead of submitting.

exit codes: the daemon reports failures with the `dist` failure-class
codes (1 execution/transport, 3 truncated, 4 malformed, 5 protocol or
format version skew, 6 checksum, 7 plan/fingerprint mismatch, 8 gate
list); the client exits with the reported code.";

fn io_err(e: std::io::Error) -> CliError {
    CliError {
        code: 1,
        message: format!("transport: {e}"),
    }
}

fn proto_err(e: ProtoError) -> CliError {
    CliError {
        code: e.class(),
        message: e.to_string(),
    }
}

/// State shared between the accept loop and every connection thread. The
/// condvar signals job settlement (and shutdown) to waiting submit
/// handlers; it pairs with the coordinator mutex.
struct Shared {
    coordinator: Mutex<Coordinator>,
    settled: Condvar,
    shutdown: AtomicBool,
    heartbeat_ms: u64,
}

/// `polaris-cli serve`
pub(crate) fn serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["help"]).map_err(CliError::from)?;
    if flags.has("help") {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    let listen = flags.get("listen").unwrap_or("127.0.0.1:0");
    let heartbeat_ms: u64 = flags
        .get_parsed("heartbeat-ms", DEFAULT_HEARTBEAT_MS)
        .map_err(CliError::from)?;
    if heartbeat_ms == 0 {
        return Err(CliError::from(
            "--heartbeat-ms must be positive".to_string(),
        ));
    }
    let trace = TraceOut::from_flags(&flags);
    let listener = TcpListener::bind(listen)
        .map_err(|e| CliError::from(format!("cannot listen on {listen}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::from(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::from(e.to_string()))?;
    println!("serving on {addr}");
    std::io::stdout().flush().ok();
    if let Some(path) = flags.get("port-file") {
        write_file(path, &format!("{addr}\n")).map_err(CliError::from)?;
    }

    let shared = Arc::new(Shared {
        coordinator: Mutex::new(Coordinator::new(trace.recorder())),
        settled: Condvar::new(),
        shutdown: AtomicBool::new(false),
        heartbeat_ms,
    });
    let mut handles = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || {
                    if let Err(e) = handle_connection(stream, &shared) {
                        eprintln!("connection: {e}");
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("accept: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }

    let coordinator = shared.coordinator.lock().unwrap();
    for (name, stats) in coordinator.tenant_summary() {
        eprintln!(
            "tenant {name}: {} submissions ({} cached, {} coalesced), \
             {} shards / {} traces simulated, {} failed",
            stats.submissions,
            stats.cache_hits,
            stats.coalesced,
            stats.shards,
            stats.traces,
            stats.failed
        );
    }
    for (name, completed, lost) in coordinator.worker_summary() {
        eprintln!(
            "worker {name}: {completed} leases completed{}",
            if lost { " (lost)" } else { "" }
        );
    }
    drop(coordinator);
    trace.flush().map_err(CliError::from)?;
    Ok(())
}

/// Dispatches one accepted connection by its opening message: `Hello`
/// starts a worker session, `Submit` a client session, `Shutdown` drains
/// the daemon.
fn handle_connection(stream: TcpStream, shared: &Shared) -> Result<(), String> {
    let e = |e: std::io::Error| e.to_string();
    // Bound the first read so a silent connection cannot wedge shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(10_000)))
        .map_err(e)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(e)?);
    let mut writer = stream;
    match Message::read_from(&mut reader) {
        Ok(Some(Message::Hello { version, name })) => {
            if version != PROTO_VERSION {
                let _ = Message::Error {
                    code: 5,
                    message: format!(
                        "worker speaks protocol v{version}, this daemon speaks v{PROTO_VERSION}"
                    ),
                }
                .write_to(&mut writer);
                return Ok(());
            }
            serve_worker(&mut reader, &mut writer, shared, &name)
        }
        Ok(Some(Message::Submit { version, blob })) => {
            let reply = client_reply(shared, version, &blob);
            reply.write_to(&mut writer).map_err(e)
        }
        Ok(Some(Message::Shutdown)) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.settled.notify_all();
            Ok(())
        }
        Ok(Some(_)) => {
            let _ = Message::Error {
                code: 4,
                message: "expected HELLO, SUBMIT, or SHUTDOWN".to_string(),
            }
            .write_to(&mut writer);
            Ok(())
        }
        Ok(None) => Ok(()),
        Err(err) => {
            let _ = Message::Error {
                code: err.class(),
                message: err.to_string(),
            }
            .write_to(&mut writer);
            Ok(())
        }
    }
}

/// The daemon side of one worker connection: a pull loop of `Next` →
/// `Task`/`Idle`, with `Done`/`Fail` settling leases. Leaving the loop for
/// any reason — heartbeat timeout, EOF, protocol violation, drain — marks
/// the worker lost so its outstanding leases are re-issued.
fn serve_worker(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared,
    name: &str,
) -> Result<(), String> {
    let worker = shared.coordinator.lock().unwrap().register_worker(name);
    Message::Welcome {
        worker,
        heartbeat_ms: shared.heartbeat_ms,
    }
    .write_to(writer)
    .map_err(|e| e.to_string())?;
    // The read timeout is the loss detector: workers promise a message at
    // least every heartbeat budget; grant 2x slack for scheduling jitter.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(
            shared.heartbeat_ms.saturating_mul(2),
        )))
        .map_err(|e| e.to_string())?;
    loop {
        match Message::read_from(reader) {
            Ok(Some(Message::Next)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = Message::Shutdown.write_to(writer);
                    break;
                }
                let task = shared.coordinator.lock().unwrap().next_task(worker);
                let reply = match task {
                    Some((lease, spec)) => Message::Task {
                        task: lease,
                        blob: spec.render(),
                    },
                    None => Message::Idle,
                };
                reply.write_to(writer).map_err(|e| e.to_string())?;
            }
            Ok(Some(Message::Ping)) => {}
            Ok(Some(Message::Done { task, blob })) => {
                let outcome = shared
                    .coordinator
                    .lock()
                    .unwrap()
                    .complete_task(task, &blob);
                if let Err(err) = outcome {
                    eprintln!("worker {name}: part for lease {task} rejected: {err}");
                }
                shared.settled.notify_all();
            }
            Ok(Some(Message::Fail { task, reason })) => {
                shared.coordinator.lock().unwrap().fail_task(task, &reason);
                eprintln!("worker {name}: lease {task} failed: {reason}");
                shared.settled.notify_all();
            }
            // Protocol violation, clean EOF, heartbeat timeout, or transport
            // failure: in every case the worker is no longer usable.
            Ok(Some(_)) | Ok(None) | Err(_) => break,
        }
    }
    shared.coordinator.lock().unwrap().worker_lost(worker);
    shared.settled.notify_all();
    Ok(())
}

/// The daemon side of one client submission: parse, submit, wait for the
/// job to settle, and build the one reply message.
fn client_reply(shared: &Shared, version: u16, blob: &[u8]) -> Message {
    if version != PROTO_VERSION {
        return Message::Error {
            code: 5,
            message: format!(
                "client speaks protocol v{version}, this daemon speaks v{PROTO_VERSION}"
            ),
        };
    }
    let sub = match Submission::parse(blob) {
        Ok(sub) => sub,
        Err(e) => {
            return Message::Error {
                code: e.exit_class(),
                message: e.to_string(),
            }
        }
    };
    let outcome = shared.coordinator.lock().unwrap().submit(&sub);
    match outcome {
        Err(e) => Message::Error {
            code: e.exit_class(),
            message: e.to_string(),
        },
        Ok(SubmitOutcome::Cached(result)) => result_message(&result, ResultOrigin::Cached),
        Ok(SubmitOutcome::Queued { job, coalesced }) => {
            let origin = if coalesced {
                ResultOrigin::Coalesced
            } else {
                ResultOrigin::Computed
            };
            let mut guard = shared.coordinator.lock().unwrap();
            loop {
                match guard.job_status(job) {
                    JobStatus::Done(result) => break result_message(&result, origin),
                    JobStatus::Failed { code, message } => break Message::Error { code, message },
                    JobStatus::Unknown => {
                        break Message::Error {
                            code: 1,
                            message: "job vanished".to_string(),
                        }
                    }
                    JobStatus::Running => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break Message::Error {
                                code: 1,
                                message: "service shutting down before the job settled".to_string(),
                            };
                        }
                        let (g, _) = shared
                            .settled
                            .wait_timeout(guard, Duration::from_millis(100))
                            .unwrap();
                        guard = g;
                    }
                }
            }
        }
    }
}

/// Builds the `Result` reply: the same per-gate leakage CSV `assess --csv`
/// writes, from the same canonical fold — `cmp`-equal by construction.
fn result_message(result: &JobResult, origin: ResultOrigin) -> Message {
    let csv = leakage_csv(&result.netlist, &result.sink.leakage());
    Message::Result {
        origin,
        fixed: result.stats.fixed_traces as u64,
        random: result.stats.random_traces as u64,
        rounds: result.stats.rounds as u64,
        stopped_early: result.stats.stopped_early,
        blob: csv.into_bytes(),
    }
}

/// `polaris-cli worker`
pub(crate) fn worker(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["help"]).map_err(CliError::from)?;
    if flags.has("help") {
        println!("{WORKER_USAGE}");
        return Ok(());
    }
    let connect = flags
        .get("connect")
        .ok_or_else(|| CliError::from("missing --connect HOST:PORT".to_string()))?;
    let name = flags.get("name").unwrap_or("worker");
    let parallelism = parallelism_from(&flags).map_err(CliError::from)?;
    let stream = TcpStream::connect(connect)
        .map_err(|e| CliError::from(format!("cannot connect to {connect}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::from(e.to_string()))?,
    );
    let mut writer = stream;
    Message::Hello {
        version: PROTO_VERSION,
        name: name.to_string(),
    }
    .write_to(&mut writer)
    .map_err(io_err)?;
    let heartbeat_ms = match Message::read_from(&mut reader).map_err(proto_err)? {
        Some(Message::Welcome {
            worker,
            heartbeat_ms,
        }) => {
            eprintln!("worker {name}: registered as #{worker}");
            heartbeat_ms.max(100)
        }
        Some(Message::Error { code, message }) => return Err(CliError { code, message }),
        _ => return Err(CliError::from("daemon did not welcome us".to_string())),
    };

    let mut completed = 0u64;
    loop {
        Message::Next.write_to(&mut writer).map_err(io_err)?;
        match Message::read_from(&mut reader).map_err(proto_err)? {
            Some(Message::Task { task, blob }) => {
                match execute_leased(&blob, parallelism, heartbeat_ms, &mut writer)? {
                    Ok(part) => {
                        completed += 1;
                        Message::Done { task, blob: part }
                            .write_to(&mut writer)
                            .map_err(io_err)?;
                    }
                    Err(reason) => {
                        eprintln!("worker {name}: lease {task}: {reason}");
                        Message::Fail { task, reason }
                            .write_to(&mut writer)
                            .map_err(io_err)?;
                    }
                }
            }
            Some(Message::Idle) => {
                std::thread::sleep(Duration::from_millis((heartbeat_ms / 4).clamp(50, 500)));
            }
            Some(Message::Shutdown) | None => break,
            Some(_) => return Err(CliError::from("unexpected daemon message".to_string())),
        }
    }
    eprintln!("worker {name}: {completed} leases completed, daemon drained");
    Ok(())
}

/// Executes one leased task on a helper thread while the calling thread
/// keeps the heartbeat alive with `Ping`s — a long shard range must not
/// look like a dead worker. The inner `Result` is the lease outcome
/// (reported as `Done`/`Fail`); the outer one is transport failure.
fn execute_leased(
    blob: &[u8],
    parallelism: Parallelism,
    heartbeat_ms: u64,
    writer: &mut TcpStream,
) -> Result<Result<Vec<u8>, String>, CliError> {
    let spec = match TaskSpec::parse(blob) {
        Ok(spec) => spec,
        Err(e) => return Ok(Err(e.to_string())),
    };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let _ = tx.send(spec.execute(parallelism).map_err(|e| e.to_string()));
        });
        loop {
            match rx.recv_timeout(Duration::from_millis((heartbeat_ms / 2).max(50))) {
                Ok(outcome) => break Ok(outcome),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    Message::Ping.write_to(writer).map_err(io_err)?;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    break Ok(Err("executor thread died".to_string()))
                }
            }
        }
    })
}

/// `polaris-cli submit`
pub(crate) fn submit(args: &[String]) -> Result<(), CliError> {
    let flags =
        Flags::parse(args, &["glitch", "adaptive", "shutdown", "help"]).map_err(CliError::from)?;
    if flags.has("help") {
        println!("{SUBMIT_USAGE}");
        return Ok(());
    }
    let connect = flags
        .get("connect")
        .ok_or_else(|| CliError::from("missing --connect HOST:PORT".to_string()))?;
    let stream = TcpStream::connect(connect)
        .map_err(|e| CliError::from(format!("cannot connect to {connect}: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::from(e.to_string()))?,
    );
    let mut writer = stream;

    if flags.has("shutdown") {
        Message::Shutdown.write_to(&mut writer).map_err(io_err)?;
        eprintln!("shutdown requested");
        return Ok(());
    }

    let path = flags
        .positional(0, "netlist path")
        .map_err(CliError::from)?;
    let source = read_file(path).map_err(CliError::from)?;
    let format = if path.ends_with(".bench") {
        DesignFormat::Bench
    } else {
        DesignFormat::Verilog
    };
    let sub = Submission {
        tenant: flags.get("tenant").unwrap_or("default").to_string(),
        name: design_token(path),
        format,
        traces: flags.get_parsed("traces", 500).map_err(CliError::from)?,
        seed: flags.get_parsed("seed", 7).map_err(CliError::from)?,
        cycles: flags.get_parsed("cycles", 1).map_err(CliError::from)?,
        glitch: flags.has("glitch"),
        adaptive: flags.has("adaptive"),
        confidence: confidence_from(&flags).map_err(CliError::from)?,
        source,
    };
    // Validate client-side too, so a bad tenant token fails fast with the
    // same failure class the daemon would report.
    if let Err(e) = sub.validate() {
        return Err(CliError {
            code: e.exit_class(),
            message: e.to_string(),
        });
    }
    // Hidden test hook: --proto-version forges the announced version so CI
    // can check the daemon's version-skew rejection path.
    let version: u16 = flags
        .get_parsed("proto-version", PROTO_VERSION)
        .map_err(CliError::from)?;
    Message::Submit {
        version,
        blob: sub.render(),
    }
    .write_to(&mut writer)
    .map_err(io_err)?;

    match Message::read_from(&mut reader).map_err(proto_err)? {
        Some(Message::Result {
            origin,
            fixed,
            random,
            rounds,
            stopped_early,
            blob,
        }) => {
            eprintln!(
                "result: {} ({fixed} fixed + {random} random traces, {rounds} round{}{})",
                origin.name(),
                if rounds == 1 { "" } else { "s" },
                if stopped_early { ", stopped early" } else { "" }
            );
            match flags.get("csv") {
                Some(csv) => {
                    write_file_bytes(csv, &blob).map_err(CliError::from)?;
                    eprintln!("per-gate leakage written to {csv}");
                }
                None => {
                    std::io::stdout()
                        .write_all(&blob)
                        .map_err(|e| CliError::from(e.to_string()))?;
                }
            }
            Ok(())
        }
        Some(Message::Error { code, message }) => Err(CliError { code, message }),
        _ => Err(CliError::from(
            "daemon closed the connection without a result".to_string(),
        )),
    }
}

/// Derives a submission display name from the netlist path: the file stem,
/// restricted to the token alphabet.
fn design_token(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    let token: String = stem
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        .take(64)
        .collect();
    if token.is_empty() {
        "design".to_string()
    } else {
        token
    }
}
