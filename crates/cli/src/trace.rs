//! `polaris-cli trace` — offline analysis of the JSONL traces the
//! recording commands write via `--trace-out`, plus the shared
//! [`TraceOut`] helper those commands use to wire a recorder in.
//!
//! ```text
//! polaris-cli trace summarize <trace.jsonl>
//! ```
//!
//! `summarize` parses a trace with the bounded JSONL parser (hostile input
//! never panics) and prints the per-phase time breakdown, per-worker
//! throughput, the worker-utilization histogram, the stopping-rule
//! checkpoint table, and the final per-gate stopping audit. A file the
//! parser rejects exits with code [`EXIT_MALFORMED_TRACE`] so smoke
//! scripts can tell a corrupt trace from a generic failure.

use std::sync::Arc;

use polaris::report::{fmt_f, TextTable};
use polaris_obs::{
    JsonlRecorder, NullRecorder, Recorder, SharedRecorder, TraceError, TraceSummary,
};

use crate::{read_file, write_file, CliError, Flags};

/// Exit code of `trace summarize` on a trace the parser rejects —
/// distinct from the generic 1 so CI smoke jobs can gate on it.
pub(crate) const EXIT_MALFORMED_TRACE: u8 = 9;

const TRACE_USAGE: &str = "\
trace summarize <trace.jsonl>

Summarizes a JSONL trace written by `assess`/`mask`/`fleet`/`dist work`/
`dist merge` with --trace-out FILE: per-phase time breakdown, per-worker
throughput, utilization histogram, round checkpoints, and the final
adaptive-stopping audit table.

exit codes:
  1  generic failure (I/O, usage of other commands)
  2  usage error
  9  malformed trace file (rejected by the bounded JSONL parser)";

/// The `--trace-out FILE` wiring shared by every recording command: holds
/// a buffered [`JsonlRecorder`] when the flag is present, hands out
/// recorder references in both the `Arc` and `&dyn` shapes the library
/// APIs take, and flushes the buffer to the file once the command's
/// campaigns are done. Without the flag every accessor degrades to the
/// zero-overhead null recorder.
pub(crate) struct TraceOut {
    path: Option<String>,
    jsonl: Option<Arc<JsonlRecorder>>,
}

impl TraceOut {
    /// Reads `--trace-out` from the parsed flags.
    pub(crate) fn from_flags(flags: &Flags) -> Self {
        let path = flags.get("trace-out").map(str::to_string);
        let jsonl = path.as_ref().map(|_| Arc::new(JsonlRecorder::new()));
        TraceOut { path, jsonl }
    }

    /// The recorder as a [`SharedRecorder`], for APIs that store it.
    pub(crate) fn recorder(&self) -> SharedRecorder {
        match &self.jsonl {
            Some(j) => j.clone(),
            None => polaris_obs::shared_null(),
        }
    }

    /// The recorder as a plain borrow, for engine-level APIs.
    pub(crate) fn dyn_recorder(&self) -> &dyn Recorder {
        match &self.jsonl {
            Some(j) => j.as_ref(),
            None => &NullRecorder,
        }
    }

    /// Writes the buffered events to the `--trace-out` file (no-op when
    /// the flag was absent).
    pub(crate) fn flush(&self) -> Result<(), String> {
        if let (Some(path), Some(j)) = (&self.path, &self.jsonl) {
            let jsonl = j.to_jsonl();
            write_file(path, &jsonl)?;
            eprintln!("trace ({} events) written to {path}", jsonl.lines().count());
        }
        Ok(())
    }
}

/// `polaris-cli trace` dispatcher.
pub(crate) fn trace(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError {
            code: 2,
            message: format!("missing trace subcommand\n{TRACE_USAGE}"),
        });
    };
    let rest = &args[1..];
    match sub.as_str() {
        "summarize" => summarize(rest),
        "--help" | "-h" | "help" => {
            println!("{TRACE_USAGE}");
            Ok(())
        }
        other => Err(CliError::from(format!(
            "unknown trace subcommand `{other}`\n{TRACE_USAGE}"
        ))),
    }
}

/// Maps a parse failure to the documented malformed-trace exit code.
fn trace_err(e: TraceError) -> CliError {
    CliError {
        code: EXIT_MALFORMED_TRACE,
        message: format!("malformed trace: {e}"),
    }
}

/// `polaris-cli trace summarize`
fn summarize(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{TRACE_USAGE}");
        return Ok(());
    }
    let path = flags.positional(0, "trace file")?;
    let text = read_file(path)?;
    let events = polaris_obs::parse_trace(&text).map_err(trace_err)?;
    let summary = TraceSummary::build(&events);
    print!("{}", render_summary(&summary));
    Ok(())
}

/// Milliseconds with three decimals from a nanosecond count.
fn ms(ns: u64) -> String {
    fmt_f(ns as f64 / 1e6, 3)
}

/// Renders the full summary report. Pure so the hostile-input and
/// formatting tests can assert on it without a process boundary.
fn render_summary(s: &TraceSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("events: {}\n", s.events));
    if s.events == 0 {
        out.push_str("(empty trace — nothing to summarize)\n");
        return out;
    }
    let counts = s
        .kind_counts
        .iter()
        .map(|(k, c)| format!("{k} x{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("kinds:  {counts}\n"));

    // Per-phase breakdown over every shard span / fleet work item / fold.
    let phases_ns = s.phases.phases_ns();
    if phases_ns > 0 {
        let mut t = TextTable::new(
            ["phase", "time (ms)", "% of phases"]
                .map(String::from)
                .to_vec(),
        );
        let pct = |ns: u64| fmt_f(ns as f64 * 100.0 / phases_ns as f64, 1);
        for (name, ns) in [
            ("rng", s.phases.rng_ns),
            ("simulate", s.phases.sim_ns),
            ("accumulate", s.phases.acc_ns),
            ("overhead", s.phases.overhead_ns()),
            ("fold", s.phases.fold_ns),
            ("checkpoint", s.phases.checkpoint_ns),
        ] {
            t.push_row(vec![name.to_string(), ms(ns), pct(ns)]);
        }
        t.push_row(vec!["total".to_string(), ms(phases_ns), fmt_f(100.0, 1)]);
        out.push_str(&format!("\nphase breakdown:\n{}", t.render()));
        if let Some(coverage) = s.phase_coverage() {
            out.push_str(&format!(
                "phase coverage: {} of {} ms campaign wall time ({}%)\n",
                ms(phases_ns),
                ms(s.campaign_wall_ns.unwrap_or(0)),
                fmt_f(coverage * 100.0, 1)
            ));
        }
    }

    // Per-worker throughput over the spans each thread recorded.
    if !s.workers.is_empty() {
        let mut t = TextTable::new(
            ["thread", "shards", "busy (ms)", "shards/sec", "jobs"]
                .map(String::from)
                .to_vec(),
        );
        for w in &s.workers {
            let jobs = if w.jobs.is_empty() {
                "-".to_string()
            } else {
                w.jobs
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            t.push_row(vec![
                w.thread.to_string(),
                w.shards.to_string(),
                ms(w.busy_ns),
                fmt_f(w.shards_per_sec(), 0),
                jobs,
            ]);
        }
        out.push_str(&format!("\nworkers:\n{}", t.render()));
    }

    // Fleet worker-utilization histogram (10% buckets of busy/wall).
    if let Some(histogram) = &s.utilization {
        out.push_str("\nworker utilization (busy/wall, 10% buckets):\n");
        let peak = histogram.iter().copied().max().unwrap_or(0).max(1);
        for (i, count) in histogram.iter().enumerate() {
            let bar = "#".repeat((count * 40 / peak) as usize);
            out.push_str(&format!(
                "  {:>3}-{:>3}% {:>4} {bar}\n",
                i * 10,
                (i + 1) * 10,
                count
            ));
        }
    }
    if let Some(depth) = s.max_queue_depth {
        out.push_str(&format!("max queue depth: {depth}\n"));
    }
    if s.parts_executed > 0 {
        out.push_str(&format!(
            "distributed parts executed: {}\n",
            s.parts_executed
        ));
    }

    // Stopping-rule looks, one row per round checkpoint.
    if !s.checkpoints.is_empty() {
        let mut t = TextTable::new(
            [
                "round", "fixed", "random", "fraction", "boundary", "leaky", "clean", "open",
                "stop",
            ]
            .map(String::from)
            .to_vec(),
        );
        for c in &s.checkpoints {
            t.push_row(vec![
                c.round.to_string(),
                c.fixed_traces.to_string(),
                c.random_traces.to_string(),
                fmt_f(c.fraction, 3),
                fmt_f(c.boundary, 3),
                c.leaky.to_string(),
                c.clean.to_string(),
                c.unresolved.to_string(),
                if c.stop { "yes" } else { "" }.to_string(),
            ]);
        }
        out.push_str(&format!("\nround checkpoints:\n{}", t.render()));
    }

    // Per-gate audit rows of the final look.
    if !s.final_audit.is_empty() {
        let mut t = TextTable::new(
            ["gate", "|t|", "boundary", "verdict"]
                .map(String::from)
                .to_vec(),
        );
        for row in &s.final_audit {
            t.push_row(vec![
                row.gate.to_string(),
                fmt_f(row.abs_t, 3),
                fmt_f(row.boundary, 3),
                row.verdict.as_str().to_string(),
            ]);
        }
        out.push_str(&format!("\nfinal stopping audit:\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_obs::parse_trace;

    fn summarize_text(input: &str) -> Result<String, CliError> {
        let events = parse_trace(input).map_err(trace_err)?;
        Ok(render_summary(&TraceSummary::build(&events)))
    }

    #[test]
    fn empty_trace_renders_without_tables() {
        let report = summarize_text("").unwrap();
        assert!(report.contains("events: 0"));
        assert!(report.contains("nothing to summarize"));
    }

    #[test]
    fn malformed_json_maps_to_exit_code_9() {
        for hostile in [
            "{not json",
            "{\"kind\": \"shard_span\"", // unterminated object
            "{\"kind\": [\"nested\"]}",  // nesting is rejected
            "{\"t\": 1, \"t\": 2, \"kind\": \"x\"}", // duplicate key
            "null",
        ] {
            let err = summarize_text(hostile).unwrap_err();
            assert_eq!(err.code, EXIT_MALFORMED_TRACE, "input: {hostile}");
            assert!(err.message.contains("malformed trace"), "input: {hostile}");
        }
    }

    #[test]
    fn oversized_line_maps_to_exit_code_9() {
        let huge = format!("{{\"kind\": \"{}\"}}", "x".repeat(70_000));
        let err = summarize_text(&huge).unwrap_err();
        assert_eq!(err.code, EXIT_MALFORMED_TRACE);
    }

    #[test]
    fn unknown_event_kind_maps_to_exit_code_9() {
        let err = summarize_text("{\"t\": 0, \"thread\": 0, \"kind\": \"mystery\"}").unwrap_err();
        assert_eq!(err.code, EXIT_MALFORMED_TRACE);
    }

    #[test]
    fn renders_phases_workers_and_audit_tables() {
        let trace = concat!(
            "{\"t\": 0, \"thread\": 0, \"kind\": \"shard_span\", \"round\": 1, ",
            "\"grid_index\": 0, \"pop\": \"fixed\", \"start\": 0, \"count\": 256, ",
            "\"wall_ns\": 1000000, \"rng_ns\": 600000, \"sim_ns\": 250000, ",
            "\"acc_ns\": 100000}\n",
            "{\"t\": 5, \"thread\": 0, \"kind\": \"fold_span\", \"round\": 1, ",
            "\"shards\": 2, \"wall_ns\": 50000}\n",
            "{\"t\": 6, \"thread\": 0, \"kind\": \"round_checkpoint\", \"round\": 1, ",
            "\"planned_rounds\": 4, \"fixed_traces\": 256, \"random_traces\": 256, ",
            "\"fraction\": 0.25, \"boundary\": 1.5, \"leaky\": 1, \"clean\": 2, ",
            "\"unresolved\": 0, \"stop\": true, \"wall_ns\": 30000}\n",
            "{\"t\": 7, \"thread\": 0, \"kind\": \"stop_audit\", \"round\": 1, ",
            "\"gate\": 3, \"abs_t\": 6.125, \"boundary\": 1.5, \"verdict\": \"leaky\"}\n",
            "{\"t\": 9, \"thread\": 0, \"kind\": \"campaign_end\", \"rounds\": 1, ",
            "\"stopped_early\": true, \"fixed_traces\": 256, \"random_traces\": 256, ",
            "\"wall_ns\": 1100000}\n",
        );
        let report = summarize_text(trace).unwrap();
        assert!(report.contains("events: 5"));
        assert!(report.contains("phase breakdown:"));
        assert!(report.contains("rng"));
        assert!(report.contains("phase coverage:"));
        assert!(report.contains("round checkpoints:"));
        assert!(report.contains("final stopping audit:"));
        assert!(report.contains("leaky"));
        assert!(report.contains("workers:"));
    }

    #[test]
    fn trace_out_without_flag_is_null_and_flushes_nothing() {
        let flags = Flags::parse(&[], &[]).unwrap();
        let t = TraceOut::from_flags(&flags);
        assert!(!t.dyn_recorder().enabled());
        assert!(!t.recorder().enabled());
        t.flush().unwrap();
    }
}
