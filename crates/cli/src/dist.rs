//! `polaris-cli dist` — distributed campaign orchestration.
//!
//! ```text
//! polaris-cli dist plan  <netlist> --parts K --out plan.txt
//!                        [--traces N --seed N --cycles N --glitch --sink welch|samples]
//! polaris-cli dist work  <netlist> --plan plan.txt --part I --out part-I.shard [--threads N]
//! polaris-cli dist merge <netlist> --plan plan.txt part-0.shard part-1.shard …
//!                        [--csv out.csv]
//! ```
//!
//! The coordinator `plan`s the campaign's shard grid into contiguous parts;
//! each `work` process (any host — only the netlist and the plan manifest
//! travel) executes its part and snapshots per-shard accumulator state into
//! a checksummed `.shard` file; `merge` folds a complete set of parts in
//! canonical shard order. The merged statistics are **byte-identical** to a
//! single-process `polaris-cli assess` of the same campaign, at any
//! partitioning.
//!
//! Failures decoding shard-state input map to distinct exit codes (see
//! [`EXIT_CODES`]) so orchestration scripts can react without parsing
//! stderr: re-fetch a truncated part, rebuild on version skew, re-plan on a
//! fingerprint mismatch.

use polaris_dist::{merge_parts_traced, merged_outcome, DistError, DistPlan, SinkKind};
use polaris_sim::{GateSamples, Parallelism};
use polaris_tvla::{PairAccumulator, TripleAccumulator, WelchAccumulator, TVLA_THRESHOLD};

use crate::commands::{
    campaign_from, leakage_csv, load_netlist, pair_csv, parallelism_from, parse_pair_list,
    parse_triple_list, triple_csv,
};
use crate::{read_file, write_file, CliError, Flags};

/// Exit-code table of the `dist` subcommands, also printed by
/// `dist --help`. Code 1 stays the generic failure (I/O, usage of other
/// commands); 2 stays usage errors; 8 is `assess`'s multivariate input
/// error, shared with invalid plan gate lists so a hand-edited manifest
/// fails the same way a bad `--pair-gates`/`--triple-gates` flag does.
pub(crate) const EXIT_CODES: &str = "\
exit codes:
  1  generic failure (I/O, simulation, usage)
  3  truncated shard-state file
  4  malformed shard-state file or plan manifest (bad magic, bad structure)
  5  shard-state format version mismatch (rebuild workers and merger together)
  6  shard-state checksum mismatch (corrupted file)
  7  plan mismatch (wrong netlist/campaign fingerprint, wrong sink kind,
     missing/duplicate/overlapping parts)
  8  multivariate gate-list error (a pair/triple list — CLI flag or plan
     manifest — referencing a gate outside the design, repeating a gate
     within one entry, or duplicating an entry)";

fn dist_err(e: DistError) -> CliError {
    CliError {
        code: e.exit_class(),
        message: e.to_string(),
    }
}

const DIST_USAGE: &str = "\
dist plan  <netlist> --parts K --out plan.txt [--traces N --seed N --cycles N --glitch]
           [--sink welch|samples|pairs|triples] [--pair-gates A:B,C:D]
           [--triple-gates A:B:C,D:E:F]
dist work  <netlist> --plan plan.txt --part I --out part-I.shard [--threads N]
           [--trace-out trace.jsonl]
dist merge <netlist> --plan plan.txt <part.shard>... [--csv out.csv]
           [--trace-out trace.jsonl]";

/// `polaris-cli dist` dispatcher.
pub(crate) fn dist(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::from(format!(
            "missing dist subcommand\n{DIST_USAGE}"
        )));
    };
    let rest = &args[1..];
    match sub.as_str() {
        "plan" => plan(rest),
        "work" => work(rest),
        "merge" => merge(rest),
        "--help" | "-h" | "help" => {
            println!("{DIST_USAGE}\n\n{EXIT_CODES}");
            Ok(())
        }
        other => Err(CliError::from(format!(
            "unknown dist subcommand `{other}`\n{DIST_USAGE}"
        ))),
    }
}

/// Parses the plan manifest the coordinator wrote, then re-verifies it
/// against the freshly loaded netlist (fingerprint + grid size).
fn load_plan(
    flags: &Flags,
    netlist: &polaris_netlist::Netlist,
    model: &polaris_sim::PowerModel,
) -> Result<DistPlan, CliError> {
    let path = flags
        .get("plan")
        .ok_or_else(|| CliError::from("missing --plan <manifest>".to_string()))?;
    let plan = DistPlan::parse(&read_file(path)?).map_err(dist_err)?;
    plan.verify(netlist, model).map_err(dist_err)?;
    Ok(plan)
}

/// `polaris-cli dist plan`
fn plan(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["glitch", "help"])?;
    if flags.has("help") {
        println!("{DIST_USAGE}\n\n{EXIT_CODES}");
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let campaign = campaign_from(&flags, 7)?;
    let parts: usize = flags.get_parsed("parts", 2)?;
    if parts == 0 {
        return Err(CliError::from("--parts must be at least 1".to_string()));
    }
    let sink = match flags.get("sink").unwrap_or("welch") {
        "welch" => SinkKind::Welch,
        "samples" => SinkKind::GateSamples,
        "pairs" => SinkKind::Pairs,
        "triples" => SinkKind::Triples,
        other => {
            return Err(CliError::from(format!(
                "unknown sink `{other}` (dist campaigns snapshot `welch`, `samples`, \
                 `pairs` or `triples`)"
            )))
        }
    };
    let out = flags
        .get("out")
        .ok_or_else(|| CliError::from("missing --out <plan manifest>".to_string()))?;
    if flags.get("pair-gates").is_some() && !matches!(sink, SinkKind::Pairs) {
        return Err(CliError::from(
            "--pair-gates is only valid with --sink pairs".to_string(),
        ));
    }
    if flags.get("triple-gates").is_some() && !matches!(sink, SinkKind::Triples) {
        return Err(CliError::from(
            "--triple-gates is only valid with --sink triples".to_string(),
        ));
    }
    let model = polaris_sim::PowerModel::default();
    let plan = match sink {
        SinkKind::Pairs => {
            let spec = flags.get("pair-gates").ok_or_else(|| {
                CliError::from(
                    "--sink pairs needs --pair-gates A:B,C:D (the gate pairs every \
                     worker accumulates)"
                        .to_string(),
                )
            })?;
            DistPlan::new_pairs(&netlist, &model, &campaign, parse_pair_list(spec)?, parts)
        }
        SinkKind::Triples => {
            let spec = flags.get("triple-gates").ok_or_else(|| {
                CliError::from(
                    "--sink triples needs --triple-gates A:B:C,D:E:F (the gate triples \
                     every worker accumulates)"
                        .to_string(),
                )
            })?;
            DistPlan::new_triples(&netlist, &model, &campaign, parse_triple_list(spec)?, parts)
        }
        _ => DistPlan::new(&netlist, &model, &campaign, sink, parts),
    }
    .map_err(dist_err)?;
    write_file(out, &plan.render())?;
    eprintln!(
        "planned {} + {} traces over {} shards in {} part(s); manifest written to {out}",
        plan.n_fixed,
        plan.n_random,
        plan.n_shards,
        plan.parts.len()
    );
    eprintln!(
        "next: run `dist work {} --plan {out} --part I --out part-I.shard` for every part",
        flags.positional(0, "netlist path")?
    );
    Ok(())
}

/// `polaris-cli dist work`
fn work(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{DIST_USAGE}\n\n{EXIT_CODES}");
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let model = polaris_sim::PowerModel::default();
    let plan = load_plan(&flags, &netlist, &model)?;
    let campaign = plan.campaign();
    let part: usize = flags
        .get("part")
        .ok_or_else(|| CliError::from("missing --part <index>".to_string()))?
        .parse()
        .map_err(|_| CliError::from("malformed --part value".to_string()))?;
    let out = flags
        .get("out")
        .ok_or_else(|| CliError::from("missing --out <shard-state file>".to_string()))?;
    let parallelism: Parallelism = parallelism_from(&flags)?;
    let trace_out = crate::trace::TraceOut::from_flags(&flags);
    let recorder = trace_out.dyn_recorder();
    eprintln!(
        "executing part {part} of {} ({} shards total, {} worker threads)…",
        plan.parts.len(),
        plan.n_shards,
        parallelism.threads()
    );
    let bytes = match plan.sink {
        SinkKind::Welch => polaris_dist::execute_part_traced::<WelchAccumulator>(
            &netlist,
            &model,
            &campaign,
            parallelism,
            part,
            plan.parts.len(),
            recorder,
        ),
        SinkKind::GateSamples => polaris_dist::execute_part_traced::<GateSamples>(
            &netlist,
            &model,
            &campaign,
            parallelism,
            part,
            plan.parts.len(),
            recorder,
        ),
        SinkKind::Pairs => polaris_dist::execute_part_traced_with(
            &netlist,
            &model,
            &campaign,
            parallelism,
            part,
            plan.parts.len(),
            || PairAccumulator::for_pairs(plan.pair_gates.clone()),
            recorder,
        ),
        SinkKind::Triples => polaris_dist::execute_part_traced_with(
            &netlist,
            &model,
            &campaign,
            parallelism,
            part,
            plan.parts.len(),
            || TripleAccumulator::for_triples(plan.triple_gates.clone()),
            recorder,
        ),
        SinkKind::Cpa => Err(DistError::PlanMismatch(
            "CPA shard states are snapshot via the library API, not `dist work`".into(),
        )),
    }
    .map_err(dist_err)?;
    // Atomic tmp-then-rename: a worker killed mid-write must never leave a
    // truncated part at the final path for a later merge to reject.
    crate::write_file_bytes(out, &bytes).map_err(CliError::from)?;
    eprintln!("shard state ({} bytes) written to {out}", bytes.len());
    trace_out.flush()?;
    Ok(())
}

/// `polaris-cli dist merge`
fn merge(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["help"])?;
    if flags.has("help") {
        println!("{DIST_USAGE}\n\n{EXIT_CODES}");
        return Ok(());
    }
    let netlist = load_netlist(flags.positional(0, "netlist path")?)?;
    let model = polaris_sim::PowerModel::default();
    let plan = load_plan(&flags, &netlist, &model)?;
    let campaign = plan.campaign();
    let mut part_files: Vec<Vec<u8>> = Vec::new();
    let mut i = 1;
    while let Ok(path) = flags.positional(i, "shard-state file") {
        part_files.push(
            std::fs::read(path)
                .map_err(|e| CliError::from(format!("cannot read shard state {path}: {e}")))?,
        );
        i += 1;
    }
    if part_files.is_empty() {
        return Err(CliError::from(
            "no shard-state files given (pass every part as a positional argument)".to_string(),
        ));
    }
    let trace_out = crate::trace::TraceOut::from_flags(&flags);
    let recorder = trace_out.dyn_recorder();

    match plan.sink {
        SinkKind::Welch => {
            let merged = merge_parts_traced::<WelchAccumulator>(
                part_files.iter().map(Vec::as_slice),
                Some(plan.fingerprint),
                recorder,
            )
            .map_err(dist_err)?;
            let parts = merged.parts;
            let outcome = merged_outcome(&netlist, &model, &campaign, merged).map_err(dist_err)?;
            let leakage = outcome.sink.leakage();
            let s = leakage.summarize(&netlist);
            eprintln!(
                "folded {} shards from {parts} part(s) — statistics are byte-identical \
                 to a single-process run",
                plan.n_shards
            );
            println!("cells:        {}", s.cells);
            println!("mean |t|:     {:.3}", s.mean_abs_t);
            println!("max |t|:      {:.3}", s.max_abs_t);
            println!("leaky cells:  {} (|t| > {TVLA_THRESHOLD})", s.leaky_cells);
            println!(
                "verdict:      {}",
                if s.max_abs_t > TVLA_THRESHOLD {
                    "LEAKY — first-order TVLA failure"
                } else {
                    "no first-order leakage detected at this trace count"
                }
            );
            if let Some(csv) = flags.get("csv") {
                write_file(csv, &leakage_csv(&netlist, &leakage))?;
                eprintln!("per-gate results written to {csv}");
            }
        }
        SinkKind::GateSamples => {
            if flags.get("csv").is_some() {
                return Err(CliError::from(
                    "--csv is only available for welch-, pairs- and triples-sink plans".to_string(),
                ));
            }
            let merged = merge_parts_traced::<GateSamples>(
                part_files.iter().map(Vec::as_slice),
                Some(plan.fingerprint),
                recorder,
            )
            .map_err(dist_err)?;
            let parts = merged.parts;
            let samples = merged.state;
            let (fixed, random) = samples.classes();
            println!(
                "merged dense samples: {} gates, {} fixed + {} random traces \
                 ({parts} part(s), {} shards)",
                samples.gate_count(),
                fixed.first().map_or(0, Vec::len),
                random.first().map_or(0, Vec::len),
                plan.n_shards
            );
            println!("(for distributed bivariate sweeps, plan with --sink pairs)");
        }
        SinkKind::Pairs => {
            let merged = merge_parts_traced::<PairAccumulator>(
                part_files.iter().map(Vec::as_slice),
                Some(plan.fingerprint),
                recorder,
            )
            .map_err(dist_err)?;
            let parts = merged.parts;
            let outcome = merged_outcome(&netlist, &model, &campaign, merged).map_err(dist_err)?;
            let sweep = outcome.sink.sweep();
            eprintln!(
                "folded {} shards from {parts} part(s) — pair statistics are \
                 byte-identical to a single-process `assess --pair-gates` run",
                plan.n_shards
            );
            let leaky = sweep
                .iter()
                .filter(|(_, _, r)| r.is_leaky(TVLA_THRESHOLD))
                .count();
            println!("gate pairs:   {}", sweep.len());
            println!("leaky pairs:  {leaky} (|t| > {TVLA_THRESHOLD})");
            println!("worst second-order (bivariate) pairs:");
            for (g1, g2, r) in sweep.iter().take(10) {
                println!(
                    "  {:>10} x {:<10} |t2| = {:.2}{}",
                    netlist.gate(*g1).name(),
                    netlist.gate(*g2).name(),
                    r.t.abs(),
                    if r.is_leaky(TVLA_THRESHOLD) {
                        "  LEAKY"
                    } else {
                        ""
                    }
                );
            }
            if let Some(csv) = flags.get("csv") {
                write_file(csv, &pair_csv(&netlist, &sweep))?;
                eprintln!("per-pair results written to {csv}");
            }
        }
        SinkKind::Triples => {
            let merged = merge_parts_traced::<TripleAccumulator>(
                part_files.iter().map(Vec::as_slice),
                Some(plan.fingerprint),
                recorder,
            )
            .map_err(dist_err)?;
            let parts = merged.parts;
            let outcome = merged_outcome(&netlist, &model, &campaign, merged).map_err(dist_err)?;
            let sweep = outcome.sink.sweep();
            eprintln!(
                "folded {} shards from {parts} part(s) — triple statistics are \
                 byte-identical to a single-process `assess --triple-gates` run",
                plan.n_shards
            );
            let leaky = sweep
                .iter()
                .filter(|(_, _, _, r)| r.is_leaky(TVLA_THRESHOLD))
                .count();
            println!("gate triples:  {}", sweep.len());
            println!("leaky triples: {leaky} (|t| > {TVLA_THRESHOLD})");
            println!("worst third-order (trivariate) triples:");
            for (g1, g2, g3, r) in sweep.iter().take(10) {
                println!(
                    "  {:>10} x {:^10} x {:<10} |t3| = {:.2}{}",
                    netlist.gate(*g1).name(),
                    netlist.gate(*g2).name(),
                    netlist.gate(*g3).name(),
                    r.t.abs(),
                    if r.is_leaky(TVLA_THRESHOLD) {
                        "  LEAKY"
                    } else {
                        ""
                    }
                );
            }
            if let Some(csv) = flags.get("csv") {
                write_file(csv, &triple_csv(&netlist, &sweep))?;
                eprintln!("per-triple results written to {csv}");
            }
        }
        SinkKind::Cpa => {
            return Err(CliError::from(
                "CPA shard states merge via the library API, not `dist merge`".to_string(),
            ))
        }
    }
    trace_out.flush()?;
    Ok(())
}
