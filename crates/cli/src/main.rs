//! `polaris-cli` — the POLARIS design-for-security tool.
//!
//! ```text
//! polaris-cli train   --out model.polaris [--scale N --traces N --seed N --threads N --model adaboost|xgboost|random-forest --glitch --adaptive --confidence P]
//! polaris-cli stats   <netlist.v>
//! polaris-cli assess  <netlist.v> [--traces N --seed N --threads N --glitch --adaptive --confidence P] [--csv out.csv]
//!                     [--pairs N | --pair-gates A:B,C:D] [--pairs-dense] [--pairs-csv out.csv]
//!                     [--triples N | --triple-gates A:B:C,D:E:F] [--triples-csv out.csv] [--trace-out trace.jsonl]
//! polaris-cli fleet   <manifest.txt> [--traces N --seed N --threads N --glitch --adaptive --confidence P] [--csv-dir DIR]
//!                     [--trace-out trace.jsonl]
//! polaris-cli trace   summarize <trace.jsonl>
//! polaris-cli gen     <design-name> --out file.bench [--scale N --seed N]
//! polaris-cli mask    <netlist.v> --model model.polaris --out masked.v
//!                     [--budget leaky:0.5 | cells:0.5 | count:N] [--threads N] [--adaptive --confidence P] [--report]
//! polaris-cli rules   --model model.polaris
//! polaris-cli explain <netlist.v> --model model.polaris --gate <instance-name>
//! polaris-cli serve   [--listen 127.0.0.1:0 --heartbeat-ms N --trace-out trace.jsonl]
//! polaris-cli worker  --connect HOST:PORT [--name ID --threads N]
//! polaris-cli submit  <netlist.v> --connect HOST:PORT [--tenant ID --traces N --seed N
//!                     --cycles N --glitch --adaptive --confidence P] [--csv out.csv]
//! ```
//!
//! Trace campaigns run on the sharded parallel engine; `--threads` (0 = all
//! cores) only changes throughput — results are bit-identical at any count.
//! `--adaptive` turns `--traces` into a budget: campaigns stop at the first
//! round checkpoint where every gate's leakage verdict has converged
//! (`--confidence`, default 0.95, sets the false-clean alpha-spending
//! budget). Early-stopped results equal the prefix of a full run.
//!
//! Netlists use the structural-Verilog subset documented in
//! [`polaris_netlist::parser`].

use std::fs;
use std::process::ExitCode;

mod commands;
mod dist;
mod fleet;
mod serve;
mod trace;

/// A CLI failure with its process exit code. Generic errors exit 1; the
/// `dist` subcommands map each shard-state failure class to a distinct
/// non-zero code (see [`dist::EXIT_CODES`]), so orchestration scripts can
/// tell a truncated part file from a version skew without parsing stderr,
/// and `trace summarize` exits [`trace::EXIT_MALFORMED_TRACE`] on a trace
/// file the bounded JSONL parser rejects.
#[derive(Debug)]
pub(crate) struct CliError {
    pub(crate) code: u8,
    pub(crate) message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 1, message }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result: Result<(), CliError> = match cmd.as_str() {
        "train" => commands::train(rest).map_err(CliError::from),
        "stats" => commands::stats(rest).map_err(CliError::from),
        "assess" => commands::assess(rest),
        "fleet" => fleet::fleet(rest).map_err(CliError::from),
        "gen" => commands::gen(rest).map_err(CliError::from),
        "mask" => commands::mask(rest).map_err(CliError::from),
        "rules" => commands::rules(rest).map_err(CliError::from),
        "explain" => commands::explain(rest).map_err(CliError::from),
        "dist" => dist::dist(rest),
        "serve" => serve::serve(rest),
        "worker" => serve::worker(rest),
        "submit" => serve::submit(rest),
        "trace" => trace::trace(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::from(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "\
polaris-cli — explainable AI for power side-channel mitigation

commands:
  train    train on the generated benchmark suite and save a model bundle
  stats    print netlist statistics
  assess   run TVLA leakage assessment on a netlist
  fleet    assess a manifest of designs on one shared worker pool
  gen      write a generated evaluation design to disk
  mask     protect a netlist with a trained model
  rules    print the mined masking rules of a model bundle
  explain  SHAP waterfall for one gate of a netlist
  dist     distributed campaigns: plan / work / merge shard states
  serve    run the live assessment service daemon
  worker   attach a live worker to a running serve daemon
  submit   submit a design to a running serve daemon
  trace    summarize a JSONL trace written with --trace-out

run `polaris-cli <command> --help` for flags";

/// Reads a file with a friendly error.
pub(crate) fn read_file(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Writes a file with a friendly error.
///
/// Crash-safe: see [`write_file_bytes`].
pub(crate) fn write_file(path: &str, content: &str) -> Result<(), String> {
    write_file_bytes(path, content.as_bytes())
}

/// Writes bytes to `<path>.tmp` and atomically renames onto `path`.
///
/// Every artifact the CLI produces (shard-state parts, CSVs, traces, model
/// bundles) goes through here so a process killed mid-write can never leave
/// a truncated file at the final path — a rerun or a coordinator re-issue
/// always starts from either the old complete artifact or nothing.
pub(crate) fn write_file_bytes(path: &str, bytes: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    fs::write(&tmp, bytes).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} to {path}: {e}"))
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
pub(crate) struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    pub(crate) fn parse(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut f = Flags {
            positional: Vec::new(),
            pairs: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    f.switches.push(name.to_string());
                    i += 1;
                } else {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("missing value for --{name}"))?;
                    f.pairs.push((name.to_string(), v.clone()));
                    i += 2;
                }
            } else {
                f.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(f)
    }

    pub(crate) fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what}"))
    }

    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub(crate) fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("malformed --{key} value `{v}`")),
        }
    }

    pub(crate) fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}
