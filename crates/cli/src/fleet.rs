//! `polaris-cli fleet` — assess a manifest of designs as one shared-pool
//! fleet.
//!
//! The manifest is a plain text file with one netlist path per line (blank
//! lines and `#` comments are skipped; relative paths resolve against the
//! working directory). Every design's fixed-vs-random campaign becomes one
//! [`FleetJob`] of a single [`run_fleet`] pool, so shards of all designs
//! interleave on the same worker threads instead of each campaign
//! serializing on its own fold barrier.
//!
//! Results are byte-identical to per-design `polaris-cli assess` runs with
//! the same flags — the CI fleet smoke `cmp`s the emitted CSVs against solo
//! `assess --csv` outputs.

use polaris_netlist::Netlist;
use polaris_sim::{run_fleet_traced, CampaignOutcome, FleetJob, PowerModel};
use polaris_tvla::{adaptive_fleet_job_traced, SequentialConfig, WelchAccumulator, TVLA_THRESHOLD};

use polaris::report::{fmt_f, TextTable};

use crate::commands::{
    campaign_from, confidence_from, leakage_csv, load_netlist, parallelism_from,
};
use crate::{read_file, write_file, Flags};

/// `polaris-cli fleet`
pub(crate) fn fleet(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["glitch", "adaptive", "help"])?;
    if flags.has("help") {
        println!(
            "fleet <manifest.txt> [--traces N --seed N --cycles N --threads N --glitch] \
             [--adaptive --confidence P] [--csv-dir DIR] [--trace-out trace.jsonl]\n\n\
             manifest: one netlist path per line (# comments, blank lines ok).\n\
             Runs every design's TVLA campaign as a work item on one shared worker\n\
             pool; per-design results are byte-identical to solo `assess` runs.\n\
             --trace-out records queue depth, per-item spans and worker summaries\n\
             (summarize with `polaris-cli trace summarize FILE`)."
        );
        return Ok(());
    }
    let manifest_path = flags.positional(0, "manifest path")?;
    let manifest = read_file(manifest_path)?;
    let mut paths: Vec<String> = Vec::new();
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        paths.push(line.to_string());
    }
    if paths.is_empty() {
        return Err(format!("{manifest_path}: no design paths in manifest"));
    }
    let designs: Vec<Netlist> = paths
        .iter()
        .map(|p| load_netlist(p))
        .collect::<Result<_, _>>()?;

    let campaign = campaign_from(&flags, 7)?;
    let par = parallelism_from(&flags)?;
    let adaptive = flags.has("adaptive");
    let confidence = confidence_from(&flags)?;
    let power = PowerModel::default();

    // Validate the CSV destination before any campaign runs — a manifest
    // error after a multi-million-trace fleet would discard all of it.
    let csv_dir = flags.get("csv-dir");
    if let Some(dir) = csv_dir {
        // CSV names derive from the manifest paths' file stems; two entries
        // with the same stem would silently overwrite each other's results.
        let mut stems: Vec<&str> = paths.iter().map(|p| csv_stem(p)).collect();
        stems.sort_unstable();
        if let Some(dup) = stems.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!(
                "manifest has two designs with the CSV name `{}.csv` — rename one \
                 file or drop --csv-dir",
                dup[0]
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    }

    eprintln!(
        "fleet: {} designs, {} traces/class{}, {} worker threads (shared pool)…",
        designs.len(),
        campaign.n_fixed,
        if adaptive {
            " budget, adaptive stopping"
        } else {
            ""
        },
        par.threads()
    );
    let trace_out = crate::trace::TraceOut::from_flags(&flags);
    let jobs: Vec<FleetJob<'_, WelchAccumulator>> = designs
        .iter()
        .map(|design| {
            if adaptive {
                let seq = SequentialConfig::with_confidence(confidence);
                adaptive_fleet_job_traced(
                    design,
                    &power,
                    campaign.clone(),
                    &seq,
                    trace_out.recorder(),
                )
            } else {
                FleetJob::new(design, &power, campaign.clone())
            }
        })
        .collect();
    let start = std::time::Instant::now();
    let outcomes: Vec<CampaignOutcome<WelchAccumulator>> =
        run_fleet_traced(jobs, par, trace_out.dyn_recorder()).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    trace_out.flush()?;
    let suite_traces: usize = outcomes.iter().map(|o| o.stats.traces_used()).sum();
    eprintln!(
        "fleet finished: {suite_traces} traces across the suite in {seconds:.3}s \
         ({:.0} traces/sec)",
        suite_traces as f64 / seconds.max(1e-9)
    );

    let mut table = TextTable::new(
        [
            "design", "cells", "mean |t|", "max |t|", "leaky", "traces", "rounds", "verdict",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ((path, design), outcome) in paths.iter().zip(&designs).zip(&outcomes) {
        let leakage = outcome.sink.leakage();
        let s = leakage.summarize(design);
        table.push_row(vec![
            design.name().to_string(),
            s.cells.to_string(),
            fmt_f(s.mean_abs_t, 3),
            fmt_f(s.max_abs_t, 3),
            s.leaky_cells.to_string(),
            format!(
                "{}{}",
                outcome.stats.traces_used(),
                if outcome.stats.stopped_early {
                    " (early)"
                } else {
                    ""
                }
            ),
            format!("{}/{}", outcome.stats.rounds, outcome.stats.planned_rounds),
            if s.max_abs_t > TVLA_THRESHOLD {
                "LEAKY".to_string()
            } else {
                "clean".to_string()
            },
        ]);
        if let Some(dir) = csv_dir {
            let out = format!("{dir}/{}.csv", csv_stem(path));
            write_file(&out, &leakage_csv(design, &leakage))?;
            eprintln!("per-gate results written to {out}");
        }
    }
    println!("{}", table.render());
    Ok(())
}

/// The per-design CSV name a manifest path maps to under `--csv-dir`.
fn csv_stem(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
}
