//! End-to-end tests of the live assessment service and the crash-safety of
//! artifact writes, driving real `polaris-cli` processes over real sockets.

use std::io::Read as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_polaris-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polaris-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

const C17_BENCH: &str = "\
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

fn run_ok(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("runs");
    assert!(
        out.status.success(),
        "{args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// Kills the wrapped children on drop so a failing assertion cannot leak
/// daemon/worker processes (and their bound ports) into the test host.
struct Reaper(Vec<Child>);

impl Reaper {
    fn adopt(&mut self, child: Child) -> usize {
        self.0.push(child);
        self.0.len() - 1
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A `dist work` process SIGKILLed mid-plan must never leave a truncated
/// part at the final output path — the atomic tmp-then-rename write
/// guarantees the path holds either nothing or a complete artifact — and a
/// re-issued plan must converge to the byte-identical single-process
/// result.
#[test]
fn killed_worker_leaves_no_truncated_part_and_rerun_converges() {
    let design = tmp("kill_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8").to_string();
    let plan = tmp("kill_plan.txt");
    let plan = plan.to_str().expect("utf8").to_string();
    let shard = tmp("kill_part0.shard");
    let shard_str = shard.to_str().expect("utf8").to_string();

    run_ok(&[
        "dist", "plan", &design, "--traces", "6000", "--seed", "11", "--parts", "1", "--out", &plan,
    ]);

    // Launch the worker and SIGKILL it almost immediately — mid-simulation
    // or (the interesting window) mid-write.
    let mut child = cli()
        .args([
            "dist",
            "work",
            &design,
            "--plan",
            &plan,
            "--part",
            "0",
            "--out",
            &shard_str,
            "--threads",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns");
    std::thread::sleep(Duration::from_millis(60));
    let _ = child.kill();
    let _ = child.wait();

    // The final path holds either nothing or a complete, checksummed part —
    // never a truncated one. A leftover `.tmp` is fine; the contract is
    // about the final path a re-issuing coordinator would trust.
    if shard.exists() {
        let out = cli()
            .args(["dist", "merge", &design, "--plan", &plan, &shard_str])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "a part present at the final path must be complete: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Re-issue the plan (the coordinator's crash recovery) and merge: the
    // result must be byte-identical to the single-process run.
    run_ok(&[
        "dist", "work", &design, "--plan", &plan, "--part", "0", "--out", &shard_str,
    ]);
    let merged_csv = tmp("kill_merged.csv");
    let merged_csv = merged_csv.to_str().expect("utf8").to_string();
    run_ok(&[
        "dist",
        "merge",
        &design,
        "--plan",
        &plan,
        &shard_str,
        "--csv",
        &merged_csv,
    ]);
    let solo_csv = tmp("kill_solo.csv");
    let solo_csv = solo_csv.to_str().expect("utf8").to_string();
    run_ok(&[
        "assess", &design, "--traces", "6000", "--seed", "11", "--csv", &solo_csv,
    ]);
    assert_eq!(
        std::fs::read_to_string(&merged_csv).expect("merged csv"),
        std::fs::read_to_string(&solo_csv).expect("solo csv"),
        "re-issued plan must converge byte-identically"
    );
}

/// The full service lifecycle: daemon + two live workers, fixed and
/// adaptive submissions byte-identical to solo `assess` runs through a
/// worker SIGKILLed mid-campaign, a cache-hit resubmission, and the
/// documented failure-class exit codes for protocol skew and malformed
/// submissions.
#[test]
fn serve_two_workers_with_crash_matches_solo_assess() {
    let design = tmp("serve_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8").to_string();
    let port_file = tmp("serve_port.txt");

    let mut reaper = Reaper(Vec::new());
    let daemon = cli()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--heartbeat-ms",
            "500",
            "--port-file",
            port_file.to_str().expect("utf8"),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let daemon = reaper.adopt(daemon);

    // The daemon writes its bound address (port 0 = ephemeral) atomically
    // to the port file once it is accepting.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            break addr.trim().to_string();
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote the port file"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    let spawn_worker = |name: &str| {
        cli()
            .args([
                "worker",
                "--connect",
                &addr,
                "--name",
                name,
                "--threads",
                "1",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("worker spawns")
    };
    let doomed = reaper.adopt(spawn_worker("doomed"));
    let _survivor = reaper.adopt(spawn_worker("survivor"));

    // Adaptive submission first — many small (one-round) leases, so the
    // SIGKILL below lands mid-campaign and the lost leases are re-issued.
    let adaptive_csv = tmp("serve_adaptive.csv");
    let adaptive_csv = adaptive_csv.to_str().expect("utf8").to_string();
    let mut submit = cli()
        .args([
            "submit",
            &design,
            "--connect",
            &addr,
            "--tenant",
            "alice",
            "--traces",
            "6000",
            "--seed",
            "11",
            "--adaptive",
            "--csv",
            &adaptive_csv,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("submit spawns");
    std::thread::sleep(Duration::from_millis(400));
    let _ = reaper.0[doomed].kill();
    let status = submit.wait().expect("submit finishes");
    let mut submit_err = String::new();
    submit
        .stderr
        .take()
        .expect("piped")
        .read_to_string(&mut submit_err)
        .expect("stderr utf8");
    assert!(status.success(), "adaptive submit failed: {submit_err}");

    let solo_adaptive = tmp("serve_solo_adaptive.csv");
    let solo_adaptive = solo_adaptive.to_str().expect("utf8").to_string();
    run_ok(&[
        "assess",
        &design,
        "--traces",
        "6000",
        "--seed",
        "11",
        "--adaptive",
        "--csv",
        &solo_adaptive,
    ]);
    assert_eq!(
        std::fs::read_to_string(&adaptive_csv).expect("served csv"),
        std::fs::read_to_string(&solo_adaptive).expect("solo csv"),
        "served adaptive CSV must be byte-identical to solo assess through the worker crash"
    );

    // Fixed-budget submission on the surviving worker.
    let fixed_csv = tmp("serve_fixed.csv");
    let fixed_csv = fixed_csv.to_str().expect("utf8").to_string();
    let submit_fixed = |csv: &str| {
        let out = cli()
            .args([
                "submit",
                &design,
                "--connect",
                &addr,
                "--tenant",
                "alice",
                "--traces",
                "1500",
                "--seed",
                "11",
                "--csv",
                csv,
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "fixed submit failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stderr).to_string()
    };
    let first = submit_fixed(&fixed_csv);
    assert!(first.contains("result: computed"), "{first}");

    let solo_fixed = tmp("serve_solo_fixed.csv");
    let solo_fixed = solo_fixed.to_str().expect("utf8").to_string();
    run_ok(&[
        "assess",
        &design,
        "--traces",
        "1500",
        "--seed",
        "11",
        "--csv",
        &solo_fixed,
    ]);
    assert_eq!(
        std::fs::read_to_string(&fixed_csv).expect("served csv"),
        std::fs::read_to_string(&solo_fixed).expect("solo csv"),
        "served fixed CSV must be byte-identical to solo assess"
    );

    // Identical resubmission: served from the fingerprint cache, still
    // byte-identical.
    let cached_csv = tmp("serve_cached.csv");
    let cached_csv = cached_csv.to_str().expect("utf8").to_string();
    let second = submit_fixed(&cached_csv);
    assert!(second.contains("result: cached"), "{second}");
    assert_eq!(
        std::fs::read_to_string(&cached_csv).expect("cached csv"),
        std::fs::read_to_string(&solo_fixed).expect("solo csv"),
        "cache-served CSV must be byte-identical too"
    );

    // Failure classes: protocol version skew → 5; an unparsable design
    // source → 4 (malformed), reported by the daemon before any simulation.
    let skew = cli()
        .args([
            "submit",
            &design,
            "--connect",
            &addr,
            "--proto-version",
            "99",
        ])
        .output()
        .expect("runs");
    assert_eq!(skew.status.code(), Some(5), "version skew must exit 5");

    let garbage = tmp("serve_garbage.bench");
    std::fs::write(&garbage, "this is not a netlist").expect("write");
    let bad = cli()
        .args([
            "submit",
            garbage.to_str().expect("utf8"),
            "--connect",
            &addr,
        ])
        .output()
        .expect("runs");
    assert_eq!(bad.status.code(), Some(4), "malformed design must exit 4");

    // Drain the daemon; it prints per-tenant accounting and exits 0.
    run_ok(&["submit", "--shutdown", "--connect", &addr]);
    let daemon = &mut reaper.0[daemon];
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon did not drain");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "daemon must exit cleanly on shutdown");
    let mut daemon_err = String::new();
    daemon
        .stderr
        .take()
        .expect("piped")
        .read_to_string(&mut daemon_err)
        .expect("stderr utf8");
    assert!(
        daemon_err.contains("tenant alice"),
        "daemon must report tenant accounting:\n{daemon_err}"
    );
    assert!(
        daemon_err.contains("(lost)"),
        "daemon must report the killed worker as lost:\n{daemon_err}"
    );
}
