//! End-to-end tests driving the real `polaris-cli` binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_polaris-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polaris-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

const DEMO: &str = "
module keycmp (d0, d1, k0, k1, flag);
  input d0, d1;
  input k0, k1;
  output flag;
  xor x0 (m0, d0, k0);
  xor x1 (m1, d1, k1);
  nor n0 (flag, m0, m1);
endmodule";

const C17_BENCH: &str = "\
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

/// Trains a small bundle once per test process.
fn model_path() -> PathBuf {
    let path = tmp("model.polaris");
    if !path.exists() {
        let out = cli()
            .args([
                "train",
                "--out",
                path.to_str().expect("utf8"),
                "--traces",
                "120",
            ])
            .output()
            .expect("train runs");
        assert!(
            out.status.success(),
            "train failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    path
}

#[test]
fn help_lists_commands() {
    let out = cli().arg("--help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["train", "assess", "mask", "rules", "explain", "stats"] {
        assert!(text.contains(cmd), "missing {cmd} in help");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn stats_reports_structure() {
    let design = tmp("demo.v");
    std::fs::write(&design, DEMO).expect("write design");
    let out = cli()
        .args(["stats", design.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("logic cells:  3"));
    assert!(text.contains("data inputs:  4"));
    assert!(text.contains("XOR"));
}

#[test]
fn assess_flags_leaky_design_and_writes_csv() {
    let design = tmp("demo_assess.v");
    std::fs::write(&design, DEMO).expect("write design");
    let csv = tmp("leakage.csv");
    let out = cli()
        .args([
            "assess",
            design.to_str().expect("utf8"),
            "--traces",
            "600",
            "--csv",
            csv.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("LEAKY"),
        "unprotected design must be flagged:\n{text}"
    );
    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv_text.starts_with("gate,name,kind,t,leaky"));
    assert!(csv_text.lines().count() > 5);
}

#[test]
fn assess_adaptive_reports_trace_consumption_and_same_verdict() {
    let design = tmp("demo_adaptive.v");
    std::fs::write(&design, DEMO).expect("write design");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "assess".to_string(),
            design.to_str().expect("utf8").to_string(),
            "--traces".to_string(),
            "4096".to_string(),
            "--seed".to_string(),
            "11".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = cli().args(&args).output().expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let full = run(&[]);
    let adaptive = run(&["--adaptive", "--confidence", "0.95"]);
    // The budget consumption is reported, and the design verdict agrees
    // with the full-budget run.
    assert!(adaptive.contains("traces used:"), "{adaptive}");
    assert!(
        adaptive.contains("LEAKY") == full.contains("LEAKY"),
        "adaptive and full verdicts must agree:\n{adaptive}\n{full}"
    );
    // A malformed confidence is rejected cleanly.
    let out = cli()
        .args([
            "assess",
            design.to_str().expect("utf8"),
            "--adaptive",
            "--confidence",
            "1.5",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--confidence"));
}

#[test]
fn mask_reduces_leakage_and_roundtrips() {
    let design = tmp("demo_mask.v");
    std::fs::write(&design, DEMO).expect("write design");
    let masked = tmp("demo_masked.v");
    let out = cli()
        .args([
            "mask",
            design.to_str().expect("utf8"),
            "--model",
            model_path().to_str().expect("utf8"),
            "--out",
            masked.to_str().expect("utf8"),
            "--budget",
            "cells:1.0",
            "--traces",
            "400",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gates masked:     3"), "{text}");
    // The written netlist parses and is itself assessable.
    let again = cli()
        .args(["stats", masked.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(again.status.success());
    let stats_text = String::from_utf8_lossy(&again.stdout);
    assert!(stats_text.contains("mask inputs:  9"), "{stats_text}");
}

#[test]
fn bench_format_accepted() {
    let design = tmp("c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let out = cli()
        .args(["stats", design.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("logic cells:  6"));
}

#[test]
fn rules_and_explain_work_with_bundle() {
    let model = model_path();
    let out = cli()
        .args(["rules", "--model", model.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let design = tmp("demo_explain.v");
    std::fs::write(&design, DEMO).expect("write design");
    let out = cli()
        .args([
            "explain",
            design.to_str().expect("utf8"),
            "--model",
            model.to_str().expect("utf8"),
            "--gate",
            "n0",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P(good masking candidate)"));
    assert!(text.contains("E[f(x)]"));
}

#[test]
fn dist_two_worker_merge_is_byte_identical_to_assess() {
    let design = tmp("dist_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8").to_string();
    let plan = tmp("dist_plan.txt");
    let plan = plan.to_str().expect("utf8").to_string();

    let run_ok = |args: &[&str]| {
        let out = cli().args(args).output().expect("runs");
        assert!(
            out.status.success(),
            "{args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    run_ok(&[
        "dist", "plan", &design, "--traces", "1500", "--seed", "11", "--parts", "2", "--out", &plan,
    ]);
    let manifest = std::fs::read_to_string(&plan).expect("plan written");
    assert!(manifest.starts_with("polaris-dist-plan v1"), "{manifest}");

    let mut shard_paths = Vec::new();
    for part in ["0", "1"] {
        let shard = tmp(&format!("dist_part{part}.shard"));
        let shard = shard.to_str().expect("utf8").to_string();
        run_ok(&[
            "dist", "work", &design, "--plan", &plan, "--part", part, "--out", &shard,
        ]);
        shard_paths.push(shard);
    }

    let merged_csv = tmp("dist_merged.csv");
    let merged_csv = merged_csv.to_str().expect("utf8").to_string();
    let merge_stdout = run_ok(&[
        "dist",
        "merge",
        &design,
        "--plan",
        &plan,
        &shard_paths[0],
        &shard_paths[1],
        "--csv",
        &merged_csv,
    ]);
    assert!(merge_stdout.contains("LEAKY"), "{merge_stdout}");

    let single_csv = tmp("dist_single.csv");
    let single_csv = single_csv.to_str().expect("utf8").to_string();
    run_ok(&[
        "assess",
        &design,
        "--traces",
        "1500",
        "--seed",
        "11",
        "--csv",
        &single_csv,
    ]);
    let merged = std::fs::read_to_string(&merged_csv).expect("merged csv");
    let single = std::fs::read_to_string(&single_csv).expect("single csv");
    assert_eq!(
        merged, single,
        "distributed fold must be byte-identical to the single-process run"
    );
}

#[test]
fn dist_bad_inputs_map_to_distinct_exit_codes() {
    let design = tmp("dist_exit_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8").to_string();
    let plan = tmp("dist_exit_plan.txt");
    let plan = plan.to_str().expect("utf8").to_string();
    let shard = tmp("dist_exit_part0.shard");
    let shard = shard.to_str().expect("utf8").to_string();

    let run = |args: &[&str]| cli().args(args).output().expect("runs");
    assert!(run(&[
        "dist", "plan", &design, "--traces", "600", "--seed", "3", "--parts", "1", "--out", &plan,
    ])
    .status
    .success());
    assert!(
        run(&["dist", "work", &design, "--plan", &plan, "--part", "0", "--out", &shard,])
            .status
            .success()
    );
    let good = std::fs::read(&shard).expect("shard written");

    let merge_code = |path: &str| {
        let out = run(&["dist", "merge", &design, "--plan", &plan, path]);
        assert!(!out.status.success());
        (
            out.status.code().expect("exit code"),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    // Truncated file → 3.
    let trunc = tmp("dist_exit_trunc.shard");
    std::fs::write(&trunc, &good[..good.len() / 2]).expect("write");
    let (code, msg) = merge_code(trunc.to_str().expect("utf8"));
    assert_eq!(code, 3, "{msg}");
    assert!(msg.contains("truncated"), "{msg}");

    // Not a shard-state file at all → 4.
    let garbage = tmp("dist_exit_garbage.shard");
    std::fs::write(&garbage, b"definitely not a shard state").expect("write");
    let (code, msg) = merge_code(garbage.to_str().expect("utf8"));
    assert_eq!(code, 4, "{msg}");
    assert!(msg.contains("magic"), "{msg}");

    // Version skew → 5.
    let skewed = tmp("dist_exit_version.shard");
    let mut bytes = good.clone();
    bytes[8] = 99;
    std::fs::write(&skewed, &bytes).expect("write");
    let (code, msg) = merge_code(skewed.to_str().expect("utf8"));
    assert_eq!(code, 5, "{msg}");
    assert!(msg.contains("version"), "{msg}");

    // Flipped payload byte → 6.
    let corrupt = tmp("dist_exit_corrupt.shard");
    let mut bytes = good.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&corrupt, &bytes).expect("write");
    let (code, msg) = merge_code(corrupt.to_str().expect("utf8"));
    assert_eq!(code, 6, "{msg}");
    assert!(msg.contains("checksum"), "{msg}");

    // Plan mismatch (part from a re-seeded campaign) → 7.
    let other_plan = tmp("dist_exit_plan2.txt");
    let other_plan = other_plan.to_str().expect("utf8").to_string();
    let foreign = tmp("dist_exit_foreign.shard");
    let foreign = foreign.to_str().expect("utf8").to_string();
    assert!(run(&[
        "dist",
        "plan",
        &design,
        "--traces",
        "600",
        "--seed",
        "4",
        "--parts",
        "1",
        "--out",
        &other_plan,
    ])
    .status
    .success());
    assert!(run(&[
        "dist",
        "work",
        &design,
        "--plan",
        &other_plan,
        "--part",
        "0",
        "--out",
        &foreign,
    ])
    .status
    .success());
    let (code, msg) = merge_code(&foreign);
    assert_eq!(code, 7, "{msg}");
    assert!(msg.contains("fingerprint"), "{msg}");
}

#[test]
fn fleet_csvs_are_byte_identical_to_solo_assess() {
    // Two designs assessed as one fleet must emit exactly the CSVs the solo
    // `assess --csv` runs write — the CI fleet smoke's `cmp` contract.
    let c17 = tmp("fleet_c17.bench");
    std::fs::write(&c17, C17_BENCH).expect("write design");
    let demo = tmp("fleet_demo.v");
    std::fs::write(&demo, DEMO).expect("write design");
    let manifest = tmp("fleet_manifest.txt");
    std::fs::write(
        &manifest,
        format!(
            "# fleet smoke\n{}\n\n{}\n",
            c17.to_str().expect("utf8"),
            demo.to_str().expect("utf8")
        ),
    )
    .expect("write manifest");
    let csv_dir = tmp("fleet_csv");
    let run_ok = |args: &[&str]| {
        let out = cli().args(args).output().expect("runs");
        assert!(
            out.status.success(),
            "{args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let stdout = run_ok(&[
        "fleet",
        manifest.to_str().expect("utf8"),
        "--traces",
        "600",
        "--seed",
        "11",
        "--threads",
        "2",
        "--csv-dir",
        csv_dir.to_str().expect("utf8"),
    ]);
    assert!(stdout.contains("LEAKY"), "{stdout}");

    // Two manifest entries mapping to the same CSV name are rejected
    // instead of silently overwriting each other.
    let dup_manifest = tmp("fleet_dup_manifest.txt");
    std::fs::write(
        &dup_manifest,
        format!(
            "{}\n{}\n",
            c17.to_str().expect("utf8"),
            c17.to_str().expect("utf8")
        ),
    )
    .expect("write manifest");
    let dup = cli()
        .args([
            "fleet",
            dup_manifest.to_str().expect("utf8"),
            "--traces",
            "100",
            "--csv-dir",
            csv_dir.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(!dup.status.success());
    assert!(
        String::from_utf8_lossy(&dup.stderr).contains("two designs with the CSV name"),
        "{}",
        String::from_utf8_lossy(&dup.stderr)
    );

    for (design, stem) in [(&c17, "fleet_c17"), (&demo, "fleet_demo")] {
        let solo_csv = tmp(&format!("fleet_solo_{stem}.csv"));
        run_ok(&[
            "assess",
            design.to_str().expect("utf8"),
            "--traces",
            "600",
            "--seed",
            "11",
            "--csv",
            solo_csv.to_str().expect("utf8"),
        ]);
        let fleet_csv = csv_dir.join(format!("{stem}.csv"));
        assert_eq!(
            std::fs::read_to_string(&fleet_csv).expect("fleet csv"),
            std::fs::read_to_string(&solo_csv).expect("solo csv"),
            "{stem}: fleet CSV must be byte-identical to solo assess"
        );
    }
}

#[test]
fn gen_writes_a_parseable_design() {
    let out_path = tmp("gen_c432.bench");
    let out = cli()
        .args([
            "gen",
            "c432",
            "--out",
            out_path.to_str().expect("utf8"),
            "--seed",
            "7",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = cli()
        .args(["stats", out_path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("logic cells:"));

    let bad = cli()
        .args(["gen", "nope", "--out", out_path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown design"));
}

#[test]
fn explain_unknown_gate_errors() {
    let design = tmp("demo_unknown.v");
    std::fs::write(&design, DEMO).expect("write design");
    let out = cli()
        .args([
            "explain",
            design.to_str().expect("utf8"),
            "--model",
            model_path().to_str().expect("utf8"),
            "--gate",
            "nope",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no gate named"));
}

#[test]
fn conflicting_sweep_selectors_are_usage_errors() {
    // `--pairs N` used to be silently ignored whenever `--pair-gates` was
    // also given; both conflicts are now usage errors (exit 2) before any
    // simulation runs.
    let design = tmp("conflict_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8");

    for extra in [
        ["--pairs", "3", "--pair-gates", "5:6"],
        ["--triples", "3", "--triple-gates", "5:6:7"],
    ] {
        let mut args = vec!["assess", design, "--traces", "100"];
        args.extend(extra);
        let out = cli().args(&args).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn degenerate_gate_lists_exit_8() {
    // Self-pairs, duplicate entries and out-of-range indices in explicit
    // gate lists all map to the documented multivariate exit code.
    let design = tmp("degenerate_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8");

    let cases: &[(&str, &str, &str)] = &[
        ("--pair-gates", "3:3", "repeats"),
        ("--pair-gates", "5:6,6:5", "duplicates"),
        ("--pair-gates", "0:999", "out of range"),
        ("--triple-gates", "5:5:6", "repeats"),
        ("--triple-gates", "5:6:7,7:6:5", "duplicates"),
        ("--triple-gates", "0:1:999", "out of range"),
    ];
    for &(flag, list, needle) in cases {
        let out = cli()
            .args(["assess", design, "--traces", "100", flag, list])
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(8), "{flag} {list}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{flag} {list}: {stderr}");
    }
}

#[test]
fn empty_sweep_selection_short_circuits_with_warning() {
    // `--pairs 1` yields zero pairs and `--triples 2` zero triples: both
    // must warn and skip the sweep instead of simulating a whole campaign
    // for nothing, and must not create the CSV file.
    let design = tmp("empty_sweep_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8");

    let pairs_csv = tmp("empty_sweep_pairs.csv");
    let out = cli()
        .args([
            "assess",
            design,
            "--traces",
            "100",
            "--pairs",
            "1",
            "--pairs-csv",
            pairs_csv.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pair selection is empty"), "{stderr}");
    assert!(!stderr.contains("running streaming bivariate"), "{stderr}");
    assert!(!pairs_csv.exists(), "empty sweep must not write a CSV");

    let triples_csv = tmp("empty_sweep_triples.csv");
    let out = cli()
        .args([
            "assess",
            design,
            "--traces",
            "100",
            "--triples",
            "2",
            "--triples-csv",
            triples_csv.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("triple selection is empty"), "{stderr}");
    assert!(!stderr.contains("running streaming trivariate"), "{stderr}");
    assert!(!triples_csv.exists(), "empty sweep must not write a CSV");
}

#[test]
fn hand_edited_degenerate_plan_lists_exit_8() {
    // A plan manifest whose gate list is edited to a self-pair (or
    // self-triple) after planning must fail worker- and merge-side with the
    // multivariate exit code, not run to a misleading merge.
    let design = tmp("edited_plan_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8");

    for (sink, flag, good, bad) in [
        ("pairs", "--pair-gates", "5:6", "3:3"),
        ("triples", "--triple-gates", "5:6:7", "3:3:7"),
    ] {
        let plan = tmp(&format!("edited_plan_{sink}.txt"));
        let plan_str = plan.to_str().expect("utf8");
        let out = cli()
            .args([
                "dist", "plan", design, "--traces", "200", "--parts", "1", "--out", plan_str,
                "--sink", sink, flag, good,
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let manifest = std::fs::read_to_string(&plan).expect("manifest");
        std::fs::write(&plan, manifest.replace(good, bad)).expect("edit manifest");
        let shard = tmp(&format!("edited_plan_{sink}.shard"));
        let out = cli()
            .args([
                "dist",
                "work",
                design,
                "--plan",
                plan_str,
                "--part",
                "0",
                "--out",
                shard.to_str().expect("utf8"),
            ])
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(8), "{sink}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("invalid gate list"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Planning with a degenerate list never succeeds in the first place.
    let plan = tmp("edited_plan_reject.txt");
    let out = cli()
        .args([
            "dist",
            "plan",
            design,
            "--traces",
            "200",
            "--parts",
            "1",
            "--out",
            plan.to_str().expect("utf8"),
            "--sink",
            "pairs",
            "--pair-gates",
            "6:6",
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(8));
}

#[test]
fn dist_triples_merge_is_byte_identical_to_assess() {
    // A 2-worker trivariate dist fold must write the exact CSV a
    // single-process `assess --triple-gates` writes — the trivariate CI
    // smoke's `cmp` contract.
    let design = tmp("dist_triples_c17.bench");
    std::fs::write(&design, C17_BENCH).expect("write design");
    let design = design.to_str().expect("utf8").to_string();
    let plan = tmp("dist_triples_plan.txt");
    let plan = plan.to_str().expect("utf8").to_string();
    let triples = "5:6:7,5:6:8,8:9:10";

    let run_ok = |args: &[&str]| {
        let out = cli().args(args).output().expect("runs");
        assert!(
            out.status.success(),
            "{args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    run_ok(&[
        "dist",
        "plan",
        &design,
        "--traces",
        "900",
        "--seed",
        "11",
        "--parts",
        "2",
        "--out",
        &plan,
        "--sink",
        "triples",
        "--triple-gates",
        triples,
    ]);
    let mut shard_paths = Vec::new();
    for part in ["0", "1"] {
        let shard = tmp(&format!("dist_triples_part{part}.shard"));
        let shard = shard.to_str().expect("utf8").to_string();
        run_ok(&[
            "dist", "work", &design, "--plan", &plan, "--part", part, "--out", &shard,
        ]);
        shard_paths.push(shard);
    }
    let merged_csv = tmp("dist_triples_merged.csv");
    let merged_csv = merged_csv.to_str().expect("utf8").to_string();
    let merge_stdout = run_ok(&[
        "dist",
        "merge",
        &design,
        "--plan",
        &plan,
        &shard_paths[0],
        &shard_paths[1],
        "--csv",
        &merged_csv,
    ]);
    assert!(merge_stdout.contains("gate triples:  3"), "{merge_stdout}");

    let single_csv = tmp("dist_triples_single.csv");
    let single_csv = single_csv.to_str().expect("utf8").to_string();
    run_ok(&[
        "assess",
        &design,
        "--traces",
        "900",
        "--seed",
        "11",
        "--triple-gates",
        triples,
        "--triples-csv",
        &single_csv,
    ]);
    let merged = std::fs::read_to_string(&merged_csv).expect("merged csv");
    let single = std::fs::read_to_string(&single_csv).expect("single csv");
    assert!(
        merged.starts_with("gate_a,name_a,gate_b,name_b,gate_c,name_c,t,leaky"),
        "{merged}"
    );
    assert_eq!(
        merged, single,
        "distributed trivariate fold must be byte-identical to the single-process run"
    );
}
