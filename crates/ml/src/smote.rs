//! SMOTE — Synthetic Minority Over-sampling TEchnique (Chawla et al., JAIR
//! 2002), the imbalance handler the paper pairs with Random Forest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, DatasetError};

/// SMOTE parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct SmoteConfig {
    /// Neighbors considered per minority sample.
    pub k_neighbors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmoteConfig {
    fn default() -> Self {
        SmoteConfig {
            k_neighbors: 5,
            seed: 0,
        }
    }
}

/// Oversamples the minority class with synthetic interpolated samples until
/// the classes are balanced, returning a new dataset (original rows first).
///
/// Each synthetic sample is `x + u · (neighbor − x)` for a uniform
/// `u ∈ [0, 1]` and a random one of the `k` nearest minority neighbors.
///
/// # Errors
///
/// Returns [`DatasetError::Empty`] if either class is absent (nothing to
/// balance toward) or the dataset is empty.
pub fn smote(data: &Dataset, config: &SmoteConfig) -> Result<Dataset, DatasetError> {
    if data.is_empty() {
        return Err(DatasetError::Empty);
    }
    let (neg, pos) = data.class_counts();
    if neg == 0 || pos == 0 {
        return Err(DatasetError::Empty);
    }
    let minority_label = u8::from(pos < neg);
    let (n_min, n_maj) = if minority_label == 1 {
        (pos, neg)
    } else {
        (neg, pos)
    };
    let deficit = n_maj - n_min;

    let mut out = data.clone();
    if deficit == 0 || n_min < 2 {
        return Ok(out);
    }

    let minority: Vec<usize> = (0..data.len())
        .filter(|&i| data.label(i) == minority_label)
        .collect();

    // k nearest minority neighbors per minority sample (Euclidean).
    let k = config.k_neighbors.min(minority.len() - 1).max(1);
    let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(minority.len());
    for &i in &minority {
        let xi = data.row(i);
        let mut dists: Vec<(f64, usize)> = minority
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| {
                let xj = data.row(j);
                let d: f64 = xi
                    .iter()
                    .zip(xj)
                    .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                    .sum();
                (d, j)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        neighbors.push(dists.into_iter().take(k).map(|(_, j)| j).collect());
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut synth_row = vec![0.0f32; data.n_features()];
    for s in 0..deficit {
        let mi = s % minority.len();
        let i = minority[mi];
        let nbrs = &neighbors[mi];
        let j = nbrs[rng.gen_range(0..nbrs.len())];
        let u: f32 = rng.gen();
        for (c, slot) in synth_row.iter_mut().enumerate() {
            let a = data.row(i)[c];
            let b = data.row(j)[c];
            *slot = a + u * (b - a);
        }
        out.push(&synth_row, minority_label)
            .expect("widths match by construction");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imbalanced(n_min: usize, n_maj: usize) -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n_maj {
            d.push(&[(i % 10) as f32, 0.0], 0).unwrap();
        }
        for i in 0..n_min {
            d.push(&[5.0 + (i % 3) as f32, 10.0 + (i % 2) as f32], 1)
                .unwrap();
        }
        d
    }

    #[test]
    fn balances_classes() {
        let d = imbalanced(10, 90);
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        let (neg, pos) = s.class_counts();
        assert_eq!(neg, pos);
        assert_eq!(s.len(), 180);
    }

    #[test]
    fn synthetic_samples_lie_in_minority_hull() {
        let d = imbalanced(10, 50);
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        // Minority features live in a=[5,7], b=[10,11]; synthetics must too
        // (convex combinations).
        for i in d.len()..s.len() {
            let r = s.row(i);
            assert!(s.label(i) == 1);
            assert!((5.0..=7.0).contains(&r[0]), "a = {}", r[0]);
            assert!((10.0..=11.0).contains(&r[1]), "b = {}", r[1]);
        }
    }

    #[test]
    fn original_rows_preserved() {
        let d = imbalanced(5, 20);
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        for i in 0..d.len() {
            assert_eq!(s.row(i), d.row(i));
            assert_eq!(s.label(i), d.label(i));
        }
    }

    #[test]
    fn already_balanced_is_identity() {
        let d = imbalanced(20, 20);
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        assert_eq!(s.len(), d.len());
    }

    #[test]
    fn deterministic() {
        let d = imbalanced(8, 40);
        let a = smote(
            &d,
            &SmoteConfig {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let b = smote(
            &d,
            &SmoteConfig {
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_rejected() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push(&[1.0], 1).unwrap();
        d.push(&[2.0], 1).unwrap();
        assert!(smote(&d, &SmoteConfig::default()).is_err());
    }

    #[test]
    fn minority_of_one_copies_nothing_weird() {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..10 {
            d.push(&[i as f32], 0).unwrap();
        }
        d.push(&[100.0], 1).unwrap();
        // n_min < 2: no neighbors to interpolate with; dataset returned as-is.
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        assert_eq!(s.len(), d.len());
    }

    #[test]
    fn majority_can_be_class_one() {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..30 {
            d.push(&[i as f32], 1).unwrap();
        }
        for i in 0..6 {
            d.push(&[100.0 + i as f32], 0).unwrap();
        }
        let s = smote(&d, &SmoteConfig::default()).unwrap();
        let (neg, pos) = s.class_counts();
        assert_eq!(neg, pos);
    }
}
