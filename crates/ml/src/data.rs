//! Dense binary-labelled datasets.

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Error raised on malformed dataset operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatasetError {
    /// A pushed row's width differs from the feature count.
    WidthMismatch {
        /// Expected feature count.
        expected: usize,
        /// Width of the offending row.
        found: usize,
    },
    /// An operation required a nonempty dataset.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::WidthMismatch { expected, found } => {
                write!(f, "row has {found} features, dataset expects {expected}")
            }
            DatasetError::Empty => write!(f, "operation requires a nonempty dataset"),
        }
    }
}

impl Error for DatasetError {}

/// A dense feature matrix with binary labels and named columns.
///
/// Row-major storage; labels are `0` / `1` (the paper's "bad" / "good"
/// masking labels from Algorithm 1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    x: Vec<f32>,
    y: Vec<u8>,
}

impl Dataset {
    /// Creates an empty dataset with the given column names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends one labelled row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WidthMismatch`] if `row.len()` differs from
    /// the feature count.
    pub fn push(&mut self, row: &[f32], label: u8) -> Result<(), DatasetError> {
        if row.len() != self.feature_names.len() {
            return Err(DatasetError::WidthMismatch {
                expected: self.feature_names.len(),
                found: row.len(),
            });
        }
        self.x.extend_from_slice(row);
        self.y.push(u8::from(label != 0));
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One row's features.
    pub fn row(&self, i: usize) -> &[f32] {
        let w = self.n_features();
        &self.x[i * w..(i + 1) * w]
    }

    /// One row's label.
    pub fn label(&self, i: usize) -> u8 {
        self.y[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.y
    }

    /// `(negatives, positives)` counts.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|&&l| l == 1).count();
        (self.y.len() - pos, pos)
    }

    /// Per-sample weights balancing the classes: each class receives total
    /// weight `len / 2` (the "weighted training" the paper applies to
    /// XGBoost and AdaBoost to counter the θr-induced imbalance).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] on an empty dataset.
    pub fn balanced_weights(&self) -> Result<Vec<f64>, DatasetError> {
        if self.is_empty() {
            return Err(DatasetError::Empty);
        }
        let (neg, pos) = self.class_counts();
        let n = self.len() as f64;
        let w_pos = if pos == 0 {
            0.0
        } else {
            n / (2.0 * pos as f64)
        };
        let w_neg = if neg == 0 {
            0.0
        } else {
            n / (2.0 * neg as f64)
        };
        Ok(self
            .y
            .iter()
            .map(|&l| if l == 1 { w_pos } else { w_neg })
            .collect())
    }

    /// Stratified split into `(train, test)` with `test_fraction` of each
    /// class in the test set. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] on an empty dataset.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `(0, 1)`.
    pub fn stratified_split(
        &self,
        test_fraction: f64,
        seed: u64,
    ) -> Result<(Dataset, Dataset), DatasetError> {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must lie in (0, 1)"
        );
        if self.is_empty() {
            return Err(DatasetError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for class in [0u8, 1u8] {
            let mut idx: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == class).collect();
            idx.shuffle(&mut rng);
            let n_test = ((idx.len() as f64) * test_fraction).round() as usize;
            for (k, &i) in idx.iter().enumerate() {
                let target = if k < n_test { &mut test } else { &mut train };
                target
                    .push(self.row(i), self.y[i])
                    .expect("widths match by construction");
            }
        }
        Ok((train, test))
    }

    /// Concatenates another dataset with identical columns.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::WidthMismatch`] if the feature counts differ.
    pub fn extend(&mut self, other: &Dataset) -> Result<(), DatasetError> {
        if other.n_features() != self.n_features() {
            return Err(DatasetError::WidthMismatch {
                expected: self.n_features(),
                found: other.n_features(),
            });
        }
        self.x.extend_from_slice(&other.x);
        self.y.extend_from_slice(&other.y);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new(vec!["f0".into(), "f1".into()]);
        for i in 0..n_pos {
            d.push(&[i as f32, 1.0], 1).unwrap();
        }
        for i in 0..n_neg {
            d.push(&[i as f32, 0.0], 0).unwrap();
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy(3, 5);
        assert_eq!(d.len(), 8);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(0), &[0.0, 1.0]);
        assert_eq!(d.label(0), 1);
        assert_eq!(d.class_counts(), (5, 3));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut d = toy(1, 1);
        let e = d.push(&[1.0], 0).unwrap_err();
        assert!(matches!(
            e,
            DatasetError::WidthMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn balanced_weights_sum_equally_per_class() {
        let d = toy(2, 8);
        let w = d.balanced_weights().unwrap();
        let pos_sum: f64 = (0..d.len())
            .filter(|&i| d.label(i) == 1)
            .map(|i| w[i])
            .sum();
        let neg_sum: f64 = (0..d.len())
            .filter(|&i| d.label(i) == 0)
            .map(|i| w[i])
            .sum();
        assert!((pos_sum - neg_sum).abs() < 1e-9);
        assert!((pos_sum + neg_sum - d.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn stratified_split_preserves_ratio() {
        let d = toy(20, 80);
        let (train, test) = d.stratified_split(0.25, 7).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        let (tn, tp) = test.class_counts();
        assert_eq!(tp, 5);
        assert_eq!(tn, 20);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(10, 30);
        let a = d.stratified_split(0.3, 42).unwrap();
        let b = d.stratified_split(0.3, 42).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["a".into()]);
        assert!(matches!(d.balanced_weights(), Err(DatasetError::Empty)));
        assert!(matches!(
            d.stratified_split(0.5, 0),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn labels_normalized_to_01() {
        let mut d = Dataset::new(vec!["a".into()]);
        d.push(&[0.0], 7).unwrap();
        assert_eq!(d.label(0), 1);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = toy(2, 2);
        let b = toy(1, 1);
        a.extend(&b).unwrap();
        assert_eq!(a.len(), 6);
    }
}
