//! Gradient-boosted decision trees with second-order (gradient + hessian)
//! split finding and regularized leaf weights — the "XGBoost" column of the
//! paper's Table III.

use crate::data::Dataset;
use crate::tree::{Tree, TreeNode};
use crate::{sigmoid, Classifier, TreeEnsemble};

/// GBDT hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage η (the paper sets α = 0.01).
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_estimators: 80,
            learning_rate: 0.3,
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1e-3,
        }
    }
}

/// A fitted gradient-boosted ensemble for binary logistic loss.
#[derive(Clone, Debug)]
pub struct GradientBoost {
    base_margin: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
}

impl GradientBoost {
    /// Fits with uniform sample weights.
    ///
    /// # Errors
    ///
    /// Returns an error string on empty or single-class data.
    pub fn fit(data: &Dataset, config: &GbdtConfig) -> Result<Self, String> {
        let w = vec![1.0; data.len()];
        Self::fit_weighted(data, &w, config)
    }

    /// Fits with per-sample weights (class balancing).
    ///
    /// # Errors
    ///
    /// Returns an error string on empty/single-class data or weight-length
    /// mismatch.
    pub fn fit_weighted(
        data: &Dataset,
        weights: &[f64],
        config: &GbdtConfig,
    ) -> Result<Self, String> {
        if data.is_empty() {
            return Err("gbdt: empty dataset".into());
        }
        if weights.len() != data.len() {
            return Err("gbdt: weight/row count mismatch".into());
        }
        let (neg, pos) = data.class_counts();
        if neg == 0 || pos == 0 {
            return Err("gbdt: need both classes present".into());
        }

        // Weighted base rate in margin (log-odds) space.
        let wp: f64 = (0..data.len())
            .filter(|&i| data.label(i) == 1)
            .map(|i| weights[i])
            .sum();
        let wt: f64 = weights.iter().sum();
        let p0 = (wp / wt).clamp(1e-6, 1.0 - 1e-6);
        let base_margin = (p0 / (1.0 - p0)).ln();

        let mut margins = vec![base_margin; data.len()];
        let mut trees = Vec::with_capacity(config.n_estimators);
        let mut grad = vec![0.0f64; data.len()];
        let mut hess = vec![0.0f64; data.len()];
        for _ in 0..config.n_estimators {
            for i in 0..data.len() {
                let p = sigmoid(margins[i]);
                grad[i] = weights[i] * (p - f64::from(data.label(i)));
                hess[i] = (weights[i] * p * (1.0 - p)).max(1e-12);
            }
            let idx: Vec<u32> = (0..data.len() as u32).collect();
            let mut nodes = Vec::new();
            build_gh(data, &grad, &hess, config, idx, 0, &mut nodes);
            let tree = Tree::from_nodes(nodes);
            for (i, m) in margins.iter_mut().enumerate() {
                *m += config.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        Ok(GradientBoost {
            base_margin,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Number of trees fitted.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Reconstructs an ensemble from its parts — the inverse of
    /// [`crate::persist`] encoding.
    pub fn from_parts(base_margin: f64, learning_rate: f64, trees: Vec<Tree>) -> Self {
        GradientBoost {
            base_margin,
            learning_rate,
            trees,
        }
    }
}

/// Recursive second-order tree builder; returns the subtree root index.
fn build_gh(
    data: &Dataset,
    grad: &[f64],
    hess: &[f64],
    config: &GbdtConfig,
    idx: Vec<u32>,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let (g_total, h_total) = idx.iter().fold((0.0f64, 0.0f64), |(g, h), &i| {
        (g + grad[i as usize], h + hess[i as usize])
    });
    let leaf_value = -g_total / (h_total + config.lambda);
    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        let id = nodes.len();
        nodes.push(TreeNode::Leaf {
            value: leaf_value,
            cover: h_total,
        });
        id
    };
    if depth >= config.max_depth || idx.len() < 2 {
        return make_leaf(nodes);
    }

    // Exact greedy split on every feature.
    let score = |g: f64, h: f64| g * g / (h + config.lambda);
    let parent_score = score(g_total, h_total);
    let mut best: Option<(f64, usize, f32)> = None;
    let mut pairs: Vec<(f32, f64, f64)> = Vec::with_capacity(idx.len());
    for f in 0..data.n_features() {
        pairs.clear();
        pairs.extend(idx.iter().map(|&i| {
            let i = i as usize;
            (data.row(i)[f], grad[i], hess[i])
        }));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut gl = 0.0f64;
        let mut hl = 0.0f64;
        for k in 0..pairs.len() - 1 {
            let (v, g, h) = pairs[k];
            gl += g;
            hl += h;
            if v == pairs[k + 1].0 {
                continue;
            }
            let hr = h_total - hl;
            if hl < config.min_child_weight || hr < config.min_child_weight {
                continue;
            }
            let gain =
                0.5 * (score(gl, hl) + score(g_total - gl, hr) - parent_score) - config.gamma;
            // With γ = 0, zero-gain splits are accepted so XOR-like
            // interactions (zero first-order gain) remain learnable.
            if gain > -1e-9 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, v + (pairs[k + 1].0 - v) / 2.0));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes);
    };
    let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
        .into_iter()
        .partition(|&i| data.row(i as usize)[feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return make_leaf(nodes);
    }
    let id = nodes.len();
    nodes.push(TreeNode::Internal {
        feature,
        threshold,
        left: 0,
        right: 0,
        cover: h_total,
    });
    let l = build_gh(data, grad, hess, config, left_idx, depth + 1, nodes);
    let r = build_gh(data, grad, hess, config, right_idx, depth + 1, nodes);
    if let TreeNode::Internal { left, right, .. } = &mut nodes[id] {
        *left = l;
        *right = r;
    }
    id
}

impl Classifier for GradientBoost {
    fn predict_proba(&self, x: &[f32]) -> f64 {
        sigmoid(self.margin(x))
    }
}

impl TreeEnsemble for GradientBoost {
    fn weighted_trees(&self) -> Vec<(f64, &Tree)> {
        self.trees.iter().map(|t| (self.learning_rate, t)).collect()
    }

    fn base_margin(&self) -> f64 {
        self.base_margin
    }

    fn margin_to_proba(&self, margin: f64) -> f64 {
        sigmoid(margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..200u32 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            d.push(&[a, b], u8::from(a != b)).unwrap();
        }
        d
    }

    #[test]
    fn solves_xor() {
        let m = GradientBoost::fit(&xor_data(), &GbdtConfig::default()).unwrap();
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
        assert_eq!(m.predict(&[0.0, 1.0]), 1);
        assert_eq!(m.predict(&[1.0, 0.0]), 1);
        assert_eq!(m.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    fn margin_decomposes_over_trees() {
        let m = GradientBoost::fit(&xor_data(), &GbdtConfig::default()).unwrap();
        let x = [0.0f32, 1.0];
        let manual: f64 = m.base_margin()
            + m.weighted_trees()
                .iter()
                .map(|(w, t)| w * t.predict(&x))
                .sum::<f64>();
        assert!((m.margin(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let d = xor_data();
        let short = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 2,
                learning_rate: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let long = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 60,
                learning_rate: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let err = |m: &GradientBoost| {
            (0..d.len())
                .filter(|&i| m.predict(d.row(i)) != d.label(i))
                .count()
        };
        assert!(err(&long) <= err(&short));
        assert_eq!(err(&long), 0);
    }

    #[test]
    fn lambda_shrinks_leaves() {
        let d = xor_data();
        let relaxed = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 1,
                lambda: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let regularized = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 1,
                lambda: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        let leaf_mag = |m: &GradientBoost| {
            m.trees[0]
                .nodes()
                .iter()
                .filter_map(|n| match n {
                    TreeNode::Leaf { value, .. } => Some(value.abs()),
                    _ => None,
                })
                .fold(0.0, f64::max)
        };
        assert!(leaf_mag(&regularized) < leaf_mag(&relaxed));
    }

    #[test]
    fn gamma_prunes_splits() {
        let d = xor_data();
        let free = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 1,
                gamma: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let pruned = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 1,
                gamma: 1e9,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pruned.trees[0].n_leaves() < free.trees[0].n_leaves());
        assert_eq!(pruned.trees[0].n_leaves(), 1);
    }

    #[test]
    fn rejects_degenerate_data() {
        let empty = Dataset::new(vec!["a".into()]);
        assert!(GradientBoost::fit(&empty, &Default::default()).is_err());
        let mut single = Dataset::new(vec!["a".into()]);
        single.push(&[0.0], 0).unwrap();
        assert!(GradientBoost::fit(&single, &Default::default()).is_err());
    }

    #[test]
    fn weighted_fit_moves_boundary() {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..80 {
            d.push(&[(i % 8) as f32 / 10.0], 0).unwrap();
        }
        for i in 0..20 {
            d.push(&[0.8 + (i % 2) as f32 / 10.0], 1).unwrap();
        }
        let w = d.balanced_weights().unwrap();
        let m = GradientBoost::fit_weighted(&d, &w, &Default::default()).unwrap();
        assert_eq!(m.predict(&[0.85]), 1);
        assert_eq!(m.predict(&[0.2]), 0);
    }

    #[test]
    fn base_margin_matches_prior() {
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..100 {
            // 25% positive, features carry no signal.
            d.push(&[0.0], u8::from(i % 4 == 0)).unwrap();
        }
        let m = GradientBoost::fit(
            &d,
            &GbdtConfig {
                n_estimators: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((sigmoid(m.base_margin()) - 0.25).abs() < 1e-9);
    }
}
