//! Binary-classification metrics.

/// Confusion-matrix counts at a 0.5 threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the matrix from hard predictions.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_predictions(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t != 0, p != 0) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Area under the ROC curve by the rank statistic (ties handled with
/// midranks). Returns 0.5 when one class is absent.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn roc_auc(y_true: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let pos = y_true.iter().filter(|&&y| y != 0).count();
    let neg = y_true.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Midrank assignment.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = rank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&y, _)| y != 0)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - (pos * (pos + 1)) as f64 / 2.0) / (pos * neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let c = Confusion::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [0u8, 0, 1, 1];
        assert!((roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        let y = [0u8, 1, 0, 1];
        assert!((roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6, 0.8>0.2,
        // 0.4>0.2) = 3 of 4 → AUC 0.75.
        let y = [1u8, 0, 1, 0];
        let s = [0.8, 0.6, 0.4, 0.2];
        assert!((roc_auc(&y, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1, 1], &[0.1, 0.9]), 0.5);
    }
}
