//! Plain-text model persistence.
//!
//! A deliberately simple line-oriented format (no binary, no external
//! serialization crates) so trained POLARIS models can be saved, diffed and
//! audited — explainability extends to the artifact itself. All floats are
//! round-tripped via their shortest exact decimal representation.

use std::fmt::Write as _;

use crate::adaboost::AdaBoost;
use crate::forest::RandomForest;
use crate::gbdt::GradientBoost;
use crate::tree::{Tree, TreeNode};

/// Error raised when decoding a persisted model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line number of the problem (0 = structural).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model decode error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for PersistError {}

fn err(line: usize, message: impl Into<String>) -> PersistError {
    PersistError {
        line,
        message: message.into(),
    }
}

/// Line-cursor over the persisted text.
pub struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    /// Starts reading from `text`.
    pub fn new(text: &'a str) -> Self {
        Lines {
            iter: text.lines().enumerate(),
        }
    }

    /// Next non-empty, non-comment line with its 1-based number.
    pub fn next_line(&mut self) -> Result<(usize, &'a str), PersistError> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Ok((i + 1, line));
        }
        Err(err(0, "unexpected end of model text"))
    }
}

fn parse_field<T: std::str::FromStr>(
    line_no: usize,
    field: Option<&str>,
    what: &str,
) -> Result<T, PersistError> {
    field
        .ok_or_else(|| err(line_no, format!("missing {what}")))?
        .parse()
        .map_err(|_| err(line_no, format!("malformed {what}")))
}

/// Encodes one tree.
pub fn encode_tree(tree: &Tree, out: &mut String) {
    let _ = writeln!(out, "tree {}", tree.nodes().len());
    for node in tree.nodes() {
        match node {
            TreeNode::Leaf { value, cover } => {
                let _ = writeln!(out, "L {value} {cover}");
            }
            TreeNode::Internal {
                feature,
                threshold,
                left,
                right,
                cover,
            } => {
                let _ = writeln!(out, "I {feature} {threshold} {left} {right} {cover}");
            }
        }
    }
}

/// Decodes one tree.
///
/// # Errors
///
/// Returns [`PersistError`] on malformed input.
pub fn decode_tree(lines: &mut Lines<'_>) -> Result<Tree, PersistError> {
    let (ln, header) = lines.next_line()?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("tree") {
        return Err(err(ln, "expected `tree <n>` header"));
    }
    let n: usize = parse_field(ln, parts.next(), "node count")?;
    if n == 0 {
        return Err(err(ln, "tree must have at least one node"));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let (ln, line) = lines.next_line()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("L") => {
                let value: f64 = parse_field(ln, parts.next(), "leaf value")?;
                let cover: f64 = parse_field(ln, parts.next(), "leaf cover")?;
                nodes.push(TreeNode::Leaf { value, cover });
            }
            Some("I") => {
                let feature: usize = parse_field(ln, parts.next(), "feature")?;
                let threshold: f32 = parse_field(ln, parts.next(), "threshold")?;
                let left: usize = parse_field(ln, parts.next(), "left child")?;
                let right: usize = parse_field(ln, parts.next(), "right child")?;
                let cover: f64 = parse_field(ln, parts.next(), "cover")?;
                if left >= n || right >= n {
                    return Err(err(ln, "child index out of range"));
                }
                nodes.push(TreeNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                    cover,
                });
            }
            _ => return Err(err(ln, "expected `L` or `I` node line")),
        }
    }
    Ok(Tree::from_nodes(nodes))
}

/// A weighted-tree ensemble in transit: the common denominator all three
/// model families serialize through.
#[derive(Clone, Debug, PartialEq)]
pub struct EnsembleData {
    /// Family tag: `random_forest`, `gbdt`, or `adaboost`.
    pub family: String,
    /// Margin-space bias.
    pub base_margin: f64,
    /// `(weight, tree)` stages.
    pub stages: Vec<(f64, Tree)>,
}

/// Encodes an ensemble.
pub fn encode_ensemble(data: &EnsembleData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ensemble {} {} {}",
        data.family,
        data.base_margin,
        data.stages.len()
    );
    for (w, tree) in &data.stages {
        let _ = writeln!(out, "stage {w}");
        encode_tree(tree, &mut out);
    }
    out
}

/// Decodes an ensemble.
///
/// # Errors
///
/// Returns [`PersistError`] on malformed input.
pub fn decode_ensemble(lines: &mut Lines<'_>) -> Result<EnsembleData, PersistError> {
    let (ln, header) = lines.next_line()?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("ensemble") {
        return Err(err(ln, "expected `ensemble <family> <base> <n>` header"));
    }
    let family: String = parse_field(ln, parts.next(), "family")?;
    let base_margin: f64 = parse_field(ln, parts.next(), "base margin")?;
    let n: usize = parse_field(ln, parts.next(), "stage count")?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        let (ln, line) = lines.next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("stage") {
            return Err(err(ln, "expected `stage <weight>`"));
        }
        let w: f64 = parse_field(ln, parts.next(), "stage weight")?;
        stages.push((w, decode_tree(lines)?));
    }
    Ok(EnsembleData {
        family,
        base_margin,
        stages,
    })
}

impl AdaBoost {
    /// Extracts the persistable representation.
    pub fn to_data(&self) -> EnsembleData {
        EnsembleData {
            family: "adaboost".into(),
            base_margin: 0.0,
            stages: crate::TreeEnsemble::weighted_trees(self)
                .into_iter()
                .map(|(w, t)| (w, t.clone()))
                .collect(),
        }
    }

    /// Rebuilds from persisted data.
    ///
    /// # Errors
    ///
    /// Returns an error when the family tag mismatches.
    pub fn from_data(data: EnsembleData) -> Result<Self, PersistError> {
        if data.family != "adaboost" {
            return Err(err(0, format!("expected adaboost, found {}", data.family)));
        }
        Ok(AdaBoost::from_stages(data.stages))
    }
}

impl GradientBoost {
    /// Extracts the persistable representation.
    pub fn to_data(&self) -> EnsembleData {
        let stages = crate::TreeEnsemble::weighted_trees(self);
        EnsembleData {
            family: "gbdt".into(),
            base_margin: crate::TreeEnsemble::base_margin(self),
            stages: stages.into_iter().map(|(w, t)| (w, t.clone())).collect(),
        }
    }

    /// Rebuilds from persisted data.
    ///
    /// # Errors
    ///
    /// Returns an error when the family tag mismatches or stage weights are
    /// inconsistent (GBDT uses one shared learning rate).
    pub fn from_data(data: EnsembleData) -> Result<Self, PersistError> {
        if data.family != "gbdt" {
            return Err(err(0, format!("expected gbdt, found {}", data.family)));
        }
        let lr = data.stages.first().map_or(1.0, |(w, _)| *w);
        if data.stages.iter().any(|(w, _)| (*w - lr).abs() > 1e-12) {
            return Err(err(0, "gbdt stages must share one learning rate"));
        }
        Ok(GradientBoost::from_parts(
            data.base_margin,
            lr,
            data.stages.into_iter().map(|(_, t)| t).collect(),
        ))
    }
}

impl RandomForest {
    /// Extracts the persistable representation.
    pub fn to_data(&self) -> EnsembleData {
        EnsembleData {
            family: "random_forest".into(),
            base_margin: 0.0,
            stages: crate::TreeEnsemble::weighted_trees(self)
                .into_iter()
                .map(|(w, t)| (w, t.clone()))
                .collect(),
        }
    }

    /// Rebuilds from persisted data.
    ///
    /// # Errors
    ///
    /// Returns an error when the family tag mismatches.
    pub fn from_data(data: EnsembleData) -> Result<Self, PersistError> {
        if data.family != "random_forest" {
            return Err(err(
                0,
                format!("expected random_forest, found {}", data.family),
            ));
        }
        Ok(RandomForest::from_trees(
            data.stages.into_iter().map(|(_, t)| t).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaboost::AdaBoostConfig;
    use crate::data::Dataset;
    use crate::forest::ForestConfig;
    use crate::gbdt::GbdtConfig;
    use crate::{Classifier, TreeEnsemble};

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..200u32 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            d.push(&[a, b], u8::from(a != b)).unwrap();
        }
        d
    }

    fn probe_points() -> Vec<[f32; 2]> {
        vec![[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0], [0.5, 0.3]]
    }

    #[test]
    fn tree_roundtrip() {
        let d = xor_data();
        let model = AdaBoost::fit(&d, &AdaBoostConfig::default()).unwrap();
        let (_, tree) = &model.to_data().stages[0];
        let mut text = String::new();
        encode_tree(tree, &mut text);
        let back = decode_tree(&mut Lines::new(&text)).unwrap();
        assert_eq!(tree, &back);
    }

    #[test]
    fn adaboost_roundtrip_preserves_predictions() {
        let d = xor_data();
        let model = AdaBoost::fit(&d, &AdaBoostConfig::default()).unwrap();
        let text = encode_ensemble(&model.to_data());
        let back = AdaBoost::from_data(decode_ensemble(&mut Lines::new(&text)).unwrap()).unwrap();
        for p in probe_points() {
            assert_eq!(model.margin(&p), back.margin(&p));
            assert_eq!(model.predict_proba(&p), back.predict_proba(&p));
        }
    }

    #[test]
    fn gbdt_roundtrip_preserves_predictions() {
        let d = xor_data();
        let model = GradientBoost::fit(&d, &GbdtConfig::default()).unwrap();
        let text = encode_ensemble(&model.to_data());
        let back =
            GradientBoost::from_data(decode_ensemble(&mut Lines::new(&text)).unwrap()).unwrap();
        for p in probe_points() {
            assert_eq!(model.margin(&p), back.margin(&p));
        }
    }

    #[test]
    fn forest_roundtrip_preserves_predictions() {
        let d = xor_data();
        let model = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 9,
                ..Default::default()
            },
        );
        let text = encode_ensemble(&model.to_data());
        let back =
            RandomForest::from_data(decode_ensemble(&mut Lines::new(&text)).unwrap()).unwrap();
        for p in probe_points() {
            assert_eq!(model.predict_proba(&p), back.predict_proba(&p));
        }
    }

    #[test]
    fn family_mismatch_detected() {
        let d = xor_data();
        let model = AdaBoost::fit(&d, &AdaBoostConfig::default()).unwrap();
        let text = encode_ensemble(&model.to_data());
        let data = decode_ensemble(&mut Lines::new(&text)).unwrap();
        assert!(GradientBoost::from_data(data).is_err());
    }

    #[test]
    fn malformed_input_rejected() {
        for bad in [
            "",
            "tree",
            "tree 1\nX 1 2",
            "tree 2\nI 0 0.5 5 9 1.0\nL 1 1",
            "ensemble adaboost nan_count",
        ] {
            let mut lines = Lines::new(bad);
            assert!(
                decode_tree(&mut lines).is_err() || decode_ensemble(&mut Lines::new(bad)).is_err(),
                "accepted malformed input: {bad:?}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let d = xor_data();
        let model = AdaBoost::fit(&d, &AdaBoostConfig::default()).unwrap();
        let text = encode_ensemble(&model.to_data());
        let commented = format!("# saved model\n\n{text}");
        let back =
            AdaBoost::from_data(decode_ensemble(&mut Lines::new(&commented)).unwrap()).unwrap();
        assert_eq!(model.margin(&[1.0, 0.0]), back.margin(&[1.0, 0.0]));
    }
}
