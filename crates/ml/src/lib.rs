//! From-scratch machine-learning substrate for POLARIS.
//!
//! The paper compares three models on the cognition dataset (Table III):
//! Random Forest (with SMOTE oversampling), XGBoost-style gradient boosting
//! and AdaBoost (both with weighted training), learning rate 0.01. No ML
//! dependencies exist offline, so this crate implements them:
//!
//! * [`data`] — dense [`Dataset`] with stratified splitting and class
//!   weighting.
//! * [`tree`] — weighted CART decision trees on a shared [`Tree`]
//!   representation that the SHAP crate can traverse.
//! * [`forest`] — bootstrap-aggregated random forests.
//! * [`adaboost`] — SAMME discrete AdaBoost with a learning rate.
//! * [`gbdt`] — second-order (gradient + hessian) boosted trees with
//!   regularized leaf weights, XGBoost style.
//! * [`smote`] — Synthetic Minority Over-sampling TEchnique.
//! * [`metrics`] — accuracy / precision / recall / F1 / ROC-AUC.
//!
//! All three classifiers expose the same [`TreeEnsemble`] interface: a
//! weighted sum of trees in *margin space* plus a link function — exactly
//! the shape exact TreeSHAP explains.
//!
//! # Example
//!
//! ```
//! use polaris_ml::{Dataset, adaboost::AdaBoost, Classifier};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // XOR-ish toy problem.
//! let mut d = Dataset::new(vec!["a".into(), "b".into()]);
//! for i in 0..200u32 {
//!     let a = (i % 2) as f32;
//!     let b = ((i / 2) % 2) as f32;
//!     d.push(&[a, b], (a != b) as u8)?;
//! }
//! let model = AdaBoost::fit(&d, &Default::default())?;
//! assert_eq!(model.predict(&[1.0, 0.0]), 1);
//! assert_eq!(model.predict(&[1.0, 1.0]), 0);
//! # Ok(())
//! # }
//! ```

pub mod adaboost;
pub mod data;
pub mod forest;
pub mod gbdt;
pub mod metrics;
pub mod persist;
pub mod smote;
pub mod tree;

pub use adaboost::AdaBoost;
pub use data::{Dataset, DatasetError};
pub use forest::RandomForest;
pub use gbdt::GradientBoost;
pub use tree::{DecisionTree, Tree, TreeNode};

/// Binary classifier over dense `f32` feature vectors.
pub trait Classifier {
    /// Probability of the positive class.
    fn predict_proba(&self, x: &[f32]) -> f64;

    /// Hard label at the 0.5 threshold.
    fn predict(&self, x: &[f32]) -> u8 {
        u8::from(self.predict_proba(x) >= 0.5)
    }
}

/// A model that is an additive ensemble of decision trees in margin space —
/// the interface exact TreeSHAP consumes.
pub trait TreeEnsemble {
    /// The `(weight, tree)` pairs; the ensemble margin is
    /// `base_margin + Σ weight · tree(x)`.
    fn weighted_trees(&self) -> Vec<(f64, &Tree)>;

    /// Additive bias in margin space.
    fn base_margin(&self) -> f64;

    /// Maps a margin to a positive-class probability.
    fn margin_to_proba(&self, margin: f64) -> f64;

    /// Raw margin of one sample.
    fn margin(&self, x: &[f32]) -> f64 {
        self.base_margin()
            + self
                .weighted_trees()
                .iter()
                .map(|(w, t)| w * t.predict(x))
                .sum::<f64>()
    }
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Symmetry: σ(−z) = 1 − σ(z).
        for z in [-3.0, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-z) - (1.0 - sigmoid(z))).abs() < 1e-12);
        }
    }
}
