//! Decision trees: a shared [`Tree`] representation plus a weighted CART
//! classification builder ([`DecisionTree`]).
//!
//! The representation is deliberately open (features, thresholds, covers,
//! leaf values) because exact TreeSHAP in `polaris-xai` must traverse it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;

/// One node of a [`Tree`].
#[derive(Clone, Debug, PartialEq)]
pub enum TreeNode {
    /// Terminal node.
    Leaf {
        /// Output value (class probability or regression weight).
        value: f64,
        /// Total training weight that reached this node.
        cover: f64,
    },
    /// Binary split: `x[feature] <= threshold` goes left.
    Internal {
        /// Feature column index.
        feature: usize,
        /// Split threshold.
        threshold: f32,
        /// Index of the left child in the node array.
        left: usize,
        /// Index of the right child in the node array.
        right: usize,
        /// Total training weight that reached this node.
        cover: f64,
    },
}

/// A binary decision tree stored as a node array with the root at index 0.
#[derive(Clone, Debug, PartialEq)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    /// Builds a tree from raw nodes (root at index 0).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn from_nodes(nodes: Vec<TreeNode>) -> Self {
        assert!(!nodes.is_empty(), "tree needs at least one node");
        Tree { nodes }
    }

    /// The node array (root at index 0).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Evaluates the tree on one sample.
    pub fn predict(&self, x: &[f32]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value, .. } => return *value,
                TreeNode::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth (root alone = 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Internal { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }

    /// Set of feature indices used by splits.
    pub fn used_features(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Internal { feature, .. } => Some(*feature),
                TreeNode::Leaf { .. } => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Hyper-parameters for the CART builder.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth (0 = a single leaf).
    pub max_depth: usize,
    /// Minimum training weight in each child after a split.
    pub min_child_weight: f64,
    /// Features examined per split: `None` = all, `Some(k)` = k random
    /// (random-forest style).
    pub feature_subsample: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 4,
            min_child_weight: 1e-6,
            feature_subsample: None,
            seed: 0,
        }
    }
}

/// A weighted CART classification tree (gini impurity, probability leaves).
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTree {
    tree: Tree,
}

impl DecisionTree {
    /// Fits a tree on uniformly-weighted data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, config: &TreeConfig) -> Self {
        let w = vec![1.0; data.len()];
        Self::fit_weighted(data, &w, config)
    }

    /// Fits a tree with per-sample weights (AdaBoost reweighting, class
    /// balancing).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `weights.len() != data.len()`.
    pub fn fit_weighted(data: &Dataset, weights: &[f64], config: &TreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(weights.len(), data.len(), "weight/row count mismatch");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let idx: Vec<u32> = (0..data.len() as u32).collect();
        let mut nodes = Vec::new();
        build(data, weights, config, &mut rng, idx, 0, &mut nodes);
        DecisionTree {
            tree: Tree::from_nodes(nodes),
        }
    }

    /// The underlying traversable tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Consumes self, returning the traversable tree.
    pub fn into_tree(self) -> Tree {
        self.tree
    }

    /// Positive-class probability for a sample.
    pub fn predict_proba(&self, x: &[f32]) -> f64 {
        self.tree.predict(x)
    }
}

/// Recursively builds nodes, returning the index of the subtree root.
fn build(
    data: &Dataset,
    weights: &[f64],
    config: &TreeConfig,
    rng: &mut StdRng,
    idx: Vec<u32>,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let (w_total, w_pos) = idx.iter().fold((0.0f64, 0.0f64), |(wt, wp), &i| {
        let w = weights[i as usize];
        (wt + w, wp + w * f64::from(data.label(i as usize)))
    });
    let p = if w_total > 0.0 { w_pos / w_total } else { 0.0 };

    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        let id = nodes.len();
        nodes.push(TreeNode::Leaf {
            value: p,
            cover: w_total,
        });
        id
    };

    if depth >= config.max_depth || p <= 0.0 || p >= 1.0 || idx.len() < 2 {
        return make_leaf(nodes);
    }

    let best = find_best_split(data, weights, config, rng, &idx, w_total, w_pos);
    let Some((feature, threshold)) = best else {
        return make_leaf(nodes);
    };

    let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
        .into_iter()
        .partition(|&i| data.row(i as usize)[feature] <= threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return make_leaf(nodes);
    }

    let id = nodes.len();
    nodes.push(TreeNode::Internal {
        feature,
        threshold,
        left: 0,  // patched below
        right: 0, // patched below
        cover: w_total,
    });
    let left = build(data, weights, config, rng, left_idx, depth + 1, nodes);
    let right = build(data, weights, config, rng, right_idx, depth + 1, nodes);
    if let TreeNode::Internal {
        left: l, right: r, ..
    } = &mut nodes[id]
    {
        *l = left;
        *r = right;
    }
    id
}

/// Finds the gini-optimal `(feature, threshold)` or `None` if no split
/// improves impurity.
#[allow(clippy::too_many_arguments)]
fn find_best_split(
    data: &Dataset,
    weights: &[f64],
    config: &TreeConfig,
    rng: &mut StdRng,
    idx: &[u32],
    w_total: f64,
    w_pos: f64,
) -> Option<(usize, f32)> {
    let gini = |wp: f64, wt: f64| -> f64 {
        if wt <= 0.0 {
            0.0
        } else {
            let p = wp / wt;
            2.0 * p * (1.0 - p) * wt
        }
    };
    let parent_impurity = gini(w_pos, w_total);

    let mut features: Vec<usize> = (0..data.n_features()).collect();
    if let Some(k) = config.feature_subsample {
        features.shuffle(rng);
        features.truncate(k.max(1));
    }

    let mut best: Option<(f64, usize, f32)> = None;
    let mut pairs: Vec<(f32, f64, u8)> = Vec::with_capacity(idx.len());
    for &f in &features {
        pairs.clear();
        pairs.extend(idx.iter().map(|&i| {
            let i = i as usize;
            (data.row(i)[f], weights[i], data.label(i))
        }));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut wl = 0.0f64;
        let mut wl_pos = 0.0f64;
        for k in 0..pairs.len() - 1 {
            let (v, w, y) = pairs[k];
            wl += w;
            wl_pos += w * f64::from(y);
            let v_next = pairs[k + 1].0;
            if v == v_next {
                continue;
            }
            let wr = w_total - wl;
            if wl < config.min_child_weight || wr < config.min_child_weight {
                continue;
            }
            let gain = parent_impurity - gini(wl_pos, wl) - gini(w_pos - wl_pos, wr);
            // Zero-gain splits on impure nodes are accepted (as in sklearn's
            // CART): XOR-like interactions have zero first-split gain but
            // become separable one level down.
            if gain > -1e-9 && best.is_none_or(|(g, _, _)| gain > g) {
                let threshold = v + (v_next - v) / 2.0;
                best = Some((gain, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: &[(&[f32], u8)]) -> Dataset {
        let n = rows[0].0.len();
        let names = (0..n).map(|i| format!("f{i}")).collect();
        let mut d = Dataset::new(names);
        for (row, y) in rows {
            d.push(row, *y).unwrap();
        }
        d
    }

    #[test]
    fn single_split_problem() {
        let d = dataset(&[(&[0.0], 0), (&[0.2], 0), (&[0.8], 1), (&[1.0], 1)]);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.predict_proba(&[0.1]), 0.0);
        assert_eq!(t.predict_proba(&[0.9]), 1.0);
        assert_eq!(t.tree().depth(), 1);
        assert_eq!(t.tree().n_leaves(), 2);
    }

    #[test]
    fn xor_needs_depth_two() {
        let d = dataset(&[
            (&[0.0, 0.0], 0),
            (&[0.0, 1.0], 1),
            (&[1.0, 0.0], 1),
            (&[1.0, 1.0], 0),
        ]);
        let shallow = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        // Depth 1 cannot solve XOR: at least one corner is wrong.
        let wrong = [(0.0, 0.0, 0u8), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)]
            .iter()
            .filter(|(a, b, y)| {
                (shallow.predict_proba(&[*a as f32, *b as f32]) >= 0.5) != (*y == 1)
            })
            .count();
        assert!(wrong > 0);
        let deep = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 3,
                ..Default::default()
            },
        );
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let want = (a != b) as u8;
            let got = u8::from(deep.predict_proba(&[a as f32, b as f32]) >= 0.5);
            assert_eq!(got, want, "xor({a},{b})");
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = dataset(&[(&[0.0], 1), (&[1.0], 1), (&[2.0], 1)]);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.tree().n_leaves(), 1);
        assert_eq!(t.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn weights_shift_the_split() {
        // Identical features, conflicting labels: leaf probability follows
        // the weights.
        let d = dataset(&[(&[0.0], 1), (&[0.0], 0)]);
        let t = DecisionTree::fit_weighted(&d, &[3.0, 1.0], &TreeConfig::default());
        assert!((t.predict_proba(&[0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn max_depth_zero_gives_prior() {
        let d = dataset(&[(&[0.0], 0), (&[1.0], 1), (&[2.0], 1), (&[3.0], 1)]);
        let t = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert!((t.predict_proba(&[0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cover_tracks_weight() {
        let d = dataset(&[(&[0.0], 0), (&[1.0], 1)]);
        let t = DecisionTree::fit_weighted(&d, &[2.0, 3.0], &TreeConfig::default());
        match &t.tree().nodes()[0] {
            TreeNode::Internal { cover, .. } => assert!((cover - 5.0).abs() < 1e-12),
            TreeNode::Leaf { cover, .. } => assert!((cover - 5.0).abs() < 1e-12),
        }
    }

    #[test]
    fn used_features_reports_split_columns() {
        let d = dataset(&[(&[0.0, 9.0], 0), (&[1.0, 9.0], 1)]);
        let t = DecisionTree::fit(&d, &TreeConfig::default());
        assert_eq!(t.tree().used_features(), vec![0]);
    }

    #[test]
    fn deterministic_with_subsampling() {
        let rows: Vec<(Vec<f32>, u8)> = (0..100)
            .map(|i| {
                let a = (i % 7) as f32;
                let b = (i % 3) as f32;
                (vec![a, b, (i % 2) as f32], u8::from(a > 3.0))
            })
            .collect();
        let refs: Vec<(&[f32], u8)> = rows.iter().map(|(r, y)| (r.as_slice(), *y)).collect();
        let d = dataset(&refs);
        let cfg = TreeConfig {
            feature_subsample: Some(2),
            seed: 9,
            ..Default::default()
        };
        let t1 = DecisionTree::fit(&d, &cfg);
        let t2 = DecisionTree::fit(&d, &cfg);
        assert_eq!(t1, t2);
    }
}
