//! Random forest: bootstrap-aggregated CART trees with per-node feature
//! subsampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::tree::{DecisionTree, Tree, TreeConfig};
use crate::{Classifier, TreeEnsemble};

/// Random-forest hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Features per split; `None` = ⌈√f⌉.
    pub max_features: Option<usize>,
    /// RNG seed (bootstrap + feature subsampling).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            max_depth: 8,
            max_features: None,
            seed: 0,
        }
    }
}

/// A fitted random forest; the ensemble output is the mean of the trees'
/// leaf probabilities.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<Tree>,
}

impl RandomForest {
    /// Fits a forest.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let k = config
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .max(1);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            // Bootstrap resample expressed as per-sample multiplicity weights.
            let mut weights = vec![0.0f64; data.len()];
            for _ in 0..data.len() {
                weights[rng.gen_range(0..data.len())] += 1.0;
            }
            let tree_cfg = TreeConfig {
                max_depth: config.max_depth,
                min_child_weight: 1.0,
                feature_subsample: Some(k),
                seed: config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            trees.push(DecisionTree::fit_weighted(data, &weights, &tree_cfg).into_tree());
        }
        RandomForest { trees }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Reconstructs a forest from its trees — the inverse of
    /// [`crate::persist`] encoding.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty.
    pub fn from_trees(trees: Vec<Tree>) -> Self {
        assert!(!trees.is_empty(), "forest needs at least one tree");
        RandomForest { trees }
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &[f32]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }
}

impl TreeEnsemble for RandomForest {
    fn weighted_trees(&self) -> Vec<(f64, &Tree)> {
        let w = 1.0 / self.trees.len() as f64;
        self.trees.iter().map(|t| (w, t)).collect()
    }

    fn base_margin(&self) -> f64 {
        0.0
    }

    /// The forest's margin already *is* a probability.
    fn margin_to_proba(&self, margin: f64) -> f64 {
        margin.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal_data(n: usize) -> Dataset {
        // label = 1 iff a + b > 1.0, with a deterministic grid.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..n {
            let a = (i % 21) as f32 / 20.0;
            let b = ((i * 7) % 21) as f32 / 20.0;
            d.push(&[a, b], u8::from(a + b > 1.0)).unwrap();
        }
        d
    }

    #[test]
    fn learns_linear_boundary() {
        let d = diagonal_data(400);
        let f = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        );
        assert!(f.predict_proba(&[0.9, 0.9]) > 0.8);
        assert!(f.predict_proba(&[0.1, 0.1]) < 0.2);
        assert_eq!(f.predict(&[1.0, 1.0]), 1);
        assert_eq!(f.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = diagonal_data(100);
        let cfg = ForestConfig {
            n_trees: 10,
            seed: 5,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&d, &cfg);
        let f2 = RandomForest::fit(&d, &cfg);
        for x in [[0.3f32, 0.9], [0.5, 0.5], [0.9, 0.2]] {
            assert_eq!(f1.predict_proba(&x), f2.predict_proba(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = diagonal_data(100);
        let f1 = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 10,
                seed: 1,
                ..Default::default()
            },
        );
        let f2 = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 10,
                seed: 2,
                ..Default::default()
            },
        );
        let same = [[0.3f32, 0.9], [0.5, 0.5], [0.45, 0.55], [0.9, 0.2]]
            .iter()
            .all(|x| f1.predict_proba(x) == f2.predict_proba(x));
        assert!(
            !same,
            "different bootstrap seeds should change some prediction"
        );
    }

    #[test]
    fn ensemble_interface_consistent() {
        let d = diagonal_data(150);
        let f = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 7,
                ..Default::default()
            },
        );
        let x = [0.8f32, 0.4];
        let margin = f.margin(&x);
        assert!((margin - f.predict_proba(&x)).abs() < 1e-12);
        assert_eq!(f.weighted_trees().len(), 7);
    }

    #[test]
    fn probability_bounds() {
        let d = diagonal_data(200);
        let f = RandomForest::fit(&d, &Default::default());
        for i in 0..50 {
            let x = [(i % 10) as f32 / 10.0, (i / 10) as f32 / 5.0];
            let p = f.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
