//! SAMME discrete AdaBoost over shallow CART trees — the paper's
//! best-performing model (Table III) and the one driving its SHAP analysis.

use crate::data::Dataset;
use crate::tree::{DecisionTree, Tree, TreeConfig, TreeNode};
use crate::{sigmoid, Classifier, TreeEnsemble};

/// AdaBoost hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Learning rate α (the paper sets 0.01).
    pub learning_rate: f64,
    /// Depth of each weak learner (1 = stumps).
    pub max_depth: usize,
    /// RNG seed (only used when trees subsample features).
    pub seed: u64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            n_estimators: 60,
            learning_rate: 0.5,
            max_depth: 2,
            seed: 0,
        }
    }
}

/// A fitted AdaBoost ensemble: margin = Σ αₘ · voteₘ(x) with ±1 vote trees.
#[derive(Clone, Debug)]
pub struct AdaBoost {
    stages: Vec<(f64, Tree)>,
}

impl AdaBoost {
    /// Fits with uniform initial weights.
    ///
    /// # Errors
    ///
    /// Returns an error string if the dataset is empty or single-class.
    pub fn fit(data: &Dataset, config: &AdaBoostConfig) -> Result<Self, String> {
        let w = vec![1.0; data.len()];
        Self::fit_weighted(data, &w, config)
    }

    /// Fits with initial per-sample weights (class balancing — the paper's
    /// "weighted training" for imbalance handling).
    ///
    /// # Errors
    ///
    /// Returns an error string if the dataset is empty, single-class, or the
    /// weight vector length mismatches.
    pub fn fit_weighted(
        data: &Dataset,
        base_weights: &[f64],
        config: &AdaBoostConfig,
    ) -> Result<Self, String> {
        if data.is_empty() {
            return Err("adaboost: empty dataset".into());
        }
        if base_weights.len() != data.len() {
            return Err("adaboost: weight/row count mismatch".into());
        }
        let (neg, pos) = data.class_counts();
        if neg == 0 || pos == 0 {
            return Err("adaboost: need both classes present".into());
        }

        let mut w: Vec<f64> = base_weights.to_vec();
        normalize(&mut w);
        let mut stages = Vec::with_capacity(config.n_estimators);
        for m in 0..config.n_estimators {
            let tree_cfg = TreeConfig {
                max_depth: config.max_depth,
                min_child_weight: 1e-9,
                feature_subsample: None,
                seed: config.seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let learner = DecisionTree::fit_weighted(data, &w, &tree_cfg);
            let vote_tree = to_vote_tree(learner.into_tree());

            let mut err = 0.0f64;
            let mut predictions = Vec::with_capacity(data.len());
            for (i, &wi) in w.iter().enumerate() {
                let vote = vote_tree.predict(data.row(i));
                let predicted = u8::from(vote > 0.0);
                predictions.push(predicted);
                if predicted != data.label(i) {
                    err += wi;
                }
            }
            err = err.clamp(1e-12, 1.0 - 1e-12);
            if err >= 0.5 {
                // Weak learner no better than chance: stop boosting.
                if stages.is_empty() {
                    stages.push((config.learning_rate, vote_tree));
                }
                break;
            }
            let alpha = config.learning_rate * ((1.0 - err) / err).ln();
            for i in 0..data.len() {
                if predictions[i] != data.label(i) {
                    w[i] *= alpha.exp();
                }
            }
            normalize(&mut w);
            let perfect = err <= 1e-10;
            stages.push((alpha, vote_tree));
            if perfect {
                break;
            }
        }
        Ok(AdaBoost { stages })
    }

    /// Number of boosting stages actually fitted.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Reconstructs an ensemble from `(alpha, vote_tree)` stages — the
    /// inverse of [`crate::persist`] encoding.
    pub fn from_stages(stages: Vec<(f64, Tree)>) -> Self {
        AdaBoost { stages }
    }

    /// Per-feature importance: total α-weighted cover of splits on each
    /// feature, normalized to sum to 1.
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0f64; n_features];
        for (alpha, tree) in &self.stages {
            for node in tree.nodes() {
                if let TreeNode::Internal { feature, cover, .. } = node {
                    imp[*feature] += alpha.abs() * cover;
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

fn normalize(w: &mut [f64]) {
    let s: f64 = w.iter().sum();
    if s > 0.0 {
        for v in w {
            *v /= s;
        }
    }
}

/// Converts probability leaves to ±1 votes (SAMME discrete).
fn to_vote_tree(tree: Tree) -> Tree {
    let nodes = tree
        .nodes()
        .iter()
        .map(|n| match n {
            TreeNode::Leaf { value, cover } => TreeNode::Leaf {
                value: if *value >= 0.5 { 1.0 } else { -1.0 },
                cover: *cover,
            },
            other => other.clone(),
        })
        .collect();
    Tree::from_nodes(nodes)
}

impl Classifier for AdaBoost {
    fn predict_proba(&self, x: &[f32]) -> f64 {
        sigmoid(self.margin(x))
    }
}

impl TreeEnsemble for AdaBoost {
    fn weighted_trees(&self) -> Vec<(f64, &Tree)> {
        self.stages.iter().map(|(a, t)| (*a, t)).collect()
    }

    fn base_margin(&self) -> f64 {
        0.0
    }

    fn margin_to_proba(&self, margin: f64) -> f64 {
        sigmoid(margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..200u32 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            d.push(&[a, b], u8::from(a != b)).unwrap();
        }
        d
    }

    #[test]
    fn solves_xor() {
        let model = AdaBoost::fit(&xor_data(), &AdaBoostConfig::default()).unwrap();
        assert_eq!(model.predict(&[0.0, 0.0]), 0);
        assert_eq!(model.predict(&[0.0, 1.0]), 1);
        assert_eq!(model.predict(&[1.0, 0.0]), 1);
        assert_eq!(model.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    fn rejects_degenerate_data() {
        let empty = Dataset::new(vec!["a".into()]);
        assert!(AdaBoost::fit(&empty, &Default::default()).is_err());

        let mut single = Dataset::new(vec!["a".into()]);
        single.push(&[1.0], 1).unwrap();
        single.push(&[0.0], 1).unwrap();
        assert!(AdaBoost::fit(&single, &Default::default()).is_err());
    }

    #[test]
    fn margin_is_signed_sum() {
        let model = AdaBoost::fit(&xor_data(), &AdaBoostConfig::default()).unwrap();
        let x = [1.0f32, 0.0];
        let manual: f64 = model
            .weighted_trees()
            .iter()
            .map(|(a, t)| a * t.predict(&x))
            .sum();
        assert!((model.margin(&x) - manual).abs() < 1e-12);
        assert!(model.margin(&x) > 0.0);
    }

    #[test]
    fn weighted_fit_respects_imbalance_strategy() {
        // 90/10 imbalance: balanced weights should pull the decision
        // boundary toward the minority class.
        let mut d = Dataset::new(vec!["a".into()]);
        for i in 0..90 {
            d.push(&[(i % 10) as f32 / 10.0], 0).unwrap();
        }
        for i in 0..10 {
            d.push(&[0.9 + (i % 2) as f32 / 20.0], 1).unwrap();
        }
        let w = d.balanced_weights().unwrap();
        let model = AdaBoost::fit_weighted(&d, &w, &Default::default()).unwrap();
        assert_eq!(model.predict(&[0.95]), 1);
        assert_eq!(model.predict(&[0.1]), 0);
    }

    #[test]
    fn learning_rate_scales_alphas() {
        let d = xor_data();
        let slow = AdaBoost::fit(
            &d,
            &AdaBoostConfig {
                learning_rate: 0.01,
                n_estimators: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let fast = AdaBoost::fit(
            &d,
            &AdaBoostConfig {
                learning_rate: 1.0,
                n_estimators: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let sum_alpha = |m: &AdaBoost| m.stages.iter().map(|(a, _)| a.abs()).sum::<f64>();
        assert!(sum_alpha(&fast) > sum_alpha(&slow) * 10.0);
    }

    #[test]
    fn feature_importances_normalized_and_focused() {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for i in 0..100 {
            let s = (i % 2) as f32;
            let nz = ((i * 13) % 7) as f32;
            d.push(&[s, nz], s as u8).unwrap();
        }
        let model = AdaBoost::fit(&d, &Default::default()).unwrap();
        let imp = model.feature_importances(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "signal feature should dominate: {imp:?}");
    }

    #[test]
    fn deterministic() {
        let d = xor_data();
        let m1 = AdaBoost::fit(&d, &Default::default()).unwrap();
        let m2 = AdaBoost::fit(&d, &Default::default()).unwrap();
        assert_eq!(m1.margin(&[1.0, 0.0]), m2.margin(&[1.0, 0.0]));
        assert_eq!(m1.n_stages(), m2.n_stages());
    }
}
