//! VALIANT-style baseline: TVLA-driven selective masking.
//!
//! VALIANT (Sadhukhan et al., IEEE TC 2024) is the state-of-the-art
//! comparator of the paper's Tables II and IV. Its flow shape is:
//!
//! 1. run a full TVLA campaign on the design,
//! 2. rank gates by `|t|` and mask the batch exceeding the ±4.5 threshold,
//! 3. **re-run TVLA on the masked design** and repeat until no gate leaks or
//!    an iteration budget is exhausted.
//!
//! The repeated trace simulation in step 3 is what makes TVLA-in-the-loop
//! flows slow on large designs — the cost POLARIS avoids by predicting
//! leaky gates from structure alone (one campaign at most, for reporting).
//!
//! # Example
//!
//! ```
//! use polaris_netlist::{generators, transform::decompose};
//! use polaris_sim::{CampaignConfig, PowerModel};
//! use polaris_valiant::{ValiantConfig, ValiantFlow};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (design, _) = decompose(&generators::iscas_c17())?;
//! let flow = ValiantFlow::new(ValiantConfig {
//!     campaign: CampaignConfig::new(300, 300, 7),
//!     ..Default::default()
//! });
//! let outcome = flow.run(&design, &PowerModel::default())?;
//! assert!(outcome.reduction_pct() > 0.0);
//! # Ok(())
//! # }
//! ```

use std::time::Instant;

use polaris_masking::{apply_masking, MaskedDesign, MaskingError, MaskingStyle};
use polaris_netlist::{GateId, Netlist};
use polaris_sim::{CampaignConfig, Parallelism, PowerModel};
use polaris_tvla::{assess_parallel, GateLeakage, LeakageSummary, TVLA_THRESHOLD};

/// VALIANT flow parameters.
#[derive(Clone, Debug)]
pub struct ValiantConfig {
    /// TVLA campaign run at every iteration.
    pub campaign: CampaignConfig,
    /// `|t|` threshold above which a gate counts as leaky (±4.5 standard).
    pub threshold: f64,
    /// Fraction of the currently-leaky gates masked per iteration.
    pub batch_fraction: f64,
    /// Maximum mask-and-reassess iterations.
    pub max_iterations: usize,
    /// Masked-gate family to insert.
    pub style: MaskingStyle,
    /// Worker threads for every TVLA campaign (the flow's hot loop); the
    /// sharded engine keeps results bit-identical at any thread count.
    pub parallelism: Parallelism,
}

impl Default for ValiantConfig {
    fn default() -> Self {
        ValiantConfig {
            campaign: CampaignConfig::new(500, 500, 0),
            threshold: TVLA_THRESHOLD,
            batch_fraction: 0.5,
            max_iterations: 4,
            style: MaskingStyle::Trichina,
            parallelism: Parallelism::auto(),
        }
    }
}

/// Outcome of a VALIANT run.
#[derive(Clone, Debug)]
pub struct ValiantOutcome {
    /// The final masked design (with origin bookkeeping against the input
    /// netlist).
    pub masked: MaskedDesign,
    /// Leakage summary of the unprotected input.
    pub before: LeakageSummary,
    /// Leakage summary of the final masked design.
    pub after: LeakageSummary,
    /// Per-gate leakage of the unprotected input.
    pub before_map: GateLeakage,
    /// Original gate ids masked across all iterations.
    pub masked_gates: Vec<GateId>,
    /// TVLA campaigns executed (1 initial + 1 per iteration).
    pub tvla_runs: usize,
    /// Wall-clock seconds.
    pub runtime_s: f64,
}

impl ValiantOutcome {
    /// Total leakage reduction percent (Table II semantics).
    pub fn reduction_pct(&self) -> f64 {
        self.after.reduction_pct_from(&self.before)
    }
}

/// The iterative TVLA → mask → re-TVLA flow.
#[derive(Clone, Debug)]
pub struct ValiantFlow {
    config: ValiantConfig,
}

impl ValiantFlow {
    /// Creates a flow with the given configuration.
    pub fn new(config: ValiantConfig) -> Self {
        ValiantFlow { config }
    }

    /// Runs the flow on a normalized netlist (2-input cells; see
    /// [`polaris_netlist::transform::decompose`]).
    ///
    /// # Errors
    ///
    /// Propagates [`MaskingError`] from the masking transform or wrapped
    /// netlist errors from simulation.
    pub fn run(
        &self,
        netlist: &Netlist,
        model: &PowerModel,
    ) -> Result<ValiantOutcome, MaskingError> {
        let start = Instant::now();
        let cfg = &self.config;

        // Initial assessment of the unprotected design.
        let before_map = assess_parallel(netlist, model, &cfg.campaign, cfg.parallelism)?;
        let before = before_map.summarize(netlist);
        let mut tvla_runs = 1;

        // Iteratively grow the masked set. Each iteration re-masks from the
        // *original* netlist (so origin bookkeeping stays against the input)
        // and re-runs TVLA on the result — the expensive loop of the
        // published flow.
        let mut masked_set: Vec<GateId> = Vec::new();
        let mut current = apply_masking(netlist, &masked_set, cfg.style)?;
        let mut current_leakage = before_map.clone();
        let mut after = before;

        for iteration in 0..cfg.max_iterations {
            // Rank still-leaky *original* gates by the grouped |t| of their
            // realization in the current design.
            let leaky = leaky_original_gates(
                netlist,
                &current,
                &current_leakage,
                cfg.threshold,
                &masked_set,
            );
            if leaky.is_empty() {
                break;
            }
            let batch = ((leaky.len() as f64) * cfg.batch_fraction).ceil() as usize;
            masked_set.extend(leaky.into_iter().take(batch.max(1)));

            current = apply_masking(netlist, &masked_set, cfg.style)?;
            // Re-seed the sampling streams but pin the fixed class vector so
            // successive assessments compare the same two populations.
            let mut campaign = cfg.campaign.clone();
            campaign.fixed_vector = Some(
                cfg.campaign
                    .resolve_fixed_vector(netlist.data_inputs().len()),
            );
            campaign.seed = campaign.seed.wrapping_add(iteration as u64 + 1);
            current_leakage = assess_parallel(&current.netlist, model, &campaign, cfg.parallelism)?;
            tvla_runs += 1;
            after = summarize_grouped(netlist, &current, &current_leakage);
        }

        Ok(ValiantOutcome {
            masked: current,
            before,
            after,
            before_map,
            masked_gates: masked_set,
            tvla_runs,
            runtime_s: start.elapsed().as_secs_f64(),
        })
    }
}

/// Leaky original gates ranked by descending grouped `|t|`, excluding those
/// already masked.
fn leaky_original_gates(
    original: &Netlist,
    current: &MaskedDesign,
    leakage: &GateLeakage,
    threshold: f64,
    already_masked: &[GateId],
) -> Vec<GateId> {
    let grouped = grouped_abs_t(original, current, leakage);
    let mut leaky: Vec<(GateId, f64)> = original
        .cell_ids()
        .into_iter()
        .filter(|id| !already_masked.contains(id))
        .filter(|id| {
            // Only 1–2 input cells are maskable in the normalized netlist.
            original.gate(*id).fanin().len() <= 2
        })
        .map(|id| (id, grouped[id.index()]))
        .filter(|(_, t)| *t > threshold)
        .collect();
    leaky.sort_by(|a, b| b.1.total_cmp(&a.1));
    leaky.into_iter().map(|(id, _)| id).collect()
}

/// Mean `|t|` per original gate over its realization group in the masked
/// design.
fn grouped_abs_t(original: &Netlist, current: &MaskedDesign, leakage: &GateLeakage) -> Vec<f64> {
    let mut sum = vec![0.0f64; original.gate_count()];
    let mut count = vec![0usize; original.gate_count()];
    for (new_idx, origin) in current.origin.iter().enumerate() {
        if let Some(orig) = origin {
            sum[orig.index()] += leakage.abs_t(GateId::new(new_idx));
            count[orig.index()] += 1;
        }
    }
    sum.iter()
        .zip(&count)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// Leakage summary over original cells, attributing grouped `|t|`.
fn summarize_grouped(
    original: &Netlist,
    current: &MaskedDesign,
    leakage: &GateLeakage,
) -> LeakageSummary {
    let grouped = grouped_abs_t(original, current, leakage);
    let cells = original.cell_ids();
    let mut total = 0.0;
    let mut max: f64 = 0.0;
    let mut leaky = 0;
    for &id in &cells {
        let t = grouped[id.index()];
        total += t;
        max = max.max(t);
        if t > TVLA_THRESHOLD {
            leaky += 1;
        }
    }
    LeakageSummary {
        cells: cells.len(),
        mean_abs_t: if cells.is_empty() {
            0.0
        } else {
            total / cells.len() as f64
        },
        total_abs_t: total,
        max_abs_t: max,
        leaky_cells: leaky,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_netlist::generators;
    use polaris_netlist::transform::decompose;

    fn flow(traces: usize, iters: usize) -> ValiantFlow {
        ValiantFlow::new(ValiantConfig {
            campaign: CampaignConfig::new(traces, traces, 11),
            max_iterations: iters,
            ..Default::default()
        })
    }

    #[test]
    fn reduces_leakage_on_c17() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let out = flow(400, 3).run(&d, &PowerModel::default()).unwrap();
        assert!(
            out.reduction_pct() > 20.0,
            "reduction = {:.1}%",
            out.reduction_pct()
        );
        assert!(!out.masked_gates.is_empty());
        assert!(out.tvla_runs >= 2, "flow must re-assess after masking");
    }

    #[test]
    fn masked_design_stays_functional() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let out = flow(200, 2).run(&d, &PowerModel::default()).unwrap();
        let sim_o = polaris_sim::Simulator::new(&d).unwrap();
        let sim_m = polaris_sim::Simulator::new(&out.masked.netlist).unwrap();
        for bits in 0..32u32 {
            let data: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let masks = vec![false; out.masked.netlist.mask_inputs().len()];
            assert_eq!(
                sim_o.eval_bool(&data, &[]).unwrap(),
                sim_m.eval_bool(&data, &masks).unwrap()
            );
        }
    }

    #[test]
    fn zero_iterations_is_assessment_only() {
        let (d, _) = decompose(&generators::iscas_c17()).unwrap();
        let out = flow(200, 0).run(&d, &PowerModel::default()).unwrap();
        assert!(out.masked_gates.is_empty());
        assert_eq!(out.tvla_runs, 1);
        assert_eq!(out.reduction_pct(), 0.0);
    }

    #[test]
    fn iterations_monotonically_extend_masked_set() {
        let (d, _) = decompose(&generators::des3(1, 3)).unwrap();
        let out1 = flow(150, 1).run(&d, &PowerModel::default()).unwrap();
        let out3 = flow(150, 3).run(&d, &PowerModel::default()).unwrap();
        assert!(out3.masked_gates.len() >= out1.masked_gates.len());
    }

    #[test]
    fn runtime_grows_with_iterations() {
        // The defining inefficiency of TVLA-in-the-loop: more iterations →
        // more campaigns → more wall-clock.
        let (d, _) = decompose(&generators::sin(1, 3)).unwrap();
        let o1 = flow(150, 1).run(&d, &PowerModel::default()).unwrap();
        let o3 = flow(150, 3).run(&d, &PowerModel::default()).unwrap();
        assert!(o3.tvla_runs > o1.tvla_runs);
    }
}
