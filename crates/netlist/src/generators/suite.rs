//! Evaluation-suite generators: the eleven designs of Tables II–IV.
//!
//! Each generator echoes the documented function of its namesake (EPFL
//! combinational suite / MIT-CEP): `des3` and `md5` are crypto rounds built
//! from S-boxes, key XORs and adders; `arbiter` is priority logic; `voter`
//! is majority trees; `sin`/`log2` are polynomial datapaths of
//! multiplier/adder stages; `square`/`multiplier` are array multipliers;
//! `sqrt`/`div` are iterative restoring datapaths; `memctrl` is an FSM with
//! decoders and muxes.

use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

use super::blocks;

/// Names of the eleven evaluation designs, in the paper's table order.
pub const EVALUATION_NAMES: [&str; 11] = [
    "des3",
    "arbiter",
    "sin",
    "md5",
    "voter",
    "square",
    "sqrt",
    "div",
    "memctrl",
    "multiplier",
    "log2",
];

/// Builds an evaluation design by name; `None` for unknown names. Besides
/// the eleven table designs, `"aes"` builds a one-round AES-128-like
/// datapath with the real FIPS-197 S-box.
pub fn by_name(name: &str, scale: u32, seed: u64) -> Option<Netlist> {
    Some(match name {
        "aes" => aes_round(scale, seed),
        "des3" => des3(scale, seed),
        "arbiter" => arbiter(scale, seed),
        "sin" => sin(scale, seed),
        "md5" => md5(scale, seed),
        "voter" => voter(scale, seed),
        "square" => square(scale, seed),
        "sqrt" => sqrt(scale, seed),
        "div" => div(scale, seed),
        "memctrl" => memctrl(scale, seed),
        "multiplier" => multiplier(scale, seed),
        "log2" => log2(scale, seed),
        _ => return None,
    })
}

/// The full evaluation suite at a given scale, in table order.
pub fn evaluation_suite(scale: u32, seed: u64) -> Vec<Netlist> {
    EVALUATION_NAMES
        .iter()
        .map(|n| by_name(n, scale, seed).expect("known evaluation design"))
        .collect()
}

fn inputs(n: &mut Netlist, prefix: &str, count: usize) -> Vec<GateId> {
    (0..count)
        .map(|i| n.add_input(format!("{prefix}{i}")))
        .collect()
}

fn outputs(n: &mut Netlist, prefix: &str, bits: &[GateId]) {
    for (i, &b) in bits.iter().enumerate() {
        n.add_output(format!("{prefix}{i}"), b)
            .expect("valid output");
    }
}

/// A DES-like S-box truth table (4-in, 4-out), parameterized by a salt so the
/// eight S-boxes differ, as in the cipher.
fn des_sbox_table(salt: u32) -> Vec<u16> {
    (0u32..16)
        .map(|i| {
            let v = (i.wrapping_mul(7).wrapping_add(salt * 5 + 3) ^ (i >> 1) ^ salt) & 0xF;
            v as u16
        })
        .collect()
}

/// `des3`: three unrolled Feistel-style rounds of keyed S-box substitution
/// and permutation XOR, the structure of a synthesized triple-DES datapath.
pub fn des3(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let sboxes = 4 * s; // 4 S-boxes per round per scale unit
    let width = sboxes * 4;
    let mut n = Netlist::new("des3");
    let mut state = inputs(&mut n, "pt", width);
    let key = inputs(&mut n, "k", width);
    for round in 0..3 {
        // Key mixing.
        let keyed = blocks::xor_bus(&mut n, &format!("r{round}_kx"), &state, &key);
        // S-box substitution.
        let mut subst = Vec::with_capacity(width);
        for b in 0..sboxes {
            let chunk = &keyed[b * 4..b * 4 + 4];
            let table = des_sbox_table((round * 8 + b) as u32);
            let out = blocks::sbox(&mut n, &format!("r{round}_sb{b}"), chunk, &table, 4);
            subst.extend(out);
        }
        // Permutation: rotate by a round-dependent amount, then Feistel XOR
        // with the previous state.
        let rot = (round * 5 + 7) % width;
        let permuted: Vec<GateId> = (0..width).map(|i| subst[(i + rot) % width]).collect();
        state = blocks::xor_bus(&mut n, &format!("r{round}_fx"), &permuted, &state);
    }
    let frontier = blocks::random_cloud(&mut n, "glue", &state, width * 2, seed);
    outputs(&mut n, "ct", &state);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `aes`: one AES-128-like round — AddRoundKey, SubBytes with the real
/// FIPS-197 S-box, a ShiftRows-style byte rotation and a MixColumns-style
/// XOR blend. `scale` sets the number of state bytes (4·scale).
pub fn aes_round(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let bytes = 4 * s;
    let mut n = Netlist::new("aes");
    let state = inputs(&mut n, "pt", bytes * 8);
    let key = inputs(&mut n, "k", bytes * 8);
    // AddRoundKey.
    let keyed = blocks::xor_bus(&mut n, "ark", &state, &key);
    // SubBytes: one real AES S-box per byte.
    let mut subst: Vec<GateId> = Vec::with_capacity(bytes * 8);
    for byte in 0..bytes {
        let slice = &keyed[byte * 8..byte * 8 + 8];
        subst.extend(blocks::aes_sbox(&mut n, &format!("sb{byte}"), slice));
    }
    // ShiftRows flavour: rotate bytes by their row index.
    let shifted: Vec<GateId> = (0..bytes * 8)
        .map(|bit| {
            let byte = bit / 8;
            let rot = byte % 4;
            subst[((byte + rot) % bytes) * 8 + bit % 8]
        })
        .collect();
    // MixColumns flavour: XOR each byte with its column neighbour.
    let mixed: Vec<GateId> = (0..bytes * 8)
        .map(|bit| {
            let byte = bit / 8;
            let partner = ((byte + 1) % bytes) * 8 + bit % 8;
            n.add_gate(
                GateKind::Xor,
                format!("mx{bit}"),
                &[shifted[bit], shifted[partner]],
            )
            .expect("valid")
        })
        .collect();
    let frontier = blocks::random_cloud(&mut n, "glue", &mixed, bytes * 4, seed);
    outputs(&mut n, "ct", &mixed);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `md5`: boolean mixing functions F/G/H plus ripple-adder chains, the shape
/// of one unrolled MD5 step group.
pub fn md5(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let w = 8 * s;
    let mut n = Netlist::new("md5");
    let a = inputs(&mut n, "a", w);
    let b = inputs(&mut n, "b", w);
    let c = inputs(&mut n, "c", w);
    let d = inputs(&mut n, "d", w);
    let msg = inputs(&mut n, "m", w);
    // F = (b & c) | (!b & d)
    let f: Vec<GateId> = (0..w)
        .map(|i| {
            n.add_gate(GateKind::Mux, format!("f{i}"), &[b[i], c[i], d[i]])
                .expect("valid")
        })
        .collect();
    // G = (d & b) | (!d & c)
    let g: Vec<GateId> = (0..w)
        .map(|i| {
            n.add_gate(GateKind::Mux, format!("g{i}"), &[d[i], b[i], c[i]])
                .expect("valid")
        })
        .collect();
    // H = b ^ c ^ d
    let bc = blocks::xor_bus(&mut n, "hbc", &b, &c);
    let h = blocks::xor_bus(&mut n, "h", &bc, &d);
    // Chained additions: a + F + msg, then + G, then + H (rotations between).
    let (t1, _) = blocks::ripple_adder(&mut n, "add1", &a, &f, None);
    let (t2, _) = blocks::ripple_adder(&mut n, "add2", &t1, &msg, None);
    let rot1: Vec<GateId> = (0..w).map(|i| t2[(i + 3) % w]).collect();
    let (t3, _) = blocks::ripple_adder(&mut n, "add3", &rot1, &g, None);
    let rot2: Vec<GateId> = (0..w).map(|i| t3[(i + 7) % w]).collect();
    let (t4, _) = blocks::ripple_adder(&mut n, "add4", &rot2, &h, None);
    let frontier = blocks::random_cloud(&mut n, "glue", &t4, w * 3, seed);
    outputs(&mut n, "h", &t4);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `arbiter`: wide priority arbitration with request masking and round flags.
pub fn arbiter(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let lanes = 24 * s;
    let mut n = Netlist::new("arbiter");
    let reqs = inputs(&mut n, "req", lanes);
    let msk = inputs(&mut n, "msk", lanes);
    let en: Vec<GateId> = reqs
        .iter()
        .zip(&msk)
        .enumerate()
        .map(|(i, (&r, &m))| {
            n.add_gate(GateKind::And, format!("en{i}"), &[r, m])
                .expect("valid")
        })
        .collect();
    let g1 = blocks::priority_arbiter(&mut n, "p1", &en);
    // Second stage: reversed priority for fairness logic.
    let rev: Vec<GateId> = en.iter().rev().copied().collect();
    let g2r = blocks::priority_arbiter(&mut n, "p2", &rev);
    let g2: Vec<GateId> = g2r.into_iter().rev().collect();
    let pick = blocks::xor_bus(&mut n, "pk", &g1, &g2);
    let any = blocks::parity_tree(&mut n, "any", &pick);
    let frontier = blocks::random_cloud(&mut n, "glue", &pick, lanes * 3, seed);
    outputs(&mut n, "gnt", &g1);
    n.add_output("busy", any).expect("valid output");
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `voter`: layered majority trees (the EPFL voter is a big majority
/// network).
pub fn voter(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let groups = 9 * s;
    let mut n = Netlist::new("voter");
    let bits = inputs(&mut n, "v", groups * 3);
    let mut level: Vec<GateId> = Vec::with_capacity(groups);
    for g in 0..groups {
        let m = blocks::majority3(
            &mut n,
            &format!("l0_{g}"),
            bits[g * 3],
            bits[g * 3 + 1],
            bits[g * 3 + 2],
        );
        level.push(m);
    }
    let verdict = blocks::majority_tree(&mut n, "tree", &level);
    let frontier = blocks::random_cloud(&mut n, "glue", &level, groups * 12, seed);
    n.add_output("verdict", verdict).expect("valid output");
    outputs(&mut n, "lvl", &level);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// Polynomial-evaluation datapath shared by `sin` and `log2`: Horner chain of
/// multiply-add stages.
fn poly_datapath(name: &str, width: usize, stages: usize, seed: u64) -> Netlist {
    let mut n = Netlist::new(name);
    let x = inputs(&mut n, "x", width);
    let mut acc = inputs(&mut n, "c", width);
    for st in 0..stages {
        let prod = blocks::array_multiplier(&mut n, &format!("s{st}_mul"), &acc, &x);
        let low: Vec<GateId> = prod[width / 2..width / 2 + width].to_vec();
        // Coefficient injection: XOR a rotated copy of x (stands in for the
        // next Horner coefficient, which a synthesizer would fold to wiring).
        let coef: Vec<GateId> = (0..width).map(|i| x[(i + st + 1) % width]).collect();
        let (sum, _) = blocks::ripple_adder(&mut n, &format!("s{st}_add"), &low, &coef, None);
        acc = sum;
    }
    let frontier = blocks::random_cloud(&mut n, "glue", &acc, width * 4, seed);
    outputs(&mut n, "y", &acc);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `sin`: polynomial approximation datapath.
pub fn sin(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    poly_datapath("sin", 6 * s, 3, seed)
}

/// `log2`: deeper polynomial approximation datapath.
pub fn log2(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    poly_datapath("log2", 7 * s, 4, seed ^ 0x109)
}

/// `square`: squaring datapath (`x * x`) plus output compression.
pub fn square(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let w = 10 * s;
    let mut n = Netlist::new("square");
    let x = inputs(&mut n, "x", w);
    let p = blocks::array_multiplier(&mut n, "sq", &x, &x);
    let frontier = blocks::random_cloud(&mut n, "glue", &p, w * 2, seed);
    outputs(&mut n, "p", &p);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `multiplier`: full array multiplier of two operands.
pub fn multiplier(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let w = 11 * s;
    let mut n = Netlist::new("multiplier");
    let a = inputs(&mut n, "a", w);
    let b = inputs(&mut n, "b", w);
    let p = blocks::array_multiplier(&mut n, "mul", &a, &b);
    let frontier = blocks::random_cloud(&mut n, "glue", &p, w * 2, seed);
    outputs(&mut n, "p", &p);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// Iterative restoring datapath shared by `sqrt` and `div`: a chain of
/// subtract / select stages.
fn restoring_datapath(name: &str, width: usize, stages: usize, seed: u64) -> Netlist {
    let mut n = Netlist::new(name);
    let num = inputs(&mut n, "n", width);
    let den = inputs(&mut n, "d", width);
    let mut rem: Vec<GateId> = num.clone();
    let mut qbits = Vec::with_capacity(stages);
    for st in 0..stages {
        let (diff, no_borrow) =
            blocks::ripple_subtractor(&mut n, &format!("s{st}_sub"), &rem, &den);
        // If subtraction succeeded (no borrow), take the difference, else keep.
        let next = blocks::mux_bus(&mut n, &format!("s{st}_sel"), no_borrow, &diff, &rem);
        qbits.push(no_borrow);
        // Shift left by one for the next iteration.
        let zero = n
            .add_gate(GateKind::Const0, format!("s{st}_z"), &[])
            .expect("const");
        rem = std::iter::once(zero)
            .chain(next[..width - 1].iter().copied())
            .collect();
    }
    let frontier = blocks::random_cloud(&mut n, "glue", &rem, width * 3, seed);
    outputs(&mut n, "q", &qbits);
    outputs(&mut n, "r", &rem);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

/// `sqrt`: restoring root-extraction datapath.
pub fn sqrt(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    restoring_datapath("sqrt", 8 * s, 6, seed)
}

/// `div`: restoring division datapath (deeper than `sqrt`).
pub fn div(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    restoring_datapath("div", 9 * s, 8, seed ^ 0xD1)
}

/// `memctrl`: bank decoder + command FSM (flip-flops) + data-path muxing —
/// the only sequential design in the suite, like its MIT-CEP namesake.
pub fn memctrl(scale: u32, seed: u64) -> Netlist {
    let s = scale.max(1) as usize;
    let addr_bits = 5;
    let data_w = 8 * s;
    let mut n = Netlist::new("memctrl");
    let addr = inputs(&mut n, "addr", addr_bits);
    let data = inputs(&mut n, "wdat", data_w);
    let cmd = inputs(&mut n, "cmd", 2);
    // Bank decode.
    let banks = blocks::decoder(&mut n, "bank", &addr[0..4]);
    // Command FSM: 3-bit state register with next-state logic.
    let st: Vec<GateId> = (0..3)
        .map(|i| n.add_dff_placeholder(format!("st{i}")))
        .collect();
    let ns0 = n
        .add_gate(GateKind::Xor, "ns0", &[st[0], cmd[0]])
        .expect("valid");
    let t = n
        .add_gate(GateKind::And, "nst", &[st[1], cmd[1]])
        .expect("valid");
    let ns1 = n.add_gate(GateKind::Or, "ns1", &[st[2], t]).expect("valid");
    let ns2 = n
        .add_gate(GateKind::Xnor, "ns2", &[st[0], st[1]])
        .expect("valid");
    n.connect_dff(st[0], ns0);
    n.connect_dff(st[1], ns1);
    n.connect_dff(st[2], ns2);
    // Data path: mask write data per bank, rotate under FSM control.
    let mut lanes = Vec::new();
    for (bi, &bank) in banks.iter().enumerate().take(8) {
        let lane: Vec<GateId> = data
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                n.add_gate(GateKind::And, format!("b{bi}_d{i}"), &[d, bank])
                    .expect("valid")
            })
            .collect();
        lanes.push(lane);
    }
    let mut acc = lanes[0].clone();
    for (bi, lane) in lanes.iter().enumerate().skip(1) {
        acc = blocks::xor_bus(&mut n, &format!("mrg{bi}"), &acc, lane);
    }
    let rot = blocks::mux_bus(
        &mut n,
        "rot",
        st[0],
        &{
            let r: Vec<GateId> = (0..data_w).map(|i| acc[(i + 1) % data_w]).collect();
            r
        },
        &acc,
    );
    let frontier = blocks::random_cloud(&mut n, "glue", &rot, data_w * 6, seed);
    outputs(&mut n, "rdat", &rot);
    outputs(&mut n, "state", &st);
    outputs(&mut n, "f", &frontier[..frontier.len().min(2)]);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_evaluation_designs_build_and_validate() {
        for name in EVALUATION_NAMES {
            let n = by_name(name, 1, 7).unwrap();
            n.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                n.stats().cells > 50,
                "{name} too small: {}",
                n.stats().cells
            );
            assert_eq!(n.name(), name);
        }
    }

    #[test]
    fn evaluation_suite_order_matches_table() {
        let suite = evaluation_suite(1, 7);
        let names: Vec<&str> = suite.iter().map(|n| n.name()).collect();
        assert_eq!(names, EVALUATION_NAMES.to_vec());
    }

    #[test]
    fn unknown_name_rejected() {
        assert!(by_name("nonesuch", 1, 0).is_none());
    }

    #[test]
    fn memctrl_is_sequential_others_combinational_after_decompose() {
        let m = memctrl(1, 7);
        assert!(m.stats().flops > 0);
        let d = des3(1, 7);
        assert!(d.is_combinational());
    }

    #[test]
    fn designs_are_deterministic_in_seed() {
        assert_eq!(des3(1, 3), des3(1, 3));
        assert_ne!(des3(1, 3), des3(1, 4), "different seeds change glue logic");
    }

    #[test]
    fn scale_increases_size_monotonically() {
        for name in ["des3", "voter", "div"] {
            let small = by_name(name, 1, 1).unwrap().stats().cells;
            let big = by_name(name, 2, 1).unwrap().stats().cells;
            assert!(big > small, "{name}: {big} <= {small}");
        }
    }

    #[test]
    fn aes_round_builds_with_real_sbox() {
        let n = by_name("aes", 1, 3).unwrap();
        n.validate().unwrap();
        // 4 S-boxes at scale 1, each a few hundred cells.
        assert!(n.stats().cells > 500, "got {}", n.stats().cells);
        assert_eq!(n.data_inputs().len(), 2 * 4 * 8);
    }

    #[test]
    fn relative_sizes_echo_paper_ordering() {
        // In the paper, multiplier/log2/div are the largest, des3/arbiter/sin
        // among the smaller. We only assert the coarse ends.
        let des3 = by_name("des3", 1, 1).unwrap().stats().cells;
        let mult = by_name("multiplier", 1, 1).unwrap().stats().cells;
        let log2 = by_name("log2", 1, 1).unwrap().stats().cells;
        assert!(mult > des3);
        assert!(log2 > des3);
    }
}
