//! Deterministic synthetic benchmark generators.
//!
//! The paper trains POLARIS on six ISCAS-85 designs and evaluates on eleven
//! larger designs from the EPFL combinational suite and MIT-CEP. Those
//! netlist files (and the Synopsys DC synthesis flow that produced the
//! gate-level versions) are not available offline, so this module provides
//! *generators*: deterministic functions that build structurally realistic
//! gate-level netlists from composable arithmetic/control blocks — real
//! ripple adders, array multipliers, S-box sum-of-products logic, priority
//! arbiters, majority voters, FSMs — sized to echo the originals.
//!
//! Every generator takes a `scale` factor (1 = laptop-friendly; larger values
//! approach paper-scale gate counts) and is seeded, so netlists are
//! reproducible bit-for-bit.
//!
//! ```
//! use polaris_netlist::generators;
//!
//! let d = generators::des3(1, 42);
//! assert!(d.gate_count() > 100);
//! d.validate().expect("generators emit valid netlists");
//! ```

pub mod blocks;
mod iscas;
mod suite;

pub use iscas::{iscas_c17, iscas_like, training_suite, TrainingDesign};
pub use suite::{
    aes_round, arbiter, by_name, des3, div, evaluation_suite, log2, md5, memctrl, multiplier, sin,
    sqrt, square, voter, EVALUATION_NAMES,
};
